//! The discrete-event serving engine.
//!
//! # Queue model
//!
//! Queries arrive (open- or closed-loop, see [`crate::workload`]), pass
//! admission control — a bounded FIFO queue that sheds arrivals once
//! [`ServeConfig::max_queue`] queries are waiting, the backpressure signal
//! an upstream client would see as a fast-fail — and are dispatched onto
//! free JAFAR ranks by the configured [`SchedPolicy`]. A dispatched query
//! is sharded over up to [`ServeConfig::fanout`] free ranks and runs as
//! one steppable [`SelectSession`] per shard, exactly the PR-3 rank-
//! parallel machinery, so many in-flight queries interleave in simulated
//! time instead of serializing.
//!
//! # Event loop and determinism
//!
//! The engine is a discrete-event simulation with four event classes —
//! CPU-scan completion, query arrival, rank-free, SLO degradation — kept
//! in explicit queues and processed in strict `(time, class, id)` order.
//! Device work is *not* an event: between events the engine always steps
//! the furthest-behind live session (ties by query id then rank), the
//! same min-cursor discipline as [`jafar_core::parallel`], and only
//! processes the next event once every live session's clock has passed
//! it. Stepping a session makes no scheduling decisions, so letting
//! shards run ahead of the event clock is safe: ranks are timing-
//! independent, and every *decision* (admit, shed, dispatch, degrade)
//! happens at an event, in deterministic order. A serve run is therefore
//! a pure function of `(workload, policy, config)` — the golden tests
//! hold byte-for-byte.
//!
//! # Degradation ladder
//!
//! A dispatched query gets the widest healthy slice of the machine the
//! policy allows: rank-parallel when several ranks are free, single-
//! device when only one is. Queries with an SLO that are still *queued*
//! are watched by a degradation deadline: at
//! `max(now, host_free, deadline − est_cpu, submitted)` — the last
//! instant the host CPU scan can still make the deadline, never earlier
//! than submission — the query abandons the device queue and runs on the
//! host instead. The CPU rung is timed analytically per operator class
//! ([`ServeConfig::cpu_fixed`] + [`ServeConfig::cpu_per_row`]·rows +
//! [`ServeConfig::cpu_per_out_byte`]·out-bytes, where a select emits one
//! bit per row, a scalar aggregate 8 bytes and a k-column projection up
//! to k·8·rows bytes) but its *result* is computed functionally, so it
//! is bit-identical to the device path — including the aggregate scalar,
//! which a degraded query must return unchanged. Within the device path
//! each rank keeps its own
//! [`ResilientDriver`] across queries, so the PR-1 recovery ladder
//! (watchdog → retries → circuit breaker → CPU-scan fallback) composes
//! underneath: a faulty rank's breaker stays open between queries and
//! the rank-affinity policy steers new work away from it.

use crate::policy::SchedPolicy;
use crate::report::{ExecMode, QueryRecord, ServeReport};
use crate::workload::{AggFn, Arrivals, QueryOp, Workload};
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::time::Tick;
use jafar_core::aggregate::{AggOp, AggregateJob};
use jafar_core::device::JafarDevice;
use jafar_core::driver::{ResilienceConfig, ResilientDriver, SelectRequest, SelectSession};
use jafar_core::predicate::Predicate;
use jafar_core::project::ProjectJob;
use jafar_dram::{DramModule, PhysAddr};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Shards start on 512-row boundaries: 512 rows of bitset are 64 bytes,
/// so per-rank output offsets stay 64-byte aligned (the driver's CPU
/// fallback writes whole aligned lines) and shard boundaries fall on
/// exact bitset bytes.
const CHUNK_ROWS: u64 = 512;

/// Tuning knobs of the serving engine.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission-queue bound: arrivals beyond this many waiting queries
    /// are shed (backpressure). At least 1.
    pub max_queue: usize,
    /// Maximum ranks one query is sharded over. At least 1.
    pub fanout: usize,
    /// Fixed cost of a degraded host CPU scan (setup + planning).
    pub cpu_fixed: Tick,
    /// Per-row cost of a degraded host CPU scan.
    pub cpu_per_row: Tick,
    /// Per-output-byte cost of a degraded host CPU scan — what
    /// differentiates the operator classes in the service estimate: a
    /// select materializes one bit per row, a scalar aggregate a single
    /// 8-byte value, a k-column projection up to k·8·rows bytes.
    pub cpu_per_out_byte: Tick,
    /// Recovery policy for the per-rank resilient drivers.
    pub resilience: ResilienceConfig,
    /// Simulated instant the serve run (and its first arrivals) starts.
    pub start: Tick,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queue: 16,
            fanout: 4,
            cpu_fixed: Tick::from_us(2),
            cpu_per_row: Tick::from_ps(1000),
            cpu_per_out_byte: Tick::from_ps(250),
            resilience: ResilienceConfig::default(),
            start: Tick::ZERO,
        }
    }
}

/// Borrowed machine state the engine schedules onto. The caller (usually
/// `jafar_sim::System::serve`) owns the DRAM module, the per-rank devices
/// and drivers, and the per-rank column replicas + output buffers; the
/// engine only decides who runs where and when.
pub struct ServeEnv<'a> {
    /// The shared DRAM module every rank lives in.
    pub module: &'a mut DramModule,
    /// One JAFAR device per NDP rank; `devices[r]` serves rank `r`.
    pub devices: &'a mut [JafarDevice],
    /// One persistent resilient driver per rank (breaker state spans
    /// queries). Must be as long as `devices`.
    pub drivers: &'a mut [ResilientDriver],
    /// Per-rank 64-byte-aligned base of the column replica on that rank.
    pub replicas: &'a [PhysAddr],
    /// Per-rank 64-byte-aligned base of that rank's output bitset buffer
    /// (reused across queries; a rank runs one shard at a time).
    pub outs: &'a [PhysAddr],
    /// Per-rank 64-byte-aligned base of that rank's packed projection
    /// output region (reused across queries; sized for the full column,
    /// `values.len() · 8` bytes).
    pub proj_outs: &'a [PhysAddr],
    /// Host copy of the column, for the degraded CPU rung's functional
    /// result. Every query scans this full column.
    pub values: &'a [i64],
    /// Trace sink for the `QueryAdmitted/Started/Done/Shed` events.
    pub tracer: &'a SharedTracer,
}

/// One in-flight shard: which query and rank it belongs to and where its
/// rows sit within the column.
struct ActiveShard {
    qid: u32,
    rank: usize,
    off: u64,
    rows: u64,
    session: SelectSession,
}

/// Progress of a dispatched device query across its shards.
struct Inflight {
    remaining: u32,
    matched: u64,
    end: Tick,
    /// Per-shard packed projection slices as `(row offset, values)`;
    /// concatenated in row order once the last shard lands.
    proj: Vec<(u64, Vec<i64>)>,
}

/// Event classes, in tie-break priority order at equal times: CPU
/// completions release the host before new decisions, arrivals enter the
/// queue before rank-free dispatch can consider them, and degradation —
/// the last resort — only fires if nothing else happens at that instant.
const CLASS_CPU_DONE: u8 = 0;
const CLASS_ARRIVAL: u8 = 1;
const CLASS_RANK_FREE: u8 = 2;
const CLASS_DEGRADE: u8 = 3;

struct Engine<'a, 'e> {
    env: &'a mut ServeEnv<'e>,
    cfg: &'a ServeConfig,
    policy: SchedPolicy,
    /// Per-query SLO (spec override or workload default), by query id.
    slos: Vec<Option<Tick>>,
    has_slo: bool,
    think: Option<Tick>,
    records: Vec<QueryRecord>,
    queue: VecDeque<u32>,
    active: Vec<ActiveShard>,
    inflight: Vec<Option<Inflight>>,
    rank_busy: Vec<bool>,
    served_count: Vec<u64>,
    arrivals: BinaryHeap<Reverse<(Tick, u32)>>,
    rank_free_ev: BinaryHeap<Reverse<(Tick, u32)>>,
    cpu_done: BinaryHeap<Reverse<(Tick, u32)>>,
    host_free: Tick,
    now: Tick,
    next_spec: usize,
    makespan: Tick,
}

/// Runs `workload` against the machine in `env` under `policy` and
/// returns the per-query records and latency aggregates.
///
/// # Panics
/// Panics if `env` has no ranks, mismatched per-rank slices, or an empty
/// column.
pub fn run_serve(
    mut env: ServeEnv<'_>,
    workload: &Workload,
    policy: SchedPolicy,
    cfg: &ServeConfig,
) -> ServeReport {
    let nranks = env.devices.len();
    assert!(nranks > 0, "serving needs at least one NDP rank");
    assert_eq!(env.drivers.len(), nranks, "one driver per rank");
    assert_eq!(env.replicas.len(), nranks, "one column replica per rank");
    assert_eq!(env.outs.len(), nranks, "one output buffer per rank");
    assert_eq!(
        env.proj_outs.len(),
        nranks,
        "one projection buffer per rank"
    );
    assert!(!env.values.is_empty(), "cannot serve an empty column");

    let n = workload.len();
    let records: Vec<QueryRecord> = workload
        .specs
        .iter()
        .enumerate()
        .map(|(i, s)| QueryRecord {
            id: i as u32,
            lo: s.lo,
            hi: s.hi,
            op: s.op,
            submitted: Tick::ZERO,
            started: None,
            done: None,
            deadline: Tick::MAX,
            mode: ExecMode::Pending,
            matched: 0,
            bitset: Vec::new(),
            agg: None,
            projected: Vec::new(),
        })
        .collect();

    let slos: Vec<Option<Tick>> = workload
        .specs
        .iter()
        .map(|s| s.slo.or(workload.slo))
        .collect();
    let has_slo = slos.iter().any(|s| s.is_some());
    let mut eng = Engine {
        cfg,
        policy,
        slos,
        has_slo,
        think: None,
        records,
        queue: VecDeque::new(),
        active: Vec::new(),
        inflight: (0..n).map(|_| None).collect(),
        rank_busy: vec![false; nranks],
        served_count: vec![0; nranks],
        arrivals: BinaryHeap::new(),
        rank_free_ev: BinaryHeap::new(),
        cpu_done: BinaryHeap::new(),
        host_free: cfg.start,
        now: cfg.start,
        next_spec: 0,
        makespan: cfg.start,
        env: &mut env,
    };

    match &workload.arrivals {
        Arrivals::Open(times) => {
            assert_eq!(times.len(), n, "one arrival instant per query");
            for (i, &t) in times.iter().enumerate() {
                eng.arrivals.push(Reverse((cfg.start + t, i as u32)));
            }
            eng.next_spec = n;
        }
        Arrivals::Closed { clients, think } => {
            eng.think = Some(*think);
            let first = (*clients as usize).min(n);
            for i in 0..first {
                eng.arrivals.push(Reverse((cfg.start, i as u32)));
            }
            eng.next_spec = first;
        }
    }

    eng.run();

    let makespan = eng.makespan.saturating_sub(cfg.start);
    let records = eng.records;
    debug_assert!(
        records
            .iter()
            .all(|r| r.done.is_some() || r.mode == ExecMode::Shed),
        "every query completes or is shed"
    );
    ServeReport {
        records,
        makespan,
        policy: policy.name(),
    }
}

impl Engine<'_, '_> {
    fn run(&mut self) {
        loop {
            let event = self.best_event();
            // Always advance the furthest-behind shard first; decisions
            // only happen at events, once every shard's clock passed them.
            let min_shard = self
                .active
                .iter()
                .enumerate()
                .map(|(i, s)| ((s.session.cursor(), s.qid, s.rank), i))
                .min()
                .map(|((cursor, _, _), i)| (cursor, i));
            match (min_shard, event) {
                (Some((cursor, idx)), Some((t, _, _))) if cursor <= t => self.step_shard(idx),
                (Some((_, idx)), None) => self.step_shard(idx),
                (_, Some((t, class, payload))) => self.process_event(t, class, payload),
                (None, None) => break,
            }
        }
    }

    /// The next event as `(time, class, payload)`, minimal by `(time,
    /// class)`; within one class the heap already yields the smallest id.
    fn best_event(&self) -> Option<(Tick, u8, u32)> {
        let mut best: Option<(Tick, u8, u32)> = None;
        let mut consider = |t: Tick, class: u8, payload: u32| {
            let t = t.max(self.now);
            if best.is_none_or(|(bt, bc, _)| (t, class) < (bt, bc)) {
                best = Some((t, class, payload));
            }
        };
        if let Some(&Reverse((t, qid))) = self.cpu_done.peek() {
            consider(t, CLASS_CPU_DONE, qid);
        }
        if let Some(&Reverse((t, qid))) = self.arrivals.peek() {
            consider(t, CLASS_ARRIVAL, qid);
        }
        if let Some(&Reverse((t, rank))) = self.rank_free_ev.peek() {
            consider(t, CLASS_RANK_FREE, rank);
        }
        if let Some((t, qid)) = self.degrade_candidate() {
            consider(t, CLASS_DEGRADE, qid);
        }
        best
    }

    fn process_event(&mut self, t: Tick, class: u8, payload: u32) {
        self.now = t;
        match class {
            CLASS_CPU_DONE => {
                self.cpu_done.pop();
                self.finish_query(payload, t);
            }
            CLASS_ARRIVAL => {
                self.arrivals.pop();
                self.arrive(payload, t);
            }
            CLASS_RANK_FREE => {
                self.rank_free_ev.pop();
                self.rank_busy[payload as usize] = false;
                self.try_dispatch(t);
            }
            _ => self.degrade(payload, t),
        }
    }

    fn arrive(&mut self, qid: u32, t: Tick) {
        let slo = self.slos[qid as usize];
        let rec = &mut self.records[qid as usize];
        rec.submitted = t;
        rec.deadline = slo.map_or(Tick::MAX, |s| t + s);
        if self.queue.len() >= self.cfg.max_queue.max(1) {
            rec.mode = ExecMode::Shed;
            let depth = self.queue.len() as u32;
            self.env
                .tracer
                .emit(t, EventKind::QueryShed { query: qid, depth });
            self.schedule_next_client(t);
        } else {
            self.queue.push_back(qid);
            let depth = self.queue.len() as u32;
            self.env
                .tracer
                .emit(t, EventKind::QueryAdmitted { query: qid, depth });
            self.try_dispatch(t);
        }
    }

    /// In a closed loop, a finished (or shed) query frees its client to
    /// submit the next spec one think-time later.
    fn schedule_next_client(&mut self, t: Tick) {
        if let Some(think) = self.think {
            if self.next_spec < self.records.len() {
                self.arrivals
                    .push(Reverse((t + think, self.next_spec as u32)));
                self.next_spec += 1;
            }
        }
    }

    /// Drains the queue onto free ranks until one of them runs out.
    fn try_dispatch(&mut self, t: Tick) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let mut free: Vec<usize> = (0..self.rank_busy.len())
                .filter(|&r| !self.rank_busy[r])
                .collect();
            if free.is_empty() {
                return;
            }
            let pick = match self.policy {
                SchedPolicy::Fifo | SchedPolicy::RankAffinity => 0,
                // Least laxity by host-rung estimate: with heterogeneous
                // operator classes the query whose deadline minus service
                // estimate comes first is the most urgent, not the one
                // whose bare deadline does. Uniform mixes degenerate to
                // plain deadline order.
                SchedPolicy::Edf => self
                    .queue
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &q)| {
                        let rec = &self.records[q as usize];
                        (
                            rec.deadline.saturating_sub(self.cpu_estimate(rec.op)),
                            rec.deadline,
                            q,
                        )
                    })
                    .map(|(i, _)| i)
                    .expect("queue checked non-empty"),
            };
            let qid = self.queue.remove(pick).expect("index from enumerate");
            if self.policy == SchedPolicy::RankAffinity {
                free.sort_by_key(|&r| {
                    (self.env.drivers[r].breaker_open(), self.served_count[r], r)
                });
            }
            self.dispatch_device(qid, &free, t);
        }
    }

    /// Dispatches `qid` onto up to `fanout` of the `free` ranks (in the
    /// policy's preference order) with the execution shape its operator
    /// needs: selects and projections open steppable sessions, scalar
    /// aggregates run eagerly as one-shot kernels.
    fn dispatch_device(&mut self, qid: u32, free: &[usize], t: Tick) {
        match self.records[qid as usize].op {
            QueryOp::Select | QueryOp::Project { .. } => self.dispatch_select(qid, free, t),
            QueryOp::SelectCount => self.dispatch_agg(qid, free, t, AggOp::Count),
            QueryOp::SelectAgg(f) => self.dispatch_agg(qid, free, t, agg_op(f)),
        }
    }

    /// Shards a select (or the select pass of a projection) over the free
    /// ranks and opens one session per shard.
    fn dispatch_select(&mut self, qid: u32, free: &[usize], t: Tick) {
        let rows = self.env.values.len() as u64;
        let k = free.len().min(self.cfg.fanout.max(1)) as u64;
        let chunk = rows.div_ceil(k).div_ceil(CHUNK_ROWS) * CHUNK_ROWS;
        let mut off = 0u64;
        let mut used = 0u32;
        for &r in free {
            if off >= rows {
                break;
            }
            let len = chunk.min(rows - off);
            let req = SelectRequest {
                col_addr: PhysAddr(self.env.replicas[r].0 + off * 8),
                rows: len,
                lo: self.records[qid as usize].lo,
                hi: self.records[qid as usize].hi,
                out_addr: PhysAddr(self.env.outs[r].0 + off / 8),
            };
            let session = self.env.drivers[r].start_session(self.env.module, req, t);
            self.active.push(ActiveShard {
                qid,
                rank: r,
                off,
                rows: len,
                session,
            });
            self.rank_busy[r] = true;
            self.served_count[r] += 1;
            off += len;
            used += 1;
        }
        self.inflight[qid as usize] = Some(Inflight {
            remaining: used,
            matched: 0,
            end: Tick::ZERO,
            proj: Vec::new(),
        });
        let rec = &mut self.records[qid as usize];
        rec.started = Some(t);
        rec.mode = ExecMode::Device { ranks: used };
        rec.bitset = vec![0u8; rows.div_ceil(8) as usize];
        self.env.tracer.emit(
            t,
            EventKind::QueryStarted {
                query: qid,
                mode: if used > 1 { "parallel" } else { "single" },
                op: rec.op.name(),
                ranks: used,
            },
        );
    }

    /// Shards a scalar aggregate over the free ranks as eager one-shot
    /// kernels under each rank's resilient driver. Aggregates have no
    /// steppable session, and running a kernel makes no scheduling
    /// decisions, so executing it ahead of the event clock is the same
    /// min-cursor argument that lets select shards run ahead: ranks are
    /// timing-independent, each is freed at its true end via a rank-free
    /// event, and the query finishes at the max shard end. Partials merge
    /// in shard (row) order with the device kernel's exact semantics.
    fn dispatch_agg(&mut self, qid: u32, free: &[usize], t: Tick, op: AggOp) {
        let rows = self.env.values.len() as u64;
        let k = free.len().min(self.cfg.fanout.max(1)) as u64;
        let chunk = rows.div_ceil(k).div_ceil(CHUNK_ROWS) * CHUNK_ROWS;
        let (lo, hi) = {
            let rec = &self.records[qid as usize];
            (rec.lo, rec.hi)
        };
        let mut off = 0u64;
        let mut used = 0u32;
        let mut count = 0u64;
        let mut acc: Option<i64> = None;
        let mut end = t;
        for &r in free {
            if off >= rows {
                break;
            }
            let len = chunk.min(rows - off);
            let job = AggregateJob {
                col_addr: PhysAddr(self.env.replicas[r].0 + off * 8),
                rows: len,
                op,
                filter: Some(Predicate::Between(lo, hi)),
            };
            let out = self.env.drivers[r].run_aggregate(
                &mut self.env.devices[r],
                self.env.module,
                job,
                t,
            );
            count += out.count;
            acc = merge_agg(op, acc, out.value);
            end = end.max(out.end);
            self.rank_busy[r] = true;
            self.served_count[r] += 1;
            self.rank_free_ev
                .push(Reverse((out.end.max(self.now), r as u32)));
            off += len;
            used += 1;
        }
        let rec = &mut self.records[qid as usize];
        rec.started = Some(t);
        rec.mode = ExecMode::Device { ranks: used };
        rec.matched = count;
        rec.agg = match op {
            AggOp::Count => Some(count as i64),
            _ => acc,
        };
        self.env.tracer.emit(
            t,
            EventKind::QueryStarted {
                query: qid,
                mode: if used > 1 { "parallel" } else { "single" },
                op: rec.op.name(),
                ranks: used,
            },
        );
        self.finish_query(qid, end);
    }

    fn step_shard(&mut self, idx: usize) {
        let shard = &mut self.active[idx];
        self.env.drivers[shard.rank].step_page(
            &mut self.env.devices[shard.rank],
            self.env.module,
            &mut shard.session,
        );
        if !shard.session.is_done() {
            return;
        }
        let shard = self.active.swap_remove(idx);
        let run = shard.session.into_run();
        // Pull the shard's slice of the selection vector out of DRAM now:
        // the rank is reused only after its rank-free event, which is
        // processed strictly later.
        let nbytes = shard.rows.div_ceil(8) as usize;
        let at = (shard.off / 8) as usize;
        let rec = &mut self.records[shard.qid as usize];
        self.env.module.data().read(
            PhysAddr(self.env.outs[shard.rank].0 + shard.off / 8),
            &mut rec.bitset[at..at + nbytes],
        );
        if !shard.rows.is_multiple_of(8) {
            // The buffer is reused across queries and the device
            // preserves (rather than zeroes) bits past the last row in
            // the final partial byte — mask the stale tail off.
            rec.bitset[at + nbytes - 1] &= (1u8 << (shard.rows % 8)) - 1;
        }
        let op = rec.op;
        let mut shard_end = run.end;
        let mut proj_part = None;
        if let QueryOp::Project { k } = op {
            // A projection chains k one-shot kernel passes off the
            // finished select: the engine models projecting k same-width
            // columns by re-running the kernel k times against the served
            // replica (each pass reads the shard's bitset slice and packs
            // one column's worth of qualifying values; passes are
            // byte-identical so the record keeps a single copy). The
            // shard's bitset slice starts on a 512-row boundary, so both
            // it and the packed output stay 64-byte aligned.
            let job = ProjectJob {
                col_addr: PhysAddr(self.env.replicas[shard.rank].0 + shard.off * 8),
                rows: shard.rows,
                bitset_addr: PhysAddr(self.env.outs[shard.rank].0 + shard.off / 8),
                out_addr: PhysAddr(self.env.proj_outs[shard.rank].0 + shard.off * 8),
            };
            let mut emitted = 0u64;
            for _ in 0..k.max(1) {
                let out = self.env.drivers[shard.rank].run_project(
                    &mut self.env.devices[shard.rank],
                    self.env.module,
                    job,
                    shard_end,
                );
                shard_end = out.end;
                emitted = out.emitted;
            }
            let base = self.env.proj_outs[shard.rank].0 + shard.off * 8;
            let vals: Vec<i64> = (0..emitted)
                .map(|i| self.env.module.data().read_i64(PhysAddr(base + i * 8)))
                .collect();
            proj_part = Some((shard.off, vals));
        }
        self.rank_free_ev
            .push(Reverse((shard_end.max(self.now), shard.rank as u32)));
        let fl = self.inflight[shard.qid as usize]
            .as_mut()
            .expect("shard of a dispatched query");
        fl.remaining -= 1;
        fl.matched += run.matched;
        fl.end = fl.end.max(shard_end);
        if let Some(part) = proj_part {
            fl.proj.push(part);
        }
        if fl.remaining == 0 {
            let (end, matched) = (fl.end, fl.matched);
            let mut proj = std::mem::take(&mut fl.proj);
            proj.sort_by_key(|&(off, _)| off);
            let rec = &mut self.records[shard.qid as usize];
            rec.matched = matched;
            rec.projected = proj.into_iter().flat_map(|(_, vals)| vals).collect();
            self.finish_query(shard.qid, end);
        }
    }

    fn finish_query(&mut self, qid: u32, end: Tick) {
        let rec = &mut self.records[qid as usize];
        rec.done = Some(end);
        self.makespan = self.makespan.max(end);
        let matched = rec.matched;
        self.env.tracer.emit(
            end,
            EventKind::QueryDone {
                query: qid,
                matched,
            },
        );
        self.schedule_next_client(end);
    }

    /// The queued query whose degradation deadline comes first, if any:
    /// the last instant `max(now, host_free, deadline − est_cpu,
    /// submitted)` at which the host scan still protects its SLO.
    fn degrade_candidate(&self) -> Option<(Tick, u32)> {
        if !self.has_slo {
            return None;
        }
        self.queue
            .iter()
            .filter(|&&q| self.records[q as usize].deadline < Tick::MAX)
            .map(|&q| {
                let rec = &self.records[q as usize];
                let t = self
                    .now
                    .max(self.host_free)
                    .max(rec.deadline.saturating_sub(self.cpu_estimate(rec.op)))
                    .max(rec.submitted);
                (t, q)
            })
            .min()
    }

    /// Analytical host-scan time for one query of the given operator
    /// class: fixed setup, per-row predicate cost, and a per-output-byte
    /// materialization cost — a select writes one bit per row, a scalar
    /// aggregate a single 8-byte value, and a k-column projection up to
    /// k·8·rows bytes (the worst case the host budgets for before it
    /// knows the selectivity).
    fn cpu_estimate(&self, op: QueryOp) -> Tick {
        let rows = self.env.values.len() as u64;
        let out_bytes = match op {
            QueryOp::Select => rows.div_ceil(8),
            QueryOp::SelectCount | QueryOp::SelectAgg(_) => 8,
            QueryOp::Project { k } => u64::from(k.max(1)) * 8 * rows,
        };
        self.cfg.cpu_fixed + self.cfg.cpu_per_row * rows + self.cfg.cpu_per_out_byte * out_bytes
    }

    /// Pulls `qid` off the device queue and runs it on the host: timed
    /// analytically per operator, computed functionally — the bitset is
    /// bit-identical, the aggregate scalar value-identical and the packed
    /// projection byte-identical to what the device path would return.
    fn degrade(&mut self, qid: u32, t: Tick) {
        let pos = self
            .queue
            .iter()
            .position(|&q| q == qid)
            .expect("degrade candidate is queued");
        self.queue.remove(pos);
        let done = t + self.cpu_estimate(self.records[qid as usize].op);
        self.host_free = done;
        let values = self.env.values;
        let rec = &mut self.records[qid as usize];
        rec.started = Some(t);
        rec.mode = ExecMode::Cpu;
        let (lo, hi) = (rec.lo, rec.hi);
        match rec.op {
            QueryOp::Select | QueryOp::Project { .. } => {
                let mut bytes = vec![0u8; values.len().div_ceil(8)];
                let mut matched = 0u64;
                for (i, &v) in values.iter().enumerate() {
                    if v >= lo && v <= hi {
                        bytes[i / 8] |= 1 << (i % 8);
                        matched += 1;
                    }
                }
                rec.bitset = bytes;
                rec.matched = matched;
                if let QueryOp::Project { .. } = rec.op {
                    rec.projected = values
                        .iter()
                        .copied()
                        .filter(|&v| v >= lo && v <= hi)
                        .collect();
                }
            }
            QueryOp::SelectCount => {
                let matched = values.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
                rec.matched = matched;
                rec.agg = Some(matched as i64);
            }
            QueryOp::SelectAgg(f) => {
                // Same fold semantics as the device kernel: wrapping sum,
                // `None` extremum when no row qualifies — the degraded
                // scalar must be indistinguishable from the device's.
                let mut matched = 0u64;
                let mut acc: Option<i64> = None;
                for &v in values.iter().filter(|&&v| v >= lo && v <= hi) {
                    matched += 1;
                    acc = Some(match (f, acc) {
                        (AggFn::Sum, prev) => prev.unwrap_or(0).wrapping_add(v),
                        (AggFn::Min | AggFn::Max, None) => v,
                        (AggFn::Min, Some(p)) => p.min(v),
                        (AggFn::Max, Some(p)) => p.max(v),
                    });
                }
                rec.matched = matched;
                rec.agg = acc;
            }
        }
        self.cpu_done.push(Reverse((done, qid)));
        self.env.tracer.emit(
            t,
            EventKind::QueryStarted {
                query: qid,
                mode: "cpu",
                op: rec.op.name(),
                ranks: 0,
            },
        );
    }
}

/// The serving-layer aggregate functions mapped onto the device kernel's
/// fold ops.
fn agg_op(f: AggFn) -> AggOp {
    match f {
        AggFn::Sum => AggOp::Sum,
        AggFn::Min => AggOp::Min,
        AggFn::Max => AggOp::Max,
    }
}

/// Shard-order merge of two aggregate partials with the device kernel's
/// semantics: wrapping sum, `None`-respecting extremum. `Count` totals
/// are carried in the count field instead.
fn merge_agg(op: AggOp, a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(match op {
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
            _ => a.wrapping_add(b),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{PredicateMix, QuerySpec};
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    const ROWS: u64 = 2048;

    /// A self-contained serving machine over an explicit module: every
    /// rank carries a full replica of the same seeded column plus an
    /// output buffer, one device + persistent driver each.
    struct Rig {
        module: DramModule,
        devices: Vec<JafarDevice>,
        drivers: Vec<ResilientDriver>,
        replicas: Vec<PhysAddr>,
        outs: Vec<PhysAddr>,
        proj_outs: Vec<PhysAddr>,
        values: Vec<i64>,
        tracer: SharedTracer,
    }

    fn rig(nranks: u32, seed: u64) -> Rig {
        let geom = DramGeometry {
            ranks: nranks,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 1024,
        };
        let mut module = DramModule::new(
            geom,
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let mut rng = SplitMix64::new(seed);
        let values: Vec<i64> = (0..ROWS)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let rank_bytes = geom.rank_bytes();
        let mut replicas = Vec::new();
        let mut outs = Vec::new();
        let mut proj_outs = Vec::new();
        for r in 0..nranks as u64 {
            let col = PhysAddr(r * rank_bytes);
            for (i, &v) in values.iter().enumerate() {
                module
                    .data_mut()
                    .write_i64(PhysAddr(col.0 + i as u64 * 8), v);
            }
            replicas.push(col);
            outs.push(PhysAddr(r * rank_bytes + 192 * 1024));
            proj_outs.push(PhysAddr(r * rank_bytes + 64 * 1024));
        }
        Rig {
            module,
            devices: (0..nranks).map(|_| JafarDevice::paper_default()).collect(),
            drivers: (0..nranks)
                .map(|_| ResilientDriver::new(ResilienceConfig::default()))
                .collect(),
            replicas,
            outs,
            proj_outs,
            values,
            tracer: SharedTracer::disabled(),
        }
    }

    impl Rig {
        fn serve(
            &mut self,
            workload: &Workload,
            policy: SchedPolicy,
            cfg: &ServeConfig,
        ) -> ServeReport {
            run_serve(
                ServeEnv {
                    module: &mut self.module,
                    devices: &mut self.devices,
                    drivers: &mut self.drivers,
                    replicas: &self.replicas,
                    outs: &self.outs,
                    proj_outs: &self.proj_outs,
                    values: &self.values,
                    tracer: &self.tracer,
                },
                workload,
                policy,
                cfg,
            )
        }
    }

    fn reference_bytes(values: &[i64], lo: i64, hi: i64) -> Vec<u8> {
        let mut bytes = vec![0u8; values.len().div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    fn spec(lo: i64, hi: i64, slo: Option<Tick>) -> QuerySpec {
        QuerySpec {
            lo,
            hi,
            op: QueryOp::Select,
            slo,
        }
    }

    fn op_spec(lo: i64, hi: i64, op: QueryOp) -> QuerySpec {
        QuerySpec {
            lo,
            hi,
            op,
            slo: None,
        }
    }

    #[test]
    fn fifo_poisson_completes_all_bit_identically() {
        let mut rig = rig(4, 5);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 200,
        };
        let workload = Workload::poisson(mix, 6, Tick::from_us(2), 17);
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 6);
        assert_eq!(report.shed(), 0);
        for rec in &report.records {
            assert!(matches!(rec.mode, ExecMode::Device { ranks } if ranks >= 1));
            assert!(rec.done.unwrap() >= rec.started.unwrap());
            assert_eq!(
                rec.bitset,
                reference_bytes(&rig.values, rec.lo, rec.hi),
                "query {} selection vector",
                rec.id
            );
            assert_eq!(
                rec.matched,
                rec.bitset
                    .iter()
                    .map(|b| b.count_ones() as u64)
                    .sum::<u64>()
            );
        }
        assert!(report.makespan > Tick::ZERO);
        assert!(report.p99() >= report.p50());
    }

    #[test]
    fn serve_is_deterministic() {
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 150,
        };
        let workload = Workload::poisson(mix, 8, Tick::from_ns(800), 23)
            .with_slo(Tick::from_us(400))
            .with_op_mix(&[
                QueryOp::Select,
                QueryOp::SelectCount,
                QueryOp::SelectAgg(AggFn::Sum),
                QueryOp::Project { k: 2 },
            ]);
        let a = rig(2, 9).serve(
            &workload,
            SchedPolicy::RankAffinity,
            &ServeConfig::default(),
        );
        let b = rig(2, 9).serve(
            &workload,
            SchedPolicy::RankAffinity,
            &ServeConfig::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn burst_sheds_at_the_queue_bound() {
        let mut rig = rig(2, 7);
        let workload = Workload {
            specs: (0..6).map(|_| spec(100, 399, None)).collect(),
            arrivals: Arrivals::Open(vec![Tick::ZERO; 6]),
            slo: None,
        };
        let cfg = ServeConfig {
            max_queue: 1,
            fanout: 2,
            ..ServeConfig::default()
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &cfg);
        // q0 takes both ranks, q1 fills the depth-1 queue, the rest shed.
        assert_eq!(report.completed(), 2);
        assert_eq!(report.shed(), 4);
        for rec in &report.records[2..] {
            assert_eq!(rec.mode, ExecMode::Shed);
            assert!(rec.done.is_none());
            assert!(rec.bitset.is_empty());
        }
        assert_eq!(
            report.records[0].mode,
            ExecMode::Device { ranks: 2 },
            "burst head fans out over both ranks"
        );
    }

    #[test]
    fn edf_dispatches_the_tightest_deadline_first() {
        let specs = vec![
            spec(0, 499, None),
            spec(0, 499, Some(Tick::from_ms(3))),
            spec(0, 499, Some(Tick::from_ms(1))),
        ];
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open(vec![Tick::ZERO; 3]),
            slo: None,
        };
        let fifo = rig(1, 3).serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        let edf = rig(1, 3).serve(&workload, SchedPolicy::Edf, &ServeConfig::default());
        assert!(fifo.records[1].started.unwrap() < fifo.records[2].started.unwrap());
        assert!(edf.records[2].started.unwrap() < edf.records[1].started.unwrap());
        // Scheduling order changes; results don't.
        for report in [&fifo, &edf] {
            assert_eq!(report.completed(), 3);
            assert_eq!(report.deadline_misses(), 0);
        }
    }

    #[test]
    fn hopeless_deadline_degrades_to_the_host_cpu() {
        let mut rig = rig(1, 13);
        // q0 occupies the only rank; q1's SLO is far below even the CPU
        // estimate, so its degradation deadline is "now" — it abandons
        // the device queue immediately and still completes, correctly.
        let workload = Workload {
            specs: vec![spec(200, 799, None), spec(300, 599, Some(Tick::from_ns(1)))],
            arrivals: Arrivals::Open(vec![Tick::ZERO, Tick::ZERO]),
            slo: None,
        };
        let cfg = ServeConfig::default();
        let est = cfg.cpu_fixed + cfg.cpu_per_row * ROWS + cfg.cpu_per_out_byte * ROWS.div_ceil(8);
        let report = rig.serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report.completed(), 2);
        let q1 = &report.records[1];
        assert_eq!(q1.mode, ExecMode::Cpu);
        assert_eq!(q1.done.unwrap(), q1.started.unwrap() + est);
        assert_eq!(q1.bitset, reference_bytes(&rig.values, 300, 599));
        assert!(q1.missed_deadline(), "hopeless SLO is still a miss");
        assert_eq!(report.cpu_queries(), 1);
    }

    #[test]
    fn mixed_operator_stream_serves_every_operator_correctly() {
        let mut rig = rig(4, 31);
        let specs = vec![
            op_spec(100, 499, QueryOp::Select),
            op_spec(200, 599, QueryOp::SelectCount),
            op_spec(0, 899, QueryOp::SelectAgg(AggFn::Sum)),
            op_spec(300, 699, QueryOp::SelectAgg(AggFn::Min)),
            op_spec(300, 699, QueryOp::SelectAgg(AggFn::Max)),
            op_spec(400, 799, QueryOp::Project { k: 2 }),
            // An empty range: Min/Max must come back None, not 0.
            op_spec(5000, 6000, QueryOp::SelectAgg(AggFn::Min)),
        ];
        let n = specs.len();
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open((0..n).map(|i| Tick::from_us(i as u64)).collect()),
            slo: None,
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), n);
        let filtered = |lo: i64, hi: i64| -> Vec<i64> {
            rig.values
                .iter()
                .copied()
                .filter(|&v| v >= lo && v <= hi)
                .collect()
        };
        for rec in &report.records {
            assert!(matches!(rec.mode, ExecMode::Device { ranks } if ranks >= 1));
            let matching = filtered(rec.lo, rec.hi);
            assert_eq!(rec.matched as usize, matching.len(), "query {}", rec.id);
            match rec.op {
                QueryOp::Select => {
                    assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
                    assert_eq!(rec.agg, None);
                    assert!(rec.projected.is_empty());
                }
                QueryOp::SelectCount => {
                    assert!(rec.bitset.is_empty(), "scalar ops carry no bitset");
                    assert_eq!(rec.agg, Some(matching.len() as i64));
                }
                QueryOp::SelectAgg(f) => {
                    assert!(rec.bitset.is_empty(), "scalar ops carry no bitset");
                    let expect = match f {
                        AggFn::Sum => matching.iter().copied().reduce(|a, b| a.wrapping_add(b)),
                        AggFn::Min => matching.iter().copied().min(),
                        AggFn::Max => matching.iter().copied().max(),
                    };
                    assert_eq!(rec.agg, expect, "query {} ({})", rec.id, rec.op.name());
                }
                QueryOp::Project { .. } => {
                    assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
                    assert_eq!(rec.projected, matching, "packed projection");
                }
            }
        }
        // The per-operator breakdown covers every class that was served.
        let ops = report.ops();
        for name in ["select", "count", "sum", "min", "max", "project"] {
            assert!(ops.contains(&name), "missing {name} in {ops:?}");
        }
    }

    #[test]
    fn degraded_aggregate_returns_the_identical_scalar() {
        let mut sick = rig(1, 37);
        // q0 occupies the only rank; q1 is a Sum whose SLO is hopeless, so
        // it degrades to the CPU rung — and must return exactly the scalar
        // a device run would have produced.
        let workload = Workload {
            specs: vec![
                op_spec(200, 799, QueryOp::Select),
                QuerySpec {
                    lo: 100,
                    hi: 599,
                    op: QueryOp::SelectAgg(AggFn::Sum),
                    slo: Some(Tick::from_ns(1)),
                },
            ],
            arrivals: Arrivals::Open(vec![Tick::ZERO, Tick::ZERO]),
            slo: None,
        };
        let cfg = ServeConfig::default();
        let est = cfg.cpu_fixed + cfg.cpu_per_row * ROWS + cfg.cpu_per_out_byte * 8;
        let report = sick.serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report.completed(), 2);
        let q1 = &report.records[1];
        assert_eq!(q1.mode, ExecMode::Cpu);
        assert_eq!(q1.done.unwrap(), q1.started.unwrap() + est);
        let expect = sick
            .values
            .iter()
            .copied()
            .filter(|&v| (100..=599).contains(&v))
            .fold(0i64, |a, v| a.wrapping_add(v));
        assert_eq!(q1.agg, Some(expect));
        assert!(q1.bitset.is_empty(), "scalar rung materializes no bitset");

        // Reference: the same Sum served alone on a healthy device rung.
        let mut solo = rig(1, 37);
        let solo_report = solo.serve(
            &Workload {
                specs: vec![QuerySpec {
                    lo: 100,
                    hi: 599,
                    op: QueryOp::SelectAgg(AggFn::Sum),
                    slo: None,
                }],
                arrivals: Arrivals::Open(vec![Tick::ZERO]),
                slo: None,
            },
            SchedPolicy::Fifo,
            &cfg,
        );
        assert!(matches!(
            solo_report.records[0].mode,
            ExecMode::Device { .. }
        ));
        assert_eq!(solo_report.records[0].agg, q1.agg, "device == degraded");
    }

    #[test]
    fn closed_loop_throttles_to_the_client_population() {
        let mut rig = rig(2, 19);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 300,
        };
        let think = Tick::from_us(1);
        let workload = Workload::closed(mix, 8, 2, think, 29);
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 8);
        assert_eq!(report.shed(), 0);
        // Two clients: queries 0 and 1 arrive at start, every later one
        // only a think-time after some predecessor finished.
        assert_eq!(report.records[0].submitted, Tick::ZERO);
        assert_eq!(report.records[1].submitted, Tick::ZERO);
        for rec in &report.records[2..] {
            assert!(rec.submitted >= think);
        }
        for rec in &report.records {
            assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
        }
    }
}
