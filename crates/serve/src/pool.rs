//! The schedulable filter-unit pool.
//!
//! JAFAR places one filter unit per rank, but "the pool" the serving
//! engine schedules over is not inherently one DIMM's rank vector: with a
//! multi-channel memory system every channel brings its own ranks, and
//! bank-group-level designs (Membrane-style) multiply the pool again
//! within a rank. [`FilterPool`] abstracts that topology: the engine
//! schedules over opaque **unit ids** `0..units()`, and the pool maps
//! each id to its physical coordinates — `{channel, rank, bank_group}` —
//! so dispatch, health tracking, canary probing, fault confinement and
//! the availability ledger all work per unit rather than per DIMM-rank.
//!
//! # Unit id scheme
//!
//! Ids are dense and channel-major:
//!
//! ```text
//! unit = (channel · ranks_per_channel + rank) · bank_groups + bank_group
//! ```
//!
//! so a single-channel, one-bank-group pool degenerates to `unit == rank`
//! — today's single-DIMM layout, byte-for-byte. The id order is also the
//! engine's deterministic tie-break order, which keeps serve runs pure
//! functions of `(workload, policy, config, pool)`.
//!
//! # Placement rules
//!
//! The pool is a topology map only; *placement* — where each unit's
//! column replica, bitset buffer and projection buffer live — is recorded
//! in the serve env's per-unit address slices (`replicas[u]`, `outs[u]`,
//! `proj_outs[u]`, all channel-local addresses within
//! `modules[unit(u).channel]`). A column's stripes land whole on one
//! channel's ranks (contiguous placement, `phase_rows(rows, 1, 0)` rows
//! per replica in [`jafar_core::interleave`] terms), never word-
//! interleaved across channels: contiguous placement writes each output
//! line once, where interleaving would pay the §2.2 masked
//! read-modify-write on every output burst. Because every unit's
//! arguments are recorded per unit, the byte-identity argument of the
//! single-DIMM engine carries over unchanged — each unit's shard run is
//! indistinguishable from the same shard on a single-channel pool.
//!
//! Busy/health/affinity state is *engine* state, keyed by unit id: the
//! busy vector, the [`crate::health::HealthTracker`] lifecycle and the
//! served-count affinity ledger all index by unit, so quarantine and
//! canary probing confine failures to one unit without touching its
//! channel siblings.

use std::fmt;

/// Typed failure from unit-id arithmetic: the `(channel, rank,
/// bank_group)` coordinates do not map to a dense id, either because a
/// coordinate is outside the pool's shape or because the id computation
/// would exceed `usize::MAX` (silent wraparound would alias two distinct
/// units onto one id — a correctness bug, not a perf bug).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolIdError {
    /// A coordinate is at or beyond its axis extent.
    OutOfRange {
        /// Which axis (`"channel"`, `"rank"`, `"bank_group"`).
        axis: &'static str,
        /// The offending coordinate.
        index: usize,
        /// The axis extent it must stay below.
        extent: usize,
    },
    /// The dense id (or the pool's total unit count) overflows `usize`.
    Overflow,
}

impl fmt::Display for PoolIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolIdError::OutOfRange {
                axis,
                index,
                extent,
            } => write!(f, "{axis} {index} out of range (extent {extent})"),
            PoolIdError::Overflow => write!(f, "unit id arithmetic overflows usize"),
        }
    }
}

impl std::error::Error for PoolIdError {}

/// Physical coordinates of one schedulable filter unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FilterUnit {
    /// Memory channel the unit's DIMM hangs off.
    pub channel: usize,
    /// Rank within that channel the unit filters.
    pub rank: usize,
    /// Bank group within the rank (0 for whole-rank units; reserved for
    /// Membrane-style bank-group-level pools).
    pub bank_group: usize,
}

/// A schedulable pool of filter units: the topology the serving engine
/// dispatches onto. See the module docs for the id scheme and placement
/// rules.
pub trait FilterPool {
    /// Number of schedulable units (dense ids `0..units()`).
    fn units(&self) -> usize;

    /// Physical coordinates of unit `u`.
    ///
    /// # Panics
    /// Implementations may panic when `u >= units()`.
    fn unit(&self, u: usize) -> FilterUnit;

    /// Number of memory channels the pool spans. Every
    /// [`FilterUnit::channel`] is below this.
    fn channels(&self) -> usize;
}

/// Today's single-DIMM pool: one channel, one unit per NDP rank, whole
/// ranks (`unit == rank`). The degenerate case every pre-pool serve run
/// used implicitly.
#[derive(Clone, Copy, Debug)]
pub struct SingleDimmPool {
    ranks: usize,
}

impl SingleDimmPool {
    /// A pool over `ranks` NDP ranks of one DIMM.
    ///
    /// # Panics
    /// Panics if `ranks == 0` — an empty pool can serve nothing.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "a pool needs at least one unit");
        SingleDimmPool { ranks }
    }
}

impl FilterPool for SingleDimmPool {
    fn units(&self) -> usize {
        self.ranks
    }

    fn unit(&self, u: usize) -> FilterUnit {
        assert!(u < self.ranks, "unit {u} out of range ({})", self.ranks);
        FilterUnit {
            channel: 0,
            rank: u,
            bank_group: 0,
        }
    }

    fn channels(&self) -> usize {
        1
    }
}

/// A channels × ranks pool over an interleaved multi-channel memory
/// system (`jafar_memctl::MultiChannel`): every channel brings
/// `ranks_per_channel` whole-rank units. Unit ids are channel-major, so
/// `channels == 1` is bit-compatible with [`SingleDimmPool`].
#[derive(Clone, Copy, Debug)]
pub struct ChannelRankPool {
    channels: usize,
    ranks_per_channel: usize,
    bank_groups: usize,
}

impl ChannelRankPool {
    /// A pool of `channels × ranks_per_channel` whole-rank units.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the unit count overflows
    /// `usize` (use [`ChannelRankPool::try_units`] to probe a shape).
    pub fn new(channels: usize, ranks_per_channel: usize) -> Self {
        assert!(
            channels > 0 && ranks_per_channel > 0,
            "a pool needs at least one unit"
        );
        let pool = ChannelRankPool {
            channels,
            ranks_per_channel,
            bank_groups: 1,
        };
        assert!(
            pool.try_units().is_ok(),
            "pool shape {channels}x{ranks_per_channel} overflows usize"
        );
        pool
    }

    /// Splits every rank into `bank_groups` independently schedulable
    /// units (Membrane-style bank-group parallelism).
    ///
    /// # Panics
    /// Panics if `bank_groups == 0` or the multiplied unit count
    /// overflows `usize`.
    pub fn with_bank_groups(mut self, bank_groups: usize) -> Self {
        assert!(bank_groups > 0, "a rank has at least one bank group");
        self.bank_groups = bank_groups;
        assert!(
            self.try_units().is_ok(),
            "bank-group split to {bank_groups} overflows usize"
        );
        self
    }

    /// Ranks each channel contributes.
    pub fn ranks_per_channel(&self) -> usize {
        self.ranks_per_channel
    }

    /// The dense id of `(channel, rank, bank_group)` — the inverse of
    /// [`FilterPool::unit`]. Checked: out-of-shape coordinates and
    /// `usize` overflow return a [`PoolIdError`] instead of silently
    /// wrapping onto some other unit's id.
    pub fn id_of(
        &self,
        channel: usize,
        rank: usize,
        bank_group: usize,
    ) -> Result<usize, PoolIdError> {
        for (axis, index, extent) in [
            ("channel", channel, self.channels),
            ("rank", rank, self.ranks_per_channel),
            ("bank_group", bank_group, self.bank_groups),
        ] {
            if index >= extent {
                return Err(PoolIdError::OutOfRange {
                    axis,
                    index,
                    extent,
                });
            }
        }
        channel
            .checked_mul(self.ranks_per_channel)
            .and_then(|v| v.checked_add(rank))
            .and_then(|v| v.checked_mul(self.bank_groups))
            .and_then(|v| v.checked_add(bank_group))
            .ok_or(PoolIdError::Overflow)
    }

    /// Total units, checked: `Err(Overflow)` when `channels ×
    /// ranks_per_channel × bank_groups` exceeds `usize` — the shape
    /// validation [`ChannelRankPool::new`] and
    /// [`ChannelRankPool::with_bank_groups`] enforce by panic.
    pub fn try_units(&self) -> Result<usize, PoolIdError> {
        self.channels
            .checked_mul(self.ranks_per_channel)
            .and_then(|v| v.checked_mul(self.bank_groups))
            .ok_or(PoolIdError::Overflow)
    }
}

impl FilterPool for ChannelRankPool {
    fn units(&self) -> usize {
        self.channels * self.ranks_per_channel * self.bank_groups
    }

    fn unit(&self, u: usize) -> FilterUnit {
        assert!(u < self.units(), "unit {u} out of range ({})", self.units());
        let bank_group = u % self.bank_groups;
        let whole = u / self.bank_groups;
        FilterUnit {
            channel: whole / self.ranks_per_channel,
            rank: whole % self.ranks_per_channel,
            bank_group,
        }
    }

    fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dimm_pool_is_the_identity_on_ranks() {
        let p = SingleDimmPool::new(7);
        assert_eq!(p.units(), 7);
        assert_eq!(p.channels(), 1);
        for u in 0..7 {
            assert_eq!(
                p.unit(u),
                FilterUnit {
                    channel: 0,
                    rank: u,
                    bank_group: 0
                }
            );
        }
    }

    #[test]
    fn channel_rank_pool_ids_are_channel_major_and_invertible() {
        let p = ChannelRankPool::new(4, 3);
        assert_eq!(p.units(), 12);
        assert_eq!(p.channels(), 4);
        let mut seen = std::collections::HashSet::new();
        for u in 0..p.units() {
            let fu = p.unit(u);
            assert!(fu.channel < 4 && fu.rank < 3 && fu.bank_group == 0);
            assert_eq!(p.id_of(fu.channel, fu.rank, fu.bank_group), Ok(u));
            assert!(seen.insert(fu), "ids are distinct coordinates");
        }
        // Channel-major: consecutive ids walk ranks within a channel.
        assert_eq!(p.unit(0).channel, 0);
        assert_eq!(p.unit(2).channel, 0);
        assert_eq!(p.unit(3).channel, 1);
    }

    #[test]
    fn one_channel_pool_matches_single_dimm_pool() {
        let a = SingleDimmPool::new(5);
        let b = ChannelRankPool::new(1, 5);
        assert_eq!(a.units(), b.units());
        for u in 0..a.units() {
            assert_eq!(a.unit(u), b.unit(u));
        }
    }

    #[test]
    fn bank_groups_multiply_the_pool() {
        let p = ChannelRankPool::new(2, 2).with_bank_groups(4);
        assert_eq!(p.units(), 16);
        let fu = p.unit(p.id_of(1, 0, 3).unwrap());
        assert_eq!((fu.channel, fu.rank, fu.bank_group), (1, 0, 3));
        // All 16 coordinates are distinct and round-trip.
        for u in 0..p.units() {
            let fu = p.unit(u);
            assert_eq!(p.id_of(fu.channel, fu.rank, fu.bank_group), Ok(u));
        }
    }

    #[test]
    fn id_of_rejects_out_of_shape_coordinates() {
        let p = ChannelRankPool::new(2, 3).with_bank_groups(2);
        assert_eq!(
            p.id_of(2, 0, 0),
            Err(PoolIdError::OutOfRange {
                axis: "channel",
                index: 2,
                extent: 2
            })
        );
        assert_eq!(
            p.id_of(0, 3, 0),
            Err(PoolIdError::OutOfRange {
                axis: "rank",
                index: 3,
                extent: 3
            })
        );
        assert_eq!(
            p.id_of(1, 2, 2),
            Err(PoolIdError::OutOfRange {
                axis: "bank_group",
                index: 2,
                extent: 2
            })
        );
    }

    #[test]
    fn id_arithmetic_errors_at_the_overflow_boundary() {
        // A shape whose id arithmetic is exactly at the usize boundary:
        // 2 channels × (usize::MAX/2) ranks. The last valid coordinate
        // maps to usize::MAX - ... fine; one channel further would wrap.
        let half = usize::MAX / 2;
        let p = ChannelRankPool {
            channels: 2,
            ranks_per_channel: half,
            bank_groups: 1,
        };
        // In-shape extremes still map without wrapping.
        assert_eq!(p.id_of(1, half - 1, 0), Ok(2 * half - 1));
        assert_eq!(p.try_units(), Ok(2 * half));
        // A shape one bank-group split away from overflow is caught as a
        // typed error, not a wrapped id: 2 × MAX/2 × 2 > usize::MAX.
        let wide = ChannelRankPool {
            channels: 2,
            ranks_per_channel: half,
            bank_groups: 2,
        };
        assert_eq!(wide.try_units(), Err(PoolIdError::Overflow));
        assert_eq!(wide.id_of(1, half - 1, 1), Err(PoolIdError::Overflow));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_pool_rejected() {
        SingleDimmPool::new(0);
    }
}
