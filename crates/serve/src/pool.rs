//! The schedulable filter-unit pool.
//!
//! JAFAR places one filter unit per rank, but "the pool" the serving
//! engine schedules over is not inherently one DIMM's rank vector: with a
//! multi-channel memory system every channel brings its own ranks, and
//! bank-group-level designs (Membrane-style) multiply the pool again
//! within a rank. [`FilterPool`] abstracts that topology: the engine
//! schedules over opaque **unit ids** `0..units()`, and the pool maps
//! each id to its physical coordinates — `{channel, rank, bank_group}` —
//! so dispatch, health tracking, canary probing, fault confinement and
//! the availability ledger all work per unit rather than per DIMM-rank.
//!
//! # Unit id scheme
//!
//! Ids are dense and channel-major:
//!
//! ```text
//! unit = (channel · ranks_per_channel + rank) · bank_groups + bank_group
//! ```
//!
//! so a single-channel, one-bank-group pool degenerates to `unit == rank`
//! — today's single-DIMM layout, byte-for-byte. The id order is also the
//! engine's deterministic tie-break order, which keeps serve runs pure
//! functions of `(workload, policy, config, pool)`.
//!
//! # Placement rules
//!
//! The pool is a topology map only; *placement* — where each unit's
//! column replica, bitset buffer and projection buffer live — is recorded
//! in the serve env's per-unit address slices (`replicas[u]`, `outs[u]`,
//! `proj_outs[u]`, all channel-local addresses within
//! `modules[unit(u).channel]`). A column's stripes land whole on one
//! channel's ranks (contiguous placement, `phase_rows(rows, 1, 0)` rows
//! per replica in [`jafar_core::interleave`] terms), never word-
//! interleaved across channels: contiguous placement writes each output
//! line once, where interleaving would pay the §2.2 masked
//! read-modify-write on every output burst. Because every unit's
//! arguments are recorded per unit, the byte-identity argument of the
//! single-DIMM engine carries over unchanged — each unit's shard run is
//! indistinguishable from the same shard on a single-channel pool.
//!
//! Busy/health/affinity state is *engine* state, keyed by unit id: the
//! busy vector, the [`crate::health::HealthTracker`] lifecycle and the
//! served-count affinity ledger all index by unit, so quarantine and
//! canary probing confine failures to one unit without touching its
//! channel siblings.

/// Physical coordinates of one schedulable filter unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FilterUnit {
    /// Memory channel the unit's DIMM hangs off.
    pub channel: usize,
    /// Rank within that channel the unit filters.
    pub rank: usize,
    /// Bank group within the rank (0 for whole-rank units; reserved for
    /// Membrane-style bank-group-level pools).
    pub bank_group: usize,
}

/// A schedulable pool of filter units: the topology the serving engine
/// dispatches onto. See the module docs for the id scheme and placement
/// rules.
pub trait FilterPool {
    /// Number of schedulable units (dense ids `0..units()`).
    fn units(&self) -> usize;

    /// Physical coordinates of unit `u`.
    ///
    /// # Panics
    /// Implementations may panic when `u >= units()`.
    fn unit(&self, u: usize) -> FilterUnit;

    /// Number of memory channels the pool spans. Every
    /// [`FilterUnit::channel`] is below this.
    fn channels(&self) -> usize;
}

/// Today's single-DIMM pool: one channel, one unit per NDP rank, whole
/// ranks (`unit == rank`). The degenerate case every pre-pool serve run
/// used implicitly.
#[derive(Clone, Copy, Debug)]
pub struct SingleDimmPool {
    ranks: usize,
}

impl SingleDimmPool {
    /// A pool over `ranks` NDP ranks of one DIMM.
    ///
    /// # Panics
    /// Panics if `ranks == 0` — an empty pool can serve nothing.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "a pool needs at least one unit");
        SingleDimmPool { ranks }
    }
}

impl FilterPool for SingleDimmPool {
    fn units(&self) -> usize {
        self.ranks
    }

    fn unit(&self, u: usize) -> FilterUnit {
        assert!(u < self.ranks, "unit {u} out of range ({})", self.ranks);
        FilterUnit {
            channel: 0,
            rank: u,
            bank_group: 0,
        }
    }

    fn channels(&self) -> usize {
        1
    }
}

/// A channels × ranks pool over an interleaved multi-channel memory
/// system (`jafar_memctl::MultiChannel`): every channel brings
/// `ranks_per_channel` whole-rank units. Unit ids are channel-major, so
/// `channels == 1` is bit-compatible with [`SingleDimmPool`].
#[derive(Clone, Copy, Debug)]
pub struct ChannelRankPool {
    channels: usize,
    ranks_per_channel: usize,
    bank_groups: usize,
}

impl ChannelRankPool {
    /// A pool of `channels × ranks_per_channel` whole-rank units.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(channels: usize, ranks_per_channel: usize) -> Self {
        assert!(
            channels > 0 && ranks_per_channel > 0,
            "a pool needs at least one unit"
        );
        ChannelRankPool {
            channels,
            ranks_per_channel,
            bank_groups: 1,
        }
    }

    /// Splits every rank into `bank_groups` independently schedulable
    /// units (Membrane-style bank-group parallelism).
    ///
    /// # Panics
    /// Panics if `bank_groups == 0`.
    pub fn with_bank_groups(mut self, bank_groups: usize) -> Self {
        assert!(bank_groups > 0, "a rank has at least one bank group");
        self.bank_groups = bank_groups;
        self
    }

    /// Ranks each channel contributes.
    pub fn ranks_per_channel(&self) -> usize {
        self.ranks_per_channel
    }

    /// The dense id of `(channel, rank, bank_group)` — the inverse of
    /// [`FilterPool::unit`].
    pub fn id_of(&self, channel: usize, rank: usize, bank_group: usize) -> usize {
        (channel * self.ranks_per_channel + rank) * self.bank_groups + bank_group
    }
}

impl FilterPool for ChannelRankPool {
    fn units(&self) -> usize {
        self.channels * self.ranks_per_channel * self.bank_groups
    }

    fn unit(&self, u: usize) -> FilterUnit {
        assert!(u < self.units(), "unit {u} out of range ({})", self.units());
        let bank_group = u % self.bank_groups;
        let whole = u / self.bank_groups;
        FilterUnit {
            channel: whole / self.ranks_per_channel,
            rank: whole % self.ranks_per_channel,
            bank_group,
        }
    }

    fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dimm_pool_is_the_identity_on_ranks() {
        let p = SingleDimmPool::new(7);
        assert_eq!(p.units(), 7);
        assert_eq!(p.channels(), 1);
        for u in 0..7 {
            assert_eq!(
                p.unit(u),
                FilterUnit {
                    channel: 0,
                    rank: u,
                    bank_group: 0
                }
            );
        }
    }

    #[test]
    fn channel_rank_pool_ids_are_channel_major_and_invertible() {
        let p = ChannelRankPool::new(4, 3);
        assert_eq!(p.units(), 12);
        assert_eq!(p.channels(), 4);
        let mut seen = std::collections::HashSet::new();
        for u in 0..p.units() {
            let fu = p.unit(u);
            assert!(fu.channel < 4 && fu.rank < 3 && fu.bank_group == 0);
            assert_eq!(p.id_of(fu.channel, fu.rank, fu.bank_group), u);
            assert!(seen.insert(fu), "ids are distinct coordinates");
        }
        // Channel-major: consecutive ids walk ranks within a channel.
        assert_eq!(p.unit(0).channel, 0);
        assert_eq!(p.unit(2).channel, 0);
        assert_eq!(p.unit(3).channel, 1);
    }

    #[test]
    fn one_channel_pool_matches_single_dimm_pool() {
        let a = SingleDimmPool::new(5);
        let b = ChannelRankPool::new(1, 5);
        assert_eq!(a.units(), b.units());
        for u in 0..a.units() {
            assert_eq!(a.unit(u), b.unit(u));
        }
    }

    #[test]
    fn bank_groups_multiply_the_pool() {
        let p = ChannelRankPool::new(2, 2).with_bank_groups(4);
        assert_eq!(p.units(), 16);
        let fu = p.unit(p.id_of(1, 0, 3));
        assert_eq!((fu.channel, fu.rank, fu.bank_group), (1, 0, 3));
        // All 16 coordinates are distinct and round-trip.
        for u in 0..p.units() {
            let fu = p.unit(u);
            assert_eq!(p.id_of(fu.channel, fu.rank, fu.bank_group), u);
        }
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_pool_rejected() {
        SingleDimmPool::new(0);
    }
}
