//! Per-query records and the aggregate [`ServeReport`].

use crate::workload::QueryOp;
use jafar_common::time::Tick;
use std::fmt;

/// Which rung of the degradation ladder a query ended up on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Not yet arrived or still queued. Only observable mid-serve; a
    /// finished [`ServeReport`] never contains pending records.
    Pending,
    /// Rejected at admission (queue full). Never ran; no result.
    Shed,
    /// Ran on JAFAR devices across `ranks` ranks (1 = single-device).
    Device {
        /// Ranks the query's scan was sharded over.
        ranks: u32,
    },
    /// Degraded to the host CPU scan to protect its deadline.
    Cpu,
}

/// The full life of one submitted query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRecord {
    /// Submission index within the workload.
    pub id: u32,
    /// Inclusive predicate lower bound.
    pub lo: i64,
    /// Inclusive predicate upper bound.
    pub hi: i64,
    /// The operator the query ran over its predicate.
    pub op: QueryOp,
    /// When the query arrived at admission control.
    pub submitted: Tick,
    /// When it was dispatched (left the queue); `None` if shed.
    pub started: Option<Tick>,
    /// When its last shard finished; `None` if shed.
    pub done: Option<Tick>,
    /// Its deadline (`submitted + slo`); `Tick::MAX` without an SLO.
    pub deadline: Tick,
    /// The rung it ran on.
    pub mode: ExecMode,
    /// Rows the predicate matched (0 if shed).
    pub matched: u64,
    /// The selection vector it produced, bit per row, LSB-first within
    /// each byte — bit-identical to a solo run of the same predicate.
    /// Filled for [`QueryOp::Select`] and [`QueryOp::Project`] (where the
    /// bitset is the select phase's intermediate); empty for the
    /// scalar-emitting operators on *both* rungs, and if shed.
    pub bitset: Vec<u8>,
    /// The scalar a [`QueryOp::SelectCount`] / [`QueryOp::SelectAgg`]
    /// query emitted — identical whichever rung it ran on. `None` for the
    /// other operators, for `Min`/`Max` over an empty selection, and if
    /// shed.
    pub agg: Option<i64>,
    /// The packed qualifying values a [`QueryOp::Project`] query
    /// reconstructed (one column's worth — the `k` passes all project the
    /// served column, so they are byte-identical). Empty for the other
    /// operators and if shed.
    pub projected: Vec<i64>,
    /// The `(key, count, folded value)` rows a [`QueryOp::GroupBy`]
    /// query produced, sorted by key — identical whichever rung (or mix
    /// of rungs) the partitions ran on. Empty for the other operators
    /// and if shed.
    pub groups: Vec<(i64, u64, Option<i64>)>,
}

impl QueryRecord {
    /// Submission-to-completion latency; `None` if shed.
    pub fn latency(&self) -> Option<Tick> {
        self.done.map(|d| d.saturating_sub(self.submitted))
    }

    /// Time spent queued before dispatch; `None` if shed.
    pub fn queue_wait(&self) -> Option<Tick> {
        self.started.map(|s| s.saturating_sub(self.submitted))
    }

    /// Dispatch-to-completion service time; `None` if shed.
    pub fn service(&self) -> Option<Tick> {
        match (self.started, self.done) {
            (Some(s), Some(d)) => Some(d.saturating_sub(s)),
            _ => None,
        }
    }

    /// True when the query completed after its deadline (shed queries
    /// never complete, so they do not count as misses here).
    pub fn missed_deadline(&self) -> bool {
        self.done.is_some_and(|d| d > self.deadline)
    }
}

/// One filter unit's slice of the availability picture: how long it sat
/// outside the schedulable pool and how its canary probes went. A unit is
/// one entry of the serve run's [`crate::pool::FilterPool`] — on a
/// single-DIMM pool `unit == rank` with `channel == 0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitAvailability {
    /// The pool unit id.
    pub unit: u32,
    /// The unit's memory channel.
    pub channel: u32,
    /// The unit's rank within its channel.
    pub rank: u32,
    /// Total time out of the pool (quarantine entry to observed repair,
    /// or end of run for a quarantine that never repaired).
    pub downtime: Tick,
    /// Times the unit entered quarantine.
    pub quarantines: u64,
    /// Canary probes that completed on the device (repairs).
    pub canary_ok: u64,
    /// Canary probes that parked (unit still dark).
    pub canary_fail: u64,
}

/// Availability metrics of one serve run: the per-unit health ledger plus
/// the engine's failure-path counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Availability {
    /// One entry per pool unit, in unit-id order.
    pub units: Vec<UnitAvailability>,
    /// Parked shards resumed on a different unit from their checkpoint.
    pub migrations: u64,
    /// Shards (or aggregate jobs) that re-entered the dispatch ladder
    /// after their unit failed mid-query.
    pub requeues: u64,
    /// Arrivals shed only because quarantined units tightened the
    /// admission bound below the configured queue capacity.
    pub sheds_tightened: u64,
}

impl Availability {
    /// Sum of every unit's downtime.
    pub fn total_downtime(&self) -> Tick {
        self.units
            .iter()
            .fold(Tick::ZERO, |acc, r| acc + r.downtime)
    }

    /// True when any failure machinery engaged during the run.
    pub fn disturbed(&self) -> bool {
        self.migrations > 0
            || self.requeues > 0
            || self.sheds_tightened > 0
            || self.units.iter().any(|r| r.quarantines > 0)
    }
}

/// Aggregate outcome of one [`crate::engine::run_serve`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Every submitted query, in submission order (shed ones included).
    pub records: Vec<QueryRecord>,
    /// When the last query finished, measured from serve start.
    pub makespan: Tick,
    /// Name of the scheduling policy that produced this report.
    pub policy: &'static str,
    /// Per-unit downtime, migrations, requeues and canary outcomes.
    pub availability: Availability,
    /// Discrete events the engine processed to produce this report —
    /// the denominator of the engine's own events/sec throughput (see
    /// the `fig_engine` microbenchmark). Shard steps are not events.
    pub events: u64,
}

impl ServeReport {
    /// Queries that ran to completion.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.done.is_some()).count()
    }

    /// Queries rejected at admission.
    pub fn shed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.mode == ExecMode::Shed)
            .count()
    }

    /// Completed queries that ran on JAFAR devices.
    pub fn device_queries(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.mode, ExecMode::Device { .. }))
            .count()
    }

    /// Completed queries degraded to the CPU rung.
    pub fn cpu_queries(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.mode == ExecMode::Cpu)
            .count()
    }

    /// Completed queries that finished past their deadline.
    pub fn deadline_misses(&self) -> usize {
        self.records.iter().filter(|r| r.missed_deadline()).count()
    }

    fn sorted_latencies(&self) -> Vec<Tick> {
        let mut lats: Vec<Tick> = self.records.iter().filter_map(|r| r.latency()).collect();
        lats.sort_unstable();
        lats
    }

    /// Nearest-rank latency percentile over completed queries. `pct` is
    /// clamped into `1..=100` — `0` behaves as p1 (the minimum over any
    /// sample smaller than 100) and anything above 100 as p100 (the
    /// maximum). `None` when nothing completed.
    pub fn latency_percentile(&self, pct: u64) -> Option<Tick> {
        percentile(&self.sorted_latencies(), pct)
    }

    /// The distinct operator kinds present in the stream, in submission
    /// order of first appearance.
    pub fn ops(&self) -> Vec<&'static str> {
        let mut ops = Vec::new();
        for r in &self.records {
            let name = r.op.name();
            if !ops.contains(&name) {
                ops.push(name);
            }
        }
        ops
    }

    /// Per-operator latency/throughput breakdown, one entry per distinct
    /// operator kind in first-appearance order. Operator classes with
    /// zero completions (every query of the kind shed) are skipped:
    /// they have no latency sample and no throughput, and an entry of
    /// `None`s and zeros only invites NaN arithmetic downstream —
    /// [`Self::ops`] still lists every kind that was *submitted*.
    pub fn op_breakdown(&self) -> Vec<OpBreakdown> {
        self.ops()
            .into_iter()
            .filter_map(|op| {
                let recs: Vec<&QueryRecord> =
                    self.records.iter().filter(|r| r.op.name() == op).collect();
                let mut lats: Vec<Tick> = recs.iter().filter_map(|r| r.latency()).collect();
                lats.sort_unstable();
                let completed = recs.iter().filter(|r| r.done.is_some()).count();
                if completed == 0 {
                    return None;
                }
                let secs = self.makespan.as_ps() as f64 * 1e-12;
                Some(OpBreakdown {
                    op,
                    submitted: recs.len(),
                    completed,
                    shed: recs.iter().filter(|r| r.mode == ExecMode::Shed).count(),
                    cpu: recs.iter().filter(|r| r.mode == ExecMode::Cpu).count(),
                    p50: percentile(&lats, 50),
                    p99: percentile(&lats, 99),
                    mean_service: mean(recs.iter().filter_map(|r| r.service())),
                    throughput_qps: if secs > 0.0 {
                        completed as f64 / secs
                    } else {
                        0.0
                    },
                })
            })
            .collect()
    }

    /// Median completion latency.
    pub fn p50(&self) -> Option<Tick> {
        self.latency_percentile(50)
    }

    /// 95th-percentile completion latency.
    pub fn p95(&self) -> Option<Tick> {
        self.latency_percentile(95)
    }

    /// 99th-percentile completion latency.
    pub fn p99(&self) -> Option<Tick> {
        self.latency_percentile(99)
    }

    /// Mean time completed queries spent queued before dispatch.
    pub fn mean_queue_wait(&self) -> Option<Tick> {
        mean(self.records.iter().filter_map(|r| r.queue_wait()))
    }

    /// Mean dispatch-to-completion service time of completed queries.
    pub fn mean_service(&self) -> Option<Tick> {
        mean(self.records.iter().filter_map(|r| r.service()))
    }

    /// Span from the first to the last submission across every record,
    /// shed arrivals included: the window the offered load actually
    /// covered. `None` when fewer than two queries arrived or they all
    /// arrived at one instant (a batch has no arrival span).
    pub fn offered_window(&self) -> Option<Tick> {
        let first = self.records.iter().map(|r| r.submitted).min()?;
        let last = self.records.iter().map(|r| r.submitted).max()?;
        (last > first).then(|| last.saturating_sub(first))
    }

    /// The accounting denominator shared by [`Self::offered_qps`] and
    /// [`Self::throughput_qps`]: the realized arrival window, or the
    /// makespan when the window is degenerate (a batch or a single
    /// query). One shared denominator is the point — dividing arrivals
    /// by one clock and completions by another is exactly the bug that
    /// let a fully-completed, zero-shed run report throughput below its
    /// offered load.
    fn accounting_secs(&self) -> f64 {
        let span = self.offered_window().unwrap_or(self.makespan);
        span.as_ps() as f64 * 1e-12
    }

    /// Realized offered load: submitted queries per second of the
    /// arrival window (makespan for degenerate windows). For a seeded
    /// open-loop workload this is the *observed* rate, which can drift a
    /// few percent from the configured `1 / mean_gap`.
    pub fn offered_qps(&self) -> f64 {
        let secs = self.accounting_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / secs
    }

    /// Goodput against the offered load: completed queries per second of
    /// the same arrival window [`Self::offered_qps`] uses, so
    /// `throughput_qps == offered_qps · completed/submitted` holds
    /// exactly — a zero-shed run keeps up with its offered load by
    /// construction, and `throughput_qps <= offered_qps` always. For the
    /// service-limited capacity plateau (the saturation knee), use
    /// [`Self::service_rate_qps`] instead.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.accounting_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }

    /// Sustained service rate: completed queries per second of makespan
    /// (admission of the first query to completion of the last,
    /// drain included). Under heavy overload this is the capacity
    /// plateau — the saturation-knee metric — where
    /// [`Self::throughput_qps`] measures goodput relative to the offered
    /// window.
    pub fn service_rate_qps(&self) -> f64 {
        let secs = self.makespan.as_ps() as f64 * 1e-12;
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }
}

/// One operator kind's slice of a [`ServeReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct OpBreakdown {
    /// Operator-kind mnemonic ([`QueryOp::name`]).
    pub op: &'static str,
    /// Queries of this kind submitted.
    pub submitted: usize,
    /// Queries of this kind that completed.
    pub completed: usize,
    /// Queries of this kind rejected at admission.
    pub shed: usize,
    /// Completed queries of this kind that ran on the degraded CPU rung.
    pub cpu: usize,
    /// Median completion latency of this kind.
    pub p50: Option<Tick>,
    /// 99th-percentile completion latency of this kind.
    pub p99: Option<Tick>,
    /// Mean dispatch-to-completion service time of this kind.
    pub mean_service: Option<Tick>,
    /// Completed queries of this kind per second of (whole-run) makespan.
    pub throughput_qps: f64,
}

/// Nearest-rank percentile over sorted latencies; `pct` clamped to
/// `1..=100`, `None` on an empty sample.
fn percentile(sorted: &[Tick], pct: u64) -> Option<Tick> {
    if sorted.is_empty() {
        return None;
    }
    let idx = (pct.clamp(1, 100) as usize * sorted.len()).div_ceil(100) - 1;
    Some(sorted[idx])
}

fn mean(iter: impl Iterator<Item = Tick>) -> Option<Tick> {
    let (mut sum, mut n) = (0u64, 0u64);
    for t in iter {
        sum += t.as_ps();
        n += 1;
    }
    (n > 0).then(|| Tick::from_ps(sum / n))
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve[{}]: {} submitted, {} completed ({} device / {} cpu), {} shed, {} deadline misses",
            self.policy,
            self.records.len(),
            self.completed(),
            self.device_queries(),
            self.cpu_queries(),
            self.shed(),
            self.deadline_misses(),
        )?;
        writeln!(
            f,
            "  makespan {:.3} ms, offered {:.1} q/s, throughput {:.1} q/s, service rate {:.1} q/s",
            self.makespan.as_ms_f64(),
            self.offered_qps(),
            self.throughput_qps(),
            self.service_rate_qps(),
        )?;
        // A degenerate run (everything shed) has no latency samples;
        // render those as 0.000 ms rather than NaN — a report is for
        // machines and dashboards as much as eyes, and "NaN" poisons
        // both.
        let ms = |t: Option<Tick>| t.map_or(0.0, |t| t.as_ms_f64());
        writeln!(
            f,
            "  latency p50 {:.3} / p95 {:.3} / p99 {:.3} ms; mean queue-wait {:.3} ms, mean service {:.3} ms",
            ms(self.p50()),
            ms(self.p95()),
            ms(self.p99()),
            ms(self.mean_queue_wait()),
            ms(self.mean_service()),
        )?;
        if self.availability.disturbed() {
            let a = &self.availability;
            writeln!(
                f,
                "  availability: {} quarantine(s), downtime {:.3} ms, {} migration(s), {} requeue(s), {} tightened shed(s), canary {}/{} ok",
                a.units.iter().map(|r| r.quarantines).sum::<u64>(),
                a.total_downtime().as_ms_f64(),
                a.migrations,
                a.requeues,
                a.sheds_tightened,
                a.units.iter().map(|r| r.canary_ok).sum::<u64>(),
                a.units
                    .iter()
                    .map(|r| r.canary_ok + r.canary_fail)
                    .sum::<u64>(),
            )?;
        }
        let breakdown = self.op_breakdown();
        if breakdown.len() > 1 {
            for b in breakdown {
                writeln!(
                    f,
                    "  [{}] {}/{} done ({} cpu, {} shed), p50 {:.3} / p99 {:.3} ms, mean service {:.3} ms, {:.1} q/s",
                    b.op,
                    b.completed,
                    b.submitted,
                    b.cpu,
                    b.shed,
                    ms(b.p50),
                    ms(b.p99),
                    ms(b.mean_service),
                    b.throughput_qps,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::workload::AggFn;

    fn record(id: u32, submitted: u64, started: u64, done: u64) -> QueryRecord {
        QueryRecord {
            id,
            lo: 0,
            hi: 0,
            op: QueryOp::Select,
            submitted: Tick::from_ps(submitted),
            started: Some(Tick::from_ps(started)),
            done: Some(Tick::from_ps(done)),
            deadline: Tick::MAX,
            mode: ExecMode::Device { ranks: 1 },
            matched: 0,
            bitset: Vec::new(),
            agg: None,
            projected: Vec::new(),
            groups: Vec::new(),
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let records: Vec<QueryRecord> = (0..100)
            .map(|i| record(i, 0, 0, (i as u64 + 1) * 1000))
            .collect();
        let report = ServeReport {
            records,
            makespan: Tick::from_ps(100_000),
            policy: "fifo",
            availability: Availability::default(),
            events: 0,
        };
        assert_eq!(report.p50(), Some(Tick::from_ps(50_000)));
        assert_eq!(report.p95(), Some(Tick::from_ps(95_000)));
        assert_eq!(report.p99(), Some(Tick::from_ps(99_000)));
        assert_eq!(report.latency_percentile(100), Some(Tick::from_ps(100_000)));
    }

    #[test]
    fn breakdown_sums_to_latency() {
        let r = record(0, 100, 250, 700);
        assert_eq!(r.queue_wait(), Some(Tick::from_ps(150)));
        assert_eq!(r.service(), Some(Tick::from_ps(450)));
        assert_eq!(r.latency(), Some(Tick::from_ps(600)));
    }

    #[test]
    fn empty_report_has_no_percentiles() {
        let report = ServeReport {
            records: Vec::new(),
            makespan: Tick::ZERO,
            policy: "fifo",
            availability: Availability::default(),
            events: 0,
        };
        assert_eq!(report.p99(), None);
        assert_eq!(report.throughput_qps(), 0.0);
    }

    #[test]
    fn percentile_input_domain_clamps_to_1_and_100() {
        // The doc comment promises clamping; pin it down: pct 0 behaves
        // as p1 (the sample minimum here) and pct > 100 as p100 (the
        // maximum), never panicking or indexing out of bounds.
        let records: Vec<QueryRecord> = (0..100)
            .map(|i| record(i, 0, 0, (i as u64 + 1) * 1000))
            .collect();
        let report = ServeReport {
            records,
            makespan: Tick::from_ps(100_000),
            policy: "fifo",
            availability: Availability::default(),
            events: 0,
        };
        assert_eq!(report.latency_percentile(0), Some(Tick::from_ps(1000)));
        assert_eq!(
            report.latency_percentile(0),
            report.latency_percentile(1),
            "pct 0 clamps up to p1"
        );
        assert_eq!(report.latency_percentile(101), Some(Tick::from_ps(100_000)));
        assert_eq!(
            report.latency_percentile(u64::MAX),
            report.latency_percentile(100),
            "pct > 100 clamps down to p100"
        );
        // A single-element sample returns that element at every pct.
        let one = ServeReport {
            records: vec![record(0, 0, 0, 777)],
            makespan: Tick::from_ps(777),
            policy: "fifo",
            availability: Availability::default(),
            events: 0,
        };
        for pct in [0, 1, 50, 100, u64::MAX] {
            assert_eq!(one.latency_percentile(pct), Some(Tick::from_ps(777)));
        }
    }

    #[test]
    fn zero_shed_throughput_keeps_up_with_offered_load() {
        // Regression: BENCH_serving.json once reported throughput_qps
        // 5152 against offered_qps 6185 at load 0.25 with 48/48
        // completed and 0 shed — impossible for a fully-completed run.
        // Completions were divided by the makespan (arrival span *plus
        // drain*) while the offered rate ignored the realized arrival
        // span; both must share one accounting window.
        let records: Vec<QueryRecord> = (0..48)
            .map(|i| {
                // Uneven (Poisson-ish) gaps, service stretching past the
                // last arrival so the makespan includes drain.
                let sub = u64::from(i) * 1000 + (u64::from(i) % 7) * 300;
                record(i, sub, sub + 50, sub + 2500)
            })
            .collect();
        let makespan = Tick::from_ps(
            records
                .iter()
                .map(|r| r.done.unwrap().as_ps())
                .max()
                .unwrap(),
        );
        let report = ServeReport {
            records,
            makespan,
            policy: "fifo",
            availability: Availability::default(),
            events: 0,
        };
        assert_eq!(report.shed(), 0);
        assert_eq!(report.completed(), 48);
        assert!(
            makespan > report.offered_window().unwrap(),
            "the scenario must include drain past the last arrival"
        );
        let floor = report.offered_qps() * report.completed() as f64 / report.records.len() as f64;
        assert!(
            report.throughput_qps() >= floor * (1.0 - 1e-9),
            "zero-shed throughput {} must keep up with offered {} (floor {})",
            report.throughput_qps(),
            report.offered_qps(),
            floor
        );
        assert!(
            report.throughput_qps() <= report.offered_qps() * (1.0 + 1e-9),
            "completions cannot outrun arrivals"
        );
        // The drain-including service rate stays available — and for this
        // run it is strictly below the offered rate, which is exactly why
        // it was the wrong numerator/denominator pair to call throughput.
        assert!(report.service_rate_qps() < report.offered_qps());
    }

    #[test]
    fn batch_arrivals_fall_back_to_the_makespan_window() {
        // All arrivals at one instant: no arrival span exists, so both
        // rates fall back to the makespan and the goodput identity
        // throughput == offered · completed/submitted still holds.
        let mut records: Vec<QueryRecord> = (0..4).map(|i| record(i, 0, 10, 1000)).collect();
        records[3].mode = ExecMode::Shed;
        records[3].started = None;
        records[3].done = None;
        let report = ServeReport {
            records,
            makespan: Tick::from_ps(1000),
            policy: "fifo",
            availability: Availability::default(),
            events: 0,
        };
        assert_eq!(report.offered_window(), None);
        assert!((report.offered_qps() - 4.0e12 / 1000.0).abs() < 1e-3);
        let identity = report.offered_qps() * 3.0 / 4.0;
        assert!((report.throughput_qps() - identity).abs() < 1e-6);
    }

    #[test]
    fn op_breakdown_slices_by_operator_kind() {
        let mut records = Vec::new();
        // 2 selects (1k, 2k), 1 count on the CPU rung (10k), 1 shed sum.
        records.push(record(0, 0, 0, 1000));
        records.push(record(1, 0, 0, 2000));
        let mut count = record(2, 0, 0, 10_000);
        count.op = QueryOp::SelectCount;
        count.mode = ExecMode::Cpu;
        count.agg = Some(42);
        records.push(count);
        let mut sum = record(3, 0, 0, 0);
        sum.op = QueryOp::SelectAgg(AggFn::Sum);
        sum.mode = ExecMode::Shed;
        sum.started = None;
        sum.done = None;
        records.push(sum);
        let report = ServeReport {
            records,
            makespan: Tick::from_ps(1_000_000),
            policy: "edf",
            availability: Availability::default(),
            events: 0,
        };
        assert_eq!(report.ops(), vec!["select", "count", "sum"]);
        let breakdown = report.op_breakdown();
        // "sum" was submitted but fully shed: ops() lists it, the
        // breakdown skips it (no completions → no latency/throughput row).
        assert_eq!(breakdown.len(), 2);
        let sel = &breakdown[0];
        assert_eq!((sel.op, sel.submitted, sel.completed), ("select", 2, 2));
        assert_eq!(sel.p99, Some(Tick::from_ps(2000)));
        let cnt = &breakdown[1];
        assert_eq!((cnt.op, cnt.completed, cnt.cpu), ("count", 1, 1));
        assert_eq!(cnt.p50, Some(Tick::from_ps(10_000)));
        // The rendered report carries the per-operator lines for the
        // classes that completed work, and only those.
        let shown = report.to_string();
        assert!(shown.contains("[select]"));
        assert!(shown.contains("[count]"));
        assert!(!shown.contains("[sum]"));
    }

    #[test]
    fn all_shed_report_stays_finite() {
        // Regression: a run where admission sheds *everything* used to
        // render NaN latencies (Display mapped missing percentiles with
        // f64::NAN) and kept a breakdown row of Nones for each class.
        // Degenerate inputs must produce finite, zeroed accounting.
        let records: Vec<QueryRecord> = (0..5)
            .map(|i| {
                let mut r = record(i, u64::from(i) * 100, 0, 0);
                r.mode = ExecMode::Shed;
                r.started = None;
                r.done = None;
                r
            })
            .collect();
        let report = ServeReport {
            records,
            makespan: Tick::ZERO,
            policy: "fifo",
            availability: Availability::default(),
            events: 0,
        };
        assert_eq!(report.completed(), 0);
        assert_eq!(report.shed(), 5);
        assert_eq!(report.p50(), None);
        assert_eq!(report.p99(), None);
        assert_eq!(report.throughput_qps(), 0.0);
        assert_eq!(
            report.service_rate_qps(),
            0.0,
            "zero completions over a zero makespan is a zero rate, not 0/0"
        );
        assert!(report.op_breakdown().is_empty());
        let shown = report.to_string();
        assert!(
            !shown.contains("NaN") && !shown.contains("inf"),
            "degenerate report must render finite numbers:\n{shown}"
        );
    }
}
