//! Pluggable scheduling policies for the serving engine.

/// How the engine picks the next queued query and the filter units to
/// run it on.
///
/// All three policies are deterministic: ties are broken by submission
/// index (queries) and by unit id (units), so a serve run is a pure
/// function of its workload, configuration and pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-in first-out: dispatch in admission order onto the
    /// lowest-numbered free units.
    Fifo,
    /// Earliest-deadline-first: dispatch the queued query with the
    /// nearest deadline (admission order among equals). Falls back to
    /// FIFO when the workload carries no SLO.
    Edf,
    /// Contention-aware unit affinity: dispatch in admission order, but
    /// prefer units on the least-loaded channel (fewest busy siblings),
    /// then healthy, lightly-used units — units whose circuit breaker is
    /// open sort last, then by queries served so far, then by id. On a
    /// single-channel pool the channel key is constant and the order
    /// reduces to the original rank affinity. Under a rank-scoped fault
    /// this steers load away from the sick unit instead of feeding it
    /// queries that will crawl through the recovery ladder; on a
    /// multi-channel pool it also balances fan-out across channels.
    RankAffinity,
}

impl SchedPolicy {
    /// Stable lower-case mnemonic for reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Edf => "edf",
            SchedPolicy::RankAffinity => "rank-affinity",
        }
    }
}
