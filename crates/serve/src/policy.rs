//! Pluggable scheduling policies for the serving engine.

/// How the engine picks the next queued query and the ranks to run it on.
///
/// All three policies are deterministic: ties are broken by submission
/// index (queries) and by rank index (ranks), so a serve run is a pure
/// function of its workload and configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-in first-out: dispatch in admission order onto the
    /// lowest-numbered free ranks.
    Fifo,
    /// Earliest-deadline-first: dispatch the queued query with the
    /// nearest deadline (admission order among equals). Falls back to
    /// FIFO when the workload carries no SLO.
    Edf,
    /// Contention-aware rank affinity: dispatch in admission order, but
    /// prefer healthy, lightly-used ranks — ranks whose circuit breaker
    /// is open sort last, then by queries served so far, then by index.
    /// Under a rank-scoped fault this steers load away from the sick
    /// rank instead of feeding it queries that will crawl through the
    /// recovery ladder.
    RankAffinity,
}

impl SchedPolicy {
    /// Stable lower-case mnemonic for reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Edf => "edf",
            SchedPolicy::RankAffinity => "rank-affinity",
        }
    }
}
