//! The per-unit health lifecycle behind the serving engine's failure
//! domain: `healthy → suspect → quarantined → probing → healthy`.
//!
//! The tracker is keyed by **pool unit id** (one entry per
//! [`crate::pool::FilterPool`] unit — a `{channel, rank, bank-group}`
//! coordinate; on a single-DIMM pool `unit == rank`). A unit is
//! **suspect** the instant one of its shards parks (the resilient
//! driver's fail-fast ladder gave up on a page) and **quarantined** — out
//! of the schedulable pool — once the engine's rescue event confirms the
//! failure and re-dispatches the shard. A quarantined unit dwells for
//! [`HealthConfig::probe_after`], then the engine sends a **canary**
//! select at it; a canary that completes on the device repairs the unit
//! back to healthy, one that parks doubles the dwell (capped at
//! [`HealthConfig::probe_max`]) and re-quarantines.
//!
//! [`HealthTracker`] is the pure state machine: it owns no clocks, emits
//! no trace events and touches no hardware — the engine drives every
//! transition at a deterministic event time and reports them, which keeps
//! serve runs a pure function of `(workload, policy, config)` even under
//! injected unit outages. Downtime accounting runs from quarantine entry
//! to observed repair (or end of run, via [`HealthTracker::finalize`]).
//! Because state is per unit, a failure on one unit never bleeds into its
//! channel siblings: quarantine, probing and repair are all confined to
//! the failing unit id.

use crate::report::UnitAvailability;
use jafar_common::time::Tick;

/// Where a unit sits in its failure lifecycle. Only
/// [`UnitState::Healthy`] units are schedulable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UnitState {
    /// In the schedulable pool.
    #[default]
    Healthy,
    /// A shard parked on this unit; the rescue event will confirm.
    Suspect,
    /// Out of the pool, waiting out its probe dwell.
    Quarantined,
    /// A canary query is in flight against it.
    Probing,
}

impl UnitState {
    /// The mnemonic the trace stream uses for this state.
    pub fn name(&self) -> &'static str {
        match self {
            UnitState::Healthy => "healthy",
            UnitState::Suspect => "suspect",
            UnitState::Quarantined => "quarantined",
            UnitState::Probing => "probing",
        }
    }
}

/// Knobs of the unit health lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Quarantine dwell before the first canary probe.
    pub probe_after: Tick,
    /// Dwell ceiling as failed canaries double it.
    pub probe_max: Tick,
    /// Rows the canary select scans (clamped to the served column).
    pub canary_rows: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            probe_after: Tick::from_us(200),
            probe_max: Tick::from_ms(5),
            canary_rows: 512,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct UnitHealth {
    state: UnitState,
    /// When the current quarantine began (meaningful while not healthy).
    down_since: Tick,
    /// Current probe dwell (doubles per failed canary, capped).
    dwell: Tick,
    downtime: Tick,
    quarantines: u64,
    canary_ok: u64,
    canary_fail: u64,
}

/// The pure per-unit health state machine. See the module docs for the
/// lifecycle; every method is a deterministic function of its inputs.
pub struct HealthTracker {
    cfg: HealthConfig,
    units: Vec<UnitHealth>,
}

impl HealthTracker {
    /// A tracker with every unit healthy.
    pub fn new(nunits: usize, cfg: HealthConfig) -> Self {
        HealthTracker {
            cfg,
            units: vec![UnitHealth::default(); nunits],
        }
    }

    /// The lifecycle knobs this tracker runs under.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Current state of `unit`.
    pub fn state(&self, unit: usize) -> UnitState {
        self.units[unit].state
    }

    /// True when `unit` may receive new work.
    pub fn is_schedulable(&self, unit: usize) -> bool {
        self.units[unit].state == UnitState::Healthy
    }

    /// Units currently in the schedulable pool.
    pub fn schedulable_count(&self) -> usize {
        self.units
            .iter()
            .filter(|r| r.state == UnitState::Healthy)
            .count()
    }

    /// Healthy → suspect (a shard parked; the rescue event will decide).
    /// Returns true on a real transition, false when the unit was already
    /// somewhere else in the lifecycle.
    pub fn mark_suspect(&mut self, unit: usize) -> bool {
        let r = &mut self.units[unit];
        if r.state == UnitState::Healthy {
            r.state = UnitState::Suspect;
            true
        } else {
            false
        }
    }

    /// Healthy/suspect → quarantined at `at`. Returns the tick the first
    /// canary probe is due, or `None` when the unit was already
    /// quarantined or probing (no new probe is owed).
    pub fn quarantine(&mut self, unit: usize, at: Tick) -> Option<Tick> {
        let r = &mut self.units[unit];
        match r.state {
            UnitState::Healthy | UnitState::Suspect => {
                r.state = UnitState::Quarantined;
                r.down_since = at;
                r.dwell = self.cfg.probe_after;
                r.quarantines += 1;
                Some(at + r.dwell)
            }
            UnitState::Quarantined | UnitState::Probing => None,
        }
    }

    /// Quarantined → probing (the canary is being sent).
    pub fn begin_probe(&mut self, unit: usize) {
        debug_assert_eq!(self.units[unit].state, UnitState::Quarantined);
        self.units[unit].state = UnitState::Probing;
    }

    /// The canary parked: probing → quarantined with the dwell doubled
    /// (capped at [`HealthConfig::probe_max`]). Returns the next probe
    /// tick.
    pub fn probe_failed(&mut self, unit: usize, at: Tick) -> Tick {
        let cap = self.cfg.probe_max;
        let r = &mut self.units[unit];
        r.state = UnitState::Quarantined;
        r.canary_fail += 1;
        r.dwell = Tick::from_ps(r.dwell.as_ps().saturating_mul(2)).min(cap);
        at + r.dwell
    }

    /// The canary completed on the device: probing → healthy, with the
    /// quarantine's downtime (entry to observed repair) booked.
    pub fn repaired(&mut self, unit: usize, at: Tick) {
        let r = &mut self.units[unit];
        r.state = UnitState::Healthy;
        r.canary_ok += 1;
        r.downtime += at.saturating_sub(r.down_since);
    }

    /// Books the open downtime of every unit still out of the pool when
    /// the run ends at `makespan` (its quarantine never repaired).
    pub fn finalize(&mut self, makespan: Tick) {
        for r in &mut self.units {
            if matches!(r.state, UnitState::Quarantined | UnitState::Probing) {
                r.downtime += makespan.saturating_sub(r.down_since);
            }
        }
    }

    /// One unit's availability record for the serve report. The tracker
    /// knows only unit ids; the engine decorates the record with the
    /// unit's pool coordinates (channel, rank) before reporting it.
    pub fn availability(&self, unit: usize) -> UnitAvailability {
        let r = &self.units[unit];
        UnitAvailability {
            unit: unit as u32,
            channel: 0,
            rank: unit as u32,
            downtime: r.downtime,
            quarantines: r.quarantines,
            canary_ok: r.canary_ok,
            canary_fail: r.canary_fail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_walks_suspect_quarantine_probe_repair() {
        let mut h = HealthTracker::new(2, HealthConfig::default());
        assert_eq!(h.state(0), UnitState::Healthy);
        assert_eq!(h.schedulable_count(), 2);

        assert!(h.mark_suspect(0));
        assert!(!h.mark_suspect(0), "second suspect is a no-op");
        assert_eq!(h.state(0), UnitState::Suspect);
        assert!(!h.is_schedulable(0), "suspect units take no new work");
        assert_eq!(h.schedulable_count(), 1);

        let probe_at = h.quarantine(0, Tick::from_us(10));
        assert_eq!(
            probe_at,
            Some(Tick::from_us(10) + HealthConfig::default().probe_after)
        );
        assert!(
            h.quarantine(0, Tick::from_us(11)).is_none(),
            "re-quarantine owes no second probe"
        );
        assert!(!h.mark_suspect(0));

        h.begin_probe(0);
        assert_eq!(h.state(0), UnitState::Probing);
        assert!(!h.is_schedulable(0));
        h.repaired(0, Tick::from_us(300));
        assert_eq!(h.state(0), UnitState::Healthy);
        assert_eq!(h.schedulable_count(), 2);

        let a = h.availability(0);
        assert_eq!(a.quarantines, 1);
        assert_eq!(a.canary_ok, 1);
        assert_eq!(a.canary_fail, 0);
        assert_eq!(a.downtime, Tick::from_us(290));
    }

    #[test]
    fn failed_probes_double_the_dwell_up_to_the_cap() {
        let cfg = HealthConfig {
            probe_after: Tick::from_us(100),
            probe_max: Tick::from_us(350),
            canary_rows: 512,
        };
        let mut h = HealthTracker::new(1, cfg);
        h.quarantine(0, Tick::ZERO);
        h.begin_probe(0);
        let next = h.probe_failed(0, Tick::from_us(100));
        assert_eq!(next, Tick::from_us(300), "dwell doubled to 200us");
        h.begin_probe(0);
        let next = h.probe_failed(0, next);
        assert_eq!(next, Tick::from_us(650), "dwell capped at 350us");
        assert_eq!(h.availability(0).canary_fail, 2);
    }

    #[test]
    fn finalize_books_open_downtime_at_makespan() {
        let mut h = HealthTracker::new(2, HealthConfig::default());
        h.quarantine(1, Tick::from_us(50));
        h.finalize(Tick::from_us(450));
        assert_eq!(h.availability(1).downtime, Tick::from_us(400));
        assert_eq!(h.availability(0).downtime, Tick::ZERO);
    }

    #[test]
    fn lifecycle_is_confined_to_one_unit_of_a_wide_pool() {
        // 2 channels × 3 ranks = 6 units; unit 4 (channel 1, rank 1 in
        // channel-major order) fails. Its siblings — same channel and
        // other channel alike — stay schedulable throughout.
        let mut h = HealthTracker::new(6, HealthConfig::default());
        h.mark_suspect(4);
        h.quarantine(4, Tick::from_us(5));
        assert_eq!(h.schedulable_count(), 5);
        for u in [0, 1, 2, 3, 5] {
            assert!(h.is_schedulable(u), "unit {u} undisturbed");
        }
        h.begin_probe(4);
        h.repaired(4, Tick::from_us(500));
        assert_eq!(h.schedulable_count(), 6);
        assert_eq!(h.availability(3).downtime, Tick::ZERO);
        assert_eq!(h.availability(5).downtime, Tick::ZERO);
    }
}
