//! Query submission from column-store plans.
//!
//! The serving engine speaks [`QuerySpec`] — an inclusive range over one
//! column. A column-store client speaks [`Plan`]s. This module is the
//! bridge: it lifts the *pushdown candidate* of a scan plan (its first
//! filter, the one `jafar-columnstore`'s planner offloads) into a served
//! query, so a stream of plans can be replayed through
//! `System::serve` with the same admission/scheduling treatment as a
//! synthetic workload.

use crate::workload::{Arrivals, QuerySpec, Workload};
use jafar_columnstore::plan::Plan;
use jafar_common::time::Tick;

/// Extracts the servable range predicate from a plan: the first filter
/// of a `Plan::Scan`, compiled to inclusive bounds exactly as the
/// pushdown planner would. Returns `None` for non-scan plans and for
/// scans with no filter (a full scan has nothing to push down).
pub fn spec_from_plan(plan: &Plan) -> Option<QuerySpec> {
    match plan {
        Plan::Scan { filters, .. } => filters.first().map(|(_, pred)| {
            let (lo, hi) = pred.bounds();
            QuerySpec { lo, hi, slo: None }
        }),
        _ => None,
    }
}

/// Builds a served workload from a stream of plans: every plan with a
/// servable predicate becomes one query, in plan order. `arrivals` must
/// cover the servable plans (for [`Arrivals::Open`], one instant per
/// extracted query).
pub fn workload_from_plans(plans: &[Plan], arrivals: Arrivals, slo: Option<Tick>) -> Workload {
    let specs: Vec<QuerySpec> = plans.iter().filter_map(spec_from_plan).collect();
    Workload {
        specs,
        arrivals,
        slo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_columnstore::ops::scan::ScanPredicate;

    fn scan(pred: ScanPredicate) -> Plan {
        Plan::Scan {
            table: "t".into(),
            filters: vec![("c".into(), pred)],
            columns: vec!["c".into()],
        }
    }

    #[test]
    fn scan_plans_become_specs() {
        assert_eq!(
            spec_from_plan(&scan(ScanPredicate::Between(3, 9))),
            Some(QuerySpec {
                lo: 3,
                hi: 9,
                slo: None
            })
        );
        assert_eq!(
            spec_from_plan(&scan(ScanPredicate::Lt(5))),
            Some(QuerySpec {
                lo: i64::MIN,
                hi: 4,
                slo: None
            })
        );
    }

    #[test]
    fn unfiltered_scans_are_not_servable() {
        let plan = Plan::Scan {
            table: "t".into(),
            filters: Vec::new(),
            columns: vec!["c".into()],
        };
        assert_eq!(spec_from_plan(&plan), None);
    }

    #[test]
    fn workload_keeps_plan_order() {
        let plans = vec![scan(ScanPredicate::Eq(1)), scan(ScanPredicate::Eq(2))];
        let w = workload_from_plans(
            &plans,
            Arrivals::Closed {
                clients: 1,
                think: Tick::ZERO,
            },
            None,
        );
        let spec = |x: i64| QuerySpec {
            lo: x,
            hi: x,
            slo: None,
        };
        assert_eq!(w.specs, vec![spec(1), spec(2)]);
    }
}
