//! Query submission from column-store plans.
//!
//! The serving engine speaks [`QuerySpec`] — one operator over one
//! column, filtered by an inclusive range. A column-store client speaks
//! [`Plan`]s. This module is the bridge: it lifts servable plans into
//! served queries so a stream of plans can be replayed through
//! `System::serve` with the same admission/scheduling treatment as a
//! synthetic workload. Submission is pool-agnostic: the lifted workload
//! carries no placement, so the same plan stream serves unchanged over
//! a single DIMM's rank vector or a channels × ranks
//! [`crate::pool::FilterPool`].
//!
//! # Lifting rules
//!
//! - `Plan::Scan` with at least one filter, **all on the same column**:
//!   the filters are conjuncted into tightened inclusive bounds (the
//!   engine serves exactly the plan's semantics, not just its first
//!   filter). An empty `columns` list lifts to [`QueryOp::Select`] (the
//!   selection vector is the result); a non-empty one to
//!   [`QueryOp::Project`] with `k = columns.len()`.
//! - `Plan::GroupBy` with no grouping keys and exactly one aggregate
//!   over a servable scan: `Count` lifts to [`QueryOp::SelectCount`];
//!   `Sum`/`Min`/`Max` lift to [`QueryOp::SelectAgg`] when the aggregate
//!   input column is the filtered column (the engine folds the column it
//!   filters).
//! - `Plan::GroupBy` with exactly **one** grouping key and one
//!   `Sum`/`Min`/`Max` aggregate over the filtered column lifts to
//!   [`QueryOp::GroupBy`]; the grouping column's name rides along in
//!   [`Lowered::key_col`] so the embedding can hand the engine that
//!   column as `ServeEnv::keys`.
//! - `Plan::Join` lifts through the catalog-aware [`semi_join_spec`]:
//!   the build side executes on the host, its key set compresses into
//!   disjoint [`KeyRanges`], and the probe column serves as a fused
//!   multi-lane select — a bitset-driven semi-join pushdown.
//! - Everything else — filterless scans, filters spanning several
//!   columns, multi-key grouping, sorts, limits — returns a typed
//!   [`SubmitError::Unservable`] naming *why*: the engine cannot honor
//!   those plans, and serving a loosened approximation would silently
//!   over-match (exactly the bug this module used to have, twice — it
//!   first served loosened filters, then silently returned a bare
//!   `None` that erased the reason a plan stayed on the host).

use crate::workload::{AggFn, Arrivals, KeyRanges, QueryOp, QuerySpec, Workload};
use jafar_columnstore::ops::agg::AggKind;
use jafar_columnstore::plan::{execute, Catalog, Plan};
use jafar_columnstore::ExecContext;
use jafar_common::time::Tick;

/// Why a plan (or plan stream) could not be lifted into served queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// `Arrivals::Open` carried a different number of instants than
    /// there are plans (or servable queries) — pairing them positionally
    /// would silently hand query *i* plan *j*'s arrival time.
    ArrivalMismatch {
        /// Plans in the stream.
        plans: usize,
        /// Plans that lifted into served queries.
        servable: usize,
        /// Arrival instants supplied.
        arrivals: usize,
    },
    /// The engine cannot honor this plan shape exactly; the reason says
    /// which rule it fell out of. Serving a loosened approximation
    /// instead would silently over-match the plan's semantics.
    Unservable {
        /// Which lifting rule the plan fell out of.
        reason: &'static str,
    },
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::ArrivalMismatch {
                plans,
                servable,
                arrivals,
            } => write!(
                f,
                "open-loop arrivals ({arrivals}) match neither the plan stream \
                 ({plans}) nor its servable queries ({servable})"
            ),
            SubmitError::Unservable { reason } => {
                write!(f, "plan is not servable: {reason}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A plan lifted into a served query, plus what the embedding must
/// supply alongside the served column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lowered {
    /// The served query.
    pub spec: QuerySpec,
    /// For a keyed group-by: the grouping column's name. The embedding
    /// must hand the engine this column, row-aligned with the served
    /// column, as `ServeEnv::keys`.
    pub key_col: Option<String>,
}

impl Lowered {
    fn plain(spec: QuerySpec) -> Self {
        Lowered {
            spec,
            key_col: None,
        }
    }
}

fn unservable(reason: &'static str) -> SubmitError {
    SubmitError::Unservable { reason }
}

/// Conjuncts every filter of a scan into one inclusive range, provided
/// they all name the same column. Returns `(column, lo, hi)`.
///
/// # Errors
/// [`SubmitError::Unservable`] when the scan has no filter (the engine
/// always filters) or filters several columns (the engine scans one).
fn conjunct_filters(plan: &Plan) -> Result<(&str, i64, i64), SubmitError> {
    let Plan::Scan { filters, .. } = plan else {
        return Err(unservable("only scans carry servable filters"));
    };
    let Some((first_col, first_pred)) = filters.first() else {
        return Err(unservable(
            "a filterless scan matches every row — the engine always filters",
        ));
    };
    let (mut lo, mut hi) = first_pred.bounds();
    for (col, pred) in &filters[1..] {
        if col != first_col {
            return Err(unservable(
                "filters span several columns; the engine scans one",
            ));
        }
        let (l, h) = pred.bounds();
        lo = lo.max(l);
        hi = hi.min(h);
    }
    Ok((first_col, lo, hi))
}

/// Lifts one plan into a served query per the module-level rules.
///
/// # Errors
/// [`SubmitError::Unservable`] naming the rule the plan fell out of.
/// Joins are "unservable" here only because their build side needs the
/// catalog — lift them with [`semi_join_spec`] instead.
pub fn spec_from_plan(plan: &Plan) -> Result<Lowered, SubmitError> {
    match plan {
        Plan::Scan { columns, .. } => {
            let (_, lo, hi) = conjunct_filters(plan)?;
            let op = if columns.is_empty() {
                QueryOp::Select
            } else {
                QueryOp::Project {
                    k: columns.len() as u32,
                }
            };
            Ok(Lowered::plain(QuerySpec {
                lo,
                hi,
                op,
                slo: None,
            }))
        }
        Plan::GroupBy { input, keys, aggs } => {
            if keys.len() > 1 {
                return Err(unservable(
                    "multi-key group-by stays on the host (one key column per query)",
                ));
            }
            let [(agg_col, kind, _)] = aggs.as_slice() else {
                return Err(unservable("multi-aggregate plans stay on the host"));
            };
            let (scan_col, lo, hi) = conjunct_filters(input)?;
            match keys.as_slice() {
                [] => {
                    let op = match kind {
                        AggKind::Count => QueryOp::SelectCount,
                        AggKind::Sum if agg_col == scan_col => QueryOp::SelectAgg(AggFn::Sum),
                        AggKind::Min if agg_col == scan_col => QueryOp::SelectAgg(AggFn::Min),
                        AggKind::Max if agg_col == scan_col => QueryOp::SelectAgg(AggFn::Max),
                        AggKind::Avg => {
                            return Err(unservable("avg needs a divide the device fold lacks"));
                        }
                        _ => {
                            return Err(unservable(
                                "aggregate folds a different column than the filter scans",
                            ));
                        }
                    };
                    Ok(Lowered::plain(QuerySpec {
                        lo,
                        hi,
                        op,
                        slo: None,
                    }))
                }
                [key] => {
                    let agg = match kind {
                        AggKind::Sum if agg_col == scan_col => AggFn::Sum,
                        AggKind::Min if agg_col == scan_col => AggFn::Min,
                        AggKind::Max if agg_col == scan_col => AggFn::Max,
                        AggKind::Count => {
                            return Err(unservable("keyed counts stay on the host"));
                        }
                        AggKind::Avg => {
                            return Err(unservable("avg needs a divide the device fold lacks"));
                        }
                        _ => {
                            return Err(unservable(
                                "aggregate folds a different column than the filter scans",
                            ));
                        }
                    };
                    Ok(Lowered {
                        spec: QuerySpec::group_by(lo, hi, agg),
                        key_col: Some(key.clone()),
                    })
                }
                _ => unreachable!("len > 1 handled above"),
            }
        }
        Plan::Join { .. } => Err(unservable(
            "joins lower through semi_join_spec, which needs the catalog",
        )),
        Plan::Sort { .. } => Err(unservable("ordering stays on the host")),
        Plan::Limit { .. } => Err(unservable("row caps stay on the host")),
    }
}

/// Lifts a `Plan::Join` into a served semi-join: the build side runs on
/// the host (it is the small input by convention), its distinct key set
/// compresses into disjoint inclusive [`KeyRanges`], and the resulting
/// spec filters the **probe key column** — the embedding serves that
/// column and the engine scans it as one fused multi-lane select whose
/// lanes OR into the semi-join bitset.
///
/// The join's probe *output* columns are not materialized: the served
/// result is the probe-side selection vector (which rows have a build
/// match), i.e. the semi-join reduction every hash join begins with.
///
/// # Errors
/// [`SubmitError::Unservable`] when the plan is not a join, the build
/// side fails to execute or lacks the key column, or the build keys
/// compress to more disjoint ranges than the device's fused-lane budget
/// ([`crate::workload::MAX_KEY_RANGES`]).
pub fn semi_join_spec(
    plan: &Plan,
    catalog: &Catalog<'_>,
    cx: &mut ExecContext,
) -> Result<Lowered, SubmitError> {
    let Plan::Join {
        build, build_key, ..
    } = plan
    else {
        return Err(unservable("only joins lower to semi-joins"));
    };
    let frame = execute(build, catalog, cx)
        .map_err(|_| unservable("the join's build side failed to execute on the host"))?;
    let keys = frame
        .column(build_key)
        .map_err(|_| unservable("the build side does not produce the build key column"))?;
    let ranges = KeyRanges::from_keys(keys).map_err(|_| {
        unservable("the build keys compress to more disjoint ranges than the fused-lane budget")
    })?;
    Ok(Lowered::plain(QuerySpec::semi_join(ranges)))
}

/// Builds a served workload from a stream of plans: every servable plan
/// becomes one query, in plan order; unservable plans are dropped with
/// their arrival instants (their typed reasons are recoverable per plan
/// via [`spec_from_plan`]). Returns the workload plus the key column
/// any keyed group-by in the stream groups on — the embedding must
/// serve that column as `ServeEnv::keys`.
///
/// For [`Arrivals::Open`] the instants must align: either one instant
/// per *plan* (instants paired with non-servable plans are dropped with
/// them) or one per *servable query*. Anything else is an
/// [`SubmitError::ArrivalMismatch`] — the silent positional re-pairing
/// this function used to do handed query *i* plan *j*'s arrival time.
///
/// # Errors
/// [`SubmitError::ArrivalMismatch`] as above, or
/// [`SubmitError::Unservable`] when two keyed group-bys in one stream
/// name *different* key columns — the engine carries one key column per
/// served workload.
pub fn workload_from_plans(
    plans: &[Plan],
    arrivals: Arrivals,
    slo: Option<Tick>,
) -> Result<(Workload, Option<String>), SubmitError> {
    let lifted: Vec<Option<Lowered>> = plans.iter().map(|p| spec_from_plan(p).ok()).collect();
    let servable = lifted.iter().flatten().count();
    let mut key_col: Option<String> = None;
    for l in lifted.iter().flatten() {
        if let Some(k) = &l.key_col {
            match &key_col {
                None => key_col = Some(k.clone()),
                Some(prev) if prev == k => {}
                Some(_) => {
                    return Err(unservable(
                        "keyed group-bys in one stream name different key columns",
                    ));
                }
            }
        }
    }
    let arrivals = match arrivals {
        Arrivals::Open(times) if times.len() == plans.len() => Arrivals::Open(
            lifted
                .iter()
                .zip(&times)
                .filter(|(s, _)| s.is_some())
                .map(|(_, &t)| t)
                .collect(),
        ),
        Arrivals::Open(times) if times.len() != servable => {
            return Err(SubmitError::ArrivalMismatch {
                plans: plans.len(),
                servable,
                arrivals: times.len(),
            });
        }
        other => other,
    };
    Ok((
        Workload {
            specs: lifted.into_iter().flatten().map(|l| l.spec).collect(),
            arrivals,
            slo,
        },
        key_col,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_columnstore::ops::scan::ScanPredicate;
    use jafar_columnstore::Planner;
    use jafar_tpch::queries::plans::{q1_plan_shape, q3_plan_shape, q6_plan_shape};
    use jafar_tpch::{TpchConfig, TpchDb};

    fn scan(pred: ScanPredicate) -> Plan {
        Plan::Scan {
            table: "t".into(),
            filters: vec![("c".into(), pred)],
            columns: Vec::new(),
        }
    }

    fn multi_scan(filters: Vec<(&str, ScanPredicate)>) -> Plan {
        Plan::Scan {
            table: "t".into(),
            filters: filters
                .into_iter()
                .map(|(c, p)| (c.to_string(), p))
                .collect(),
            columns: Vec::new(),
        }
    }

    fn select_spec(lo: i64, hi: i64) -> QuerySpec {
        QuerySpec {
            lo,
            hi,
            op: QueryOp::Select,
            slo: None,
        }
    }

    fn ok_spec(plan: &Plan) -> QuerySpec {
        spec_from_plan(plan).expect("servable").spec
    }

    fn reason(plan: &Plan) -> &'static str {
        match spec_from_plan(plan).expect_err("unservable") {
            SubmitError::Unservable { reason } => reason,
            other => panic!("expected Unservable, got {other:?}"),
        }
    }

    #[test]
    fn scan_plans_become_specs() {
        assert_eq!(
            ok_spec(&scan(ScanPredicate::Between(3, 9))),
            select_spec(3, 9)
        );
        assert_eq!(
            ok_spec(&scan(ScanPredicate::Lt(5))),
            select_spec(i64::MIN, 4)
        );
    }

    /// Regression (pre-fix the bridge returned a bare `None` here: the
    /// caller could not tell *why* the plan stayed on the host, and the
    /// silent drop hid lowering bugs behind "not servable").
    #[test]
    fn unservable_shapes_carry_their_reason() {
        let unfiltered = Plan::Scan {
            table: "t".into(),
            filters: Vec::new(),
            columns: vec!["c".into()],
        };
        assert!(reason(&unfiltered).contains("filterless"));
        let sorted = Plan::Sort {
            input: Box::new(scan(ScanPredicate::Eq(1))),
            keys: Vec::new(),
        };
        assert!(reason(&sorted).contains("ordering"));
        let limited = Plan::Limit {
            input: Box::new(scan(ScanPredicate::Eq(1))),
            n: 10,
        };
        assert!(reason(&limited).contains("row caps"));
    }

    /// Regression (pre-fix this returned `(5, i64::MAX)` — the `Lt(20)`
    /// conjunct was silently dropped and the served bitset over-matched
    /// the plan's semantics).
    #[test]
    fn multi_filter_scans_conjunct_into_tightened_bounds() {
        let plan = multi_scan(vec![
            ("c", ScanPredicate::Ge(5)),
            ("c", ScanPredicate::Lt(20)),
            ("c", ScanPredicate::Between(0, 17)),
        ]);
        assert_eq!(ok_spec(&plan), select_spec(5, 17));
    }

    /// Regression (pre-fix this served the first filter and ignored the
    /// predicate on the other column entirely).
    #[test]
    fn filters_on_several_columns_are_not_servable() {
        let plan = multi_scan(vec![
            ("c", ScanPredicate::Ge(5)),
            ("d", ScanPredicate::Lt(20)),
        ]);
        assert!(reason(&plan).contains("several columns"));
    }

    #[test]
    fn projecting_scans_lift_to_project_ops() {
        let plan = Plan::Scan {
            table: "t".into(),
            filters: vec![("c".into(), ScanPredicate::Between(1, 8))],
            columns: vec!["c".into(), "d".into()],
        };
        assert_eq!(
            ok_spec(&plan),
            QuerySpec {
                lo: 1,
                hi: 8,
                op: QueryOp::Project { k: 2 },
                slo: None,
            }
        );
    }

    #[test]
    fn global_aggregates_lift_to_scalar_ops() {
        let agg = |kind: AggKind, col: &str| Plan::GroupBy {
            input: Box::new(scan(ScanPredicate::Between(2, 11))),
            keys: Vec::new(),
            aggs: vec![(col.into(), kind, "out".into())],
        };
        assert_eq!(
            ok_spec(&agg(AggKind::Count, "anything")).op,
            QueryOp::SelectCount
        );
        assert_eq!(
            ok_spec(&agg(AggKind::Sum, "c")).op,
            QueryOp::SelectAgg(AggFn::Sum)
        );
        assert_eq!(
            ok_spec(&agg(AggKind::Min, "c")).op,
            QueryOp::SelectAgg(AggFn::Min)
        );
        // Folding a different column than the filter scans, or
        // averaging — the engine cannot honor either.
        assert!(reason(&agg(AggKind::Sum, "d")).contains("different column"));
        assert!(reason(&agg(AggKind::Avg, "c")).contains("divide"));
    }

    #[test]
    fn single_key_group_by_lowers_and_conveys_its_key_column() {
        let plan = Plan::GroupBy {
            input: Box::new(scan(ScanPredicate::Between(2, 11))),
            keys: vec!["k".into()],
            aggs: vec![("c".into(), AggKind::Sum, "out".into())],
        };
        let lowered = spec_from_plan(&plan).expect("keyed group-by lowers");
        assert_eq!(lowered.spec.op, QueryOp::GroupBy { agg: AggFn::Sum });
        assert_eq!((lowered.spec.lo, lowered.spec.hi), (2, 11));
        assert_eq!(lowered.key_col.as_deref(), Some("k"));

        let two_keys = Plan::GroupBy {
            input: Box::new(scan(ScanPredicate::Between(2, 11))),
            keys: vec!["k".into(), "j".into()],
            aggs: vec![("c".into(), AggKind::Sum, "out".into())],
        };
        assert!(reason(&two_keys).contains("multi-key"));
    }

    #[test]
    fn join_plans_lower_to_semi_joins_through_the_catalog() {
        use jafar_columnstore::column::Column;
        use jafar_columnstore::table::Table;
        // A compact build side: keys {3,4,5, 20} -> two disjoint ranges.
        let build_t = Table::new("build", vec![Column::int("bk", vec![20, 4, 3, 5, 4])]);
        let probe_t = Table::new("probe", vec![Column::int("pk", vec![1, 3, 20, 7])]);
        let catalog = Catalog::new().add(&build_t).add(&probe_t);
        let plan = Plan::Join {
            build: Box::new(Plan::Scan {
                table: "build".into(),
                filters: vec![("bk".into(), ScanPredicate::Ge(0))],
                columns: vec!["bk".into()],
            }),
            probe: Box::new(Plan::Scan {
                table: "probe".into(),
                filters: Vec::new(),
                columns: vec!["pk".into()],
            }),
            build_key: "bk".into(),
            probe_key: "pk".into(),
        };
        let mut cx = ExecContext::new(Planner::default());
        let lowered = semi_join_spec(&plan, &catalog, &mut cx).expect("join lowers");
        let QueryOp::SemiJoin { ranges } = lowered.spec.op else {
            panic!("expected a semi-join, got {:?}", lowered.spec.op);
        };
        assert_eq!(ranges.as_slice(), &[(3, 5), (20, 20)]);
        assert_eq!((lowered.spec.lo, lowered.spec.hi), (3, 20), "envelope");

        // A build side fragmenting past the 8-lane budget is refused
        // with its reason, not approximated by the envelope.
        let wide_t = Table::new(
            "wide",
            vec![Column::int("bk", (0..9).map(|i| i * 10).collect())],
        );
        let catalog = Catalog::new().add(&wide_t).add(&probe_t);
        let wide = Plan::Join {
            build: Box::new(Plan::Scan {
                table: "wide".into(),
                filters: vec![("bk".into(), ScanPredicate::Ge(0))],
                columns: vec!["bk".into()],
            }),
            probe: Box::new(Plan::Scan {
                table: "probe".into(),
                filters: Vec::new(),
                columns: vec!["pk".into()],
            }),
            build_key: "bk".into(),
            probe_key: "pk".into(),
        };
        let err = semi_join_spec(&wide, &catalog, &mut cx).expect_err("9 ranges > 8 lanes");
        assert!(matches!(err, SubmitError::Unservable { reason } if reason.contains("fused-lane")));
    }

    /// The TPC-H lowering contract, pinned: the full Q6 plan stays on
    /// the host because its filters span three columns (the engine
    /// scans one); Q1's top is a sort and its grouping is multi-key;
    /// Q3's top is a row cap — each refusal carries its typed reason,
    /// never a silent drop. The shapes that DO lower: Q1's filtered
    /// projecting scan, and Q3's innermost join via the catalog.
    #[test]
    fn tpch_plan_shapes_lower_exactly_as_documented() {
        let db = TpchDb::generate(TpchConfig {
            sf: 0.0005,
            seed: 41,
        });
        let q6 = q6_plan_shape();
        assert!(
            reason(&q6).contains("several columns"),
            "q6 filters shipdate+discount+quantity; a loosened single-column \
             serve would over-match"
        );

        let q1 = q1_plan_shape();
        // Q1's top is a sort; beneath it, the group-by is multi-key;
        // beneath THAT, the filtered projecting scan lowers.
        assert!(reason(&q1).contains("ordering"));
        let Plan::Sort { input: group, .. } = q1 else {
            panic!("q1's plan top must be a sort")
        };
        assert!(reason(&group).contains("multi-key"));
        let Plan::GroupBy { input: scan, .. } = *group else {
            panic!("q1 groups beneath the sort")
        };
        let lowered = spec_from_plan(&scan).expect("q1's scan is the servable shape");
        assert_eq!(lowered.spec.op, QueryOp::Project { k: 4 });
        assert!(lowered.key_col.is_none());

        let q3 = q3_plan_shape(&db, 10);
        assert!(reason(&q3).contains("row caps"));
        // Its innermost join DOES lower through the catalog — the Q3
        // order-key semi-join is exactly the served join shape.
        let Plan::Limit { input: sort, .. } = q3 else {
            panic!("q3's plan top must be a limit")
        };
        let Plan::Sort { input: group, .. } = *sort else {
            panic!("q3 sorts beneath the limit")
        };
        let Plan::GroupBy { input: join, .. } = *group else {
            panic!("q3 groups beneath the sort")
        };
        let catalog = Catalog::new()
            .add(&db.customer)
            .add(&db.orders)
            .add(&db.lineitem);
        let mut cx = ExecContext::new(Planner::default());
        match semi_join_spec(&join, &catalog, &mut cx) {
            Ok(lowered) => {
                assert!(matches!(lowered.spec.op, QueryOp::SemiJoin { .. }));
            }
            Err(SubmitError::Unservable { reason }) => {
                // At larger scale factors the order-key build side may
                // fragment past the lane budget; the refusal must be
                // the typed overflow reason, never an approximation.
                assert!(reason.contains("fused-lane"), "unexpected: {reason}");
            }
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }

    #[test]
    fn workload_keeps_plan_order() {
        let plans = vec![scan(ScanPredicate::Eq(1)), scan(ScanPredicate::Eq(2))];
        let (w, key_col) = workload_from_plans(
            &plans,
            Arrivals::Closed {
                clients: 1,
                think: Tick::ZERO,
            },
            None,
        )
        .expect("closed loops have no arrival alignment to violate");
        assert_eq!(w.specs, vec![select_spec(1, 1), select_spec(2, 2)]);
        assert_eq!(key_col, None);
    }

    #[test]
    fn keyed_streams_convey_one_key_column_or_refuse() {
        let keyed = |key: &str| Plan::GroupBy {
            input: Box::new(scan(ScanPredicate::Between(0, 9))),
            keys: vec![key.into()],
            aggs: vec![("c".into(), AggKind::Sum, "out".into())],
        };
        let (w, key_col) = workload_from_plans(
            &[keyed("k"), scan(ScanPredicate::Eq(1)), keyed("k")],
            Arrivals::Closed {
                clients: 1,
                think: Tick::ZERO,
            },
            None,
        )
        .expect("one key column across the stream");
        assert_eq!(w.specs.len(), 3);
        assert_eq!(key_col.as_deref(), Some("k"));

        let err = workload_from_plans(
            &[keyed("k"), keyed("j")],
            Arrivals::Closed {
                clients: 1,
                think: Tick::ZERO,
            },
            None,
        )
        .expect_err("two key columns cannot share ServeEnv::keys");
        assert!(matches!(err, SubmitError::Unservable { reason } if reason.contains("different")));
    }

    /// Regression (pre-fix the non-servable middle plan was silently
    /// dropped while the instants were not, so query 1 — lifted from
    /// plan 2 — inherited plan 1's arrival time).
    #[test]
    fn open_arrivals_stay_paired_when_plans_drop_out() {
        let plans = vec![
            scan(ScanPredicate::Eq(1)),
            Plan::Scan {
                table: "t".into(),
                filters: Vec::new(),
                columns: Vec::new(),
            },
            scan(ScanPredicate::Eq(2)),
        ];
        let times = vec![Tick::from_us(1), Tick::from_us(2), Tick::from_us(3)];
        let (w, _) = workload_from_plans(&plans, Arrivals::Open(times), None)
            .expect("per-plan instants align");
        assert_eq!(w.specs.len(), 2);
        assert_eq!(
            w.arrivals,
            Arrivals::Open(vec![Tick::from_us(1), Tick::from_us(3)]),
            "query 1 must keep plan 2's instant, not inherit plan 1's"
        );

        // Ambiguously-sized instant lists are an error, not a guess.
        let err =
            workload_from_plans(&plans, Arrivals::Open(vec![Tick::ZERO; 5]), None).unwrap_err();
        assert_eq!(
            err,
            SubmitError::ArrivalMismatch {
                plans: 3,
                servable: 2,
                arrivals: 5
            }
        );
    }

    /// One instant per servable query (the post-filter convention) is
    /// also accepted.
    #[test]
    fn open_arrivals_per_servable_query_pass_through() {
        let plans = vec![
            scan(ScanPredicate::Eq(1)),
            Plan::Scan {
                table: "t".into(),
                filters: Vec::new(),
                columns: Vec::new(),
            },
            scan(ScanPredicate::Eq(2)),
        ];
        let times = vec![Tick::from_us(4), Tick::from_us(5)];
        let (w, _) = workload_from_plans(&plans, Arrivals::Open(times.clone()), None)
            .expect("per-query instants align");
        assert_eq!(w.arrivals, Arrivals::Open(times));
    }
}
