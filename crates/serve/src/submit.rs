//! Query submission from column-store plans.
//!
//! The serving engine speaks [`QuerySpec`] — one operator over one
//! column, filtered by an inclusive range. A column-store client speaks
//! [`Plan`]s. This module is the bridge: it lifts servable plans into
//! served queries so a stream of plans can be replayed through
//! `System::serve` with the same admission/scheduling treatment as a
//! synthetic workload. Submission is pool-agnostic: the lifted workload
//! carries no placement, so the same plan stream serves unchanged over
//! a single DIMM's rank vector or a channels × ranks
//! [`crate::pool::FilterPool`].
//!
//! # Lifting rules
//!
//! - `Plan::Scan` with at least one filter, **all on the same column**:
//!   the filters are conjuncted into tightened inclusive bounds (the
//!   engine serves exactly the plan's semantics, not just its first
//!   filter). An empty `columns` list lifts to [`QueryOp::Select`] (the
//!   selection vector is the result); a non-empty one to
//!   [`QueryOp::Project`] with `k = columns.len()`.
//! - `Plan::GroupBy` with no grouping keys and exactly one aggregate
//!   over a servable scan: `Count` lifts to [`QueryOp::SelectCount`];
//!   `Sum`/`Min`/`Max` lift to [`QueryOp::SelectAgg`] when the aggregate
//!   input column is the filtered column (the engine folds the column it
//!   filters). `Avg`, grouped aggregation and multi-aggregate plans stay
//!   on the host.
//! - Everything else — filterless scans, filters spanning several
//!   columns, joins, sorts — returns `None`: the engine cannot honor
//!   those plans, and serving a loosened approximation would silently
//!   over-match (exactly the bug this module used to have).

use crate::workload::{AggFn, Arrivals, QueryOp, QuerySpec, Workload};
use jafar_columnstore::ops::agg::AggKind;
use jafar_columnstore::plan::Plan;
use jafar_common::time::Tick;

/// Why a plan stream could not be lifted into a served workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// `Arrivals::Open` carried a different number of instants than
    /// there are plans (or servable queries) — pairing them positionally
    /// would silently hand query *i* plan *j*'s arrival time.
    ArrivalMismatch {
        /// Plans in the stream.
        plans: usize,
        /// Plans that lifted into served queries.
        servable: usize,
        /// Arrival instants supplied.
        arrivals: usize,
    },
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::ArrivalMismatch {
                plans,
                servable,
                arrivals,
            } => write!(
                f,
                "open-loop arrivals ({arrivals}) match neither the plan stream \
                 ({plans}) nor its servable queries ({servable})"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Conjuncts every filter of a scan into one inclusive range, provided
/// they all name the same column. Returns `(column, lo, hi)`; `None`
/// when the scan has no filter or filters several columns.
fn conjunct_filters(plan: &Plan) -> Option<(&str, i64, i64)> {
    let Plan::Scan { filters, .. } = plan else {
        return None;
    };
    let (first_col, first_pred) = filters.first()?;
    let (mut lo, mut hi) = first_pred.bounds();
    for (col, pred) in &filters[1..] {
        if col != first_col {
            return None;
        }
        let (l, h) = pred.bounds();
        lo = lo.max(l);
        hi = hi.min(h);
    }
    Some((first_col, lo, hi))
}

/// Lifts one plan into a served query per the module-level rules, or
/// `None` when the engine cannot honor it exactly.
pub fn spec_from_plan(plan: &Plan) -> Option<QuerySpec> {
    match plan {
        Plan::Scan { columns, .. } => {
            let (_, lo, hi) = conjunct_filters(plan)?;
            let op = if columns.is_empty() {
                QueryOp::Select
            } else {
                QueryOp::Project {
                    k: columns.len() as u32,
                }
            };
            Some(QuerySpec {
                lo,
                hi,
                op,
                slo: None,
            })
        }
        Plan::GroupBy { input, keys, aggs } => {
            if !keys.is_empty() {
                return None;
            }
            let [(agg_col, kind, _)] = aggs.as_slice() else {
                return None;
            };
            let (scan_col, lo, hi) = conjunct_filters(input)?;
            let op = match kind {
                AggKind::Count => QueryOp::SelectCount,
                AggKind::Sum if agg_col == scan_col => QueryOp::SelectAgg(AggFn::Sum),
                AggKind::Min if agg_col == scan_col => QueryOp::SelectAgg(AggFn::Min),
                AggKind::Max if agg_col == scan_col => QueryOp::SelectAgg(AggFn::Max),
                _ => return None,
            };
            Some(QuerySpec {
                lo,
                hi,
                op,
                slo: None,
            })
        }
        _ => None,
    }
}

/// Builds a served workload from a stream of plans: every servable plan
/// becomes one query, in plan order.
///
/// For [`Arrivals::Open`] the instants must align: either one instant
/// per *plan* (instants paired with non-servable plans are dropped with
/// them) or one per *servable query*. Anything else is an
/// [`SubmitError::ArrivalMismatch`] — the silent positional re-pairing
/// this function used to do handed query *i* plan *j*'s arrival time.
///
/// # Errors
/// [`SubmitError::ArrivalMismatch`] as above.
pub fn workload_from_plans(
    plans: &[Plan],
    arrivals: Arrivals,
    slo: Option<Tick>,
) -> Result<Workload, SubmitError> {
    let lifted: Vec<Option<QuerySpec>> = plans.iter().map(spec_from_plan).collect();
    let servable = lifted.iter().flatten().count();
    let arrivals = match arrivals {
        Arrivals::Open(times) if times.len() == plans.len() => Arrivals::Open(
            lifted
                .iter()
                .zip(&times)
                .filter(|(s, _)| s.is_some())
                .map(|(_, &t)| t)
                .collect(),
        ),
        Arrivals::Open(times) if times.len() != servable => {
            return Err(SubmitError::ArrivalMismatch {
                plans: plans.len(),
                servable,
                arrivals: times.len(),
            });
        }
        other => other,
    };
    Ok(Workload {
        specs: lifted.into_iter().flatten().collect(),
        arrivals,
        slo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_columnstore::ops::scan::ScanPredicate;

    fn scan(pred: ScanPredicate) -> Plan {
        Plan::Scan {
            table: "t".into(),
            filters: vec![("c".into(), pred)],
            columns: Vec::new(),
        }
    }

    fn multi_scan(filters: Vec<(&str, ScanPredicate)>) -> Plan {
        Plan::Scan {
            table: "t".into(),
            filters: filters
                .into_iter()
                .map(|(c, p)| (c.to_string(), p))
                .collect(),
            columns: Vec::new(),
        }
    }

    fn select_spec(lo: i64, hi: i64) -> QuerySpec {
        QuerySpec {
            lo,
            hi,
            op: QueryOp::Select,
            slo: None,
        }
    }

    #[test]
    fn scan_plans_become_specs() {
        assert_eq!(
            spec_from_plan(&scan(ScanPredicate::Between(3, 9))),
            Some(select_spec(3, 9))
        );
        assert_eq!(
            spec_from_plan(&scan(ScanPredicate::Lt(5))),
            Some(select_spec(i64::MIN, 4))
        );
    }

    #[test]
    fn unfiltered_scans_are_not_servable() {
        let plan = Plan::Scan {
            table: "t".into(),
            filters: Vec::new(),
            columns: vec!["c".into()],
        };
        assert_eq!(spec_from_plan(&plan), None);
    }

    /// Regression (pre-fix this returned `(5, i64::MAX)` — the `Lt(20)`
    /// conjunct was silently dropped and the served bitset over-matched
    /// the plan's semantics).
    #[test]
    fn multi_filter_scans_conjunct_into_tightened_bounds() {
        let plan = multi_scan(vec![
            ("c", ScanPredicate::Ge(5)),
            ("c", ScanPredicate::Lt(20)),
            ("c", ScanPredicate::Between(0, 17)),
        ]);
        assert_eq!(spec_from_plan(&plan), Some(select_spec(5, 17)));
    }

    /// Regression (pre-fix this served the first filter and ignored the
    /// predicate on the other column entirely).
    #[test]
    fn filters_on_several_columns_are_not_servable() {
        let plan = multi_scan(vec![
            ("c", ScanPredicate::Ge(5)),
            ("d", ScanPredicate::Lt(20)),
        ]);
        assert_eq!(spec_from_plan(&plan), None);
    }

    #[test]
    fn projecting_scans_lift_to_project_ops() {
        let plan = Plan::Scan {
            table: "t".into(),
            filters: vec![("c".into(), ScanPredicate::Between(1, 8))],
            columns: vec!["c".into(), "d".into()],
        };
        assert_eq!(
            spec_from_plan(&plan),
            Some(QuerySpec {
                lo: 1,
                hi: 8,
                op: QueryOp::Project { k: 2 },
                slo: None,
            })
        );
    }

    #[test]
    fn global_aggregates_lift_to_scalar_ops() {
        let agg = |kind: AggKind, col: &str| Plan::GroupBy {
            input: Box::new(scan(ScanPredicate::Between(2, 11))),
            keys: Vec::new(),
            aggs: vec![(col.into(), kind, "out".into())],
        };
        assert_eq!(
            spec_from_plan(&agg(AggKind::Count, "anything")).map(|s| s.op),
            Some(QueryOp::SelectCount)
        );
        assert_eq!(
            spec_from_plan(&agg(AggKind::Sum, "c")).map(|s| s.op),
            Some(QueryOp::SelectAgg(AggFn::Sum))
        );
        assert_eq!(
            spec_from_plan(&agg(AggKind::Min, "c")).map(|s| s.op),
            Some(QueryOp::SelectAgg(AggFn::Min))
        );
        // Folding a different column than the filter scans, averaging,
        // or grouping — the engine cannot honor any of these.
        assert_eq!(spec_from_plan(&agg(AggKind::Sum, "d")), None);
        assert_eq!(spec_from_plan(&agg(AggKind::Avg, "c")), None);
        let grouped = Plan::GroupBy {
            input: Box::new(scan(ScanPredicate::Between(2, 11))),
            keys: vec!["k".into()],
            aggs: vec![("c".into(), AggKind::Sum, "out".into())],
        };
        assert_eq!(spec_from_plan(&grouped), None);
    }

    #[test]
    fn workload_keeps_plan_order() {
        let plans = vec![scan(ScanPredicate::Eq(1)), scan(ScanPredicate::Eq(2))];
        let w = workload_from_plans(
            &plans,
            Arrivals::Closed {
                clients: 1,
                think: Tick::ZERO,
            },
            None,
        )
        .expect("closed loops have no arrival alignment to violate");
        assert_eq!(w.specs, vec![select_spec(1, 1), select_spec(2, 2)]);
    }

    /// Regression (pre-fix the non-servable middle plan was silently
    /// dropped while the instants were not, so query 1 — lifted from
    /// plan 2 — inherited plan 1's arrival time).
    #[test]
    fn open_arrivals_stay_paired_when_plans_drop_out() {
        let plans = vec![
            scan(ScanPredicate::Eq(1)),
            Plan::Scan {
                table: "t".into(),
                filters: Vec::new(),
                columns: Vec::new(),
            },
            scan(ScanPredicate::Eq(2)),
        ];
        let times = vec![Tick::from_us(1), Tick::from_us(2), Tick::from_us(3)];
        let w = workload_from_plans(&plans, Arrivals::Open(times), None)
            .expect("per-plan instants align");
        assert_eq!(w.specs.len(), 2);
        assert_eq!(
            w.arrivals,
            Arrivals::Open(vec![Tick::from_us(1), Tick::from_us(3)]),
            "query 1 must keep plan 2's instant, not inherit plan 1's"
        );

        // Ambiguously-sized instant lists are an error, not a guess.
        let err =
            workload_from_plans(&plans, Arrivals::Open(vec![Tick::ZERO; 5]), None).unwrap_err();
        assert_eq!(
            err,
            SubmitError::ArrivalMismatch {
                plans: 3,
                servable: 2,
                arrivals: 5
            }
        );
    }

    /// One instant per servable query (the post-filter convention) is
    /// also accepted.
    #[test]
    fn open_arrivals_per_servable_query_pass_through() {
        let plans = vec![
            scan(ScanPredicate::Eq(1)),
            Plan::Scan {
                table: "t".into(),
                filters: Vec::new(),
                columns: Vec::new(),
            },
            scan(ScanPredicate::Eq(2)),
        ];
        let times = vec![Tick::from_us(4), Tick::from_us(5)];
        let w = workload_from_plans(&plans, Arrivals::Open(times.clone()), None)
            .expect("per-query instants align");
        assert_eq!(w.arrivals, Arrivals::Open(times));
    }
}
