//! Micro-benchmarks of the memory controller: enqueue/drain throughput
//! under both scheduling policies, and idle-report finalisation.

use jafar_bench::micro;
use jafar_common::time::Tick;
use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};
use jafar_memctl::controller::{ControllerConfig, MemoryController};
use jafar_memctl::{MemRequest, Policy};

fn controller(policy: Policy) -> MemoryController {
    MemoryController::new(
        DramModule::new(
            DramGeometry::gem5_2gb(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        ),
        ControllerConfig {
            policy,
            ..ControllerConfig::default()
        },
    )
}

fn main() {
    for (name, policy) in [
        ("fcfs", Policy::Fcfs),
        ("frfcfs", Policy::FrFcfs { cap: 16 }),
    ] {
        micro::run_batched(
            &format!("memctl/drain_1k_requests_{name}"),
            || controller(policy),
            |mut mc| {
                let mut done = Tick::ZERO;
                let mut seq = 0u64;
                for batch in 0..42u64 {
                    for i in 0..24u64 {
                        let addr = PhysAddr(((batch * 31 + i * 7919) % (1 << 24)) & !63);
                        mc.enqueue(MemRequest::read(addr, Tick::from_ps(seq * 3000)))
                            .expect("capacity");
                        seq += 1;
                    }
                    for completion in mc.drain() {
                        done = done.max(completion.done);
                    }
                }
                done
            },
        );
    }

    // A controller with many completed requests; measure finalisation.
    let mut mc = controller(Policy::default());
    for batch in 0..200u64 {
        for i in 0..24u64 {
            let addr = PhysAddr(((batch * 131 + i * 6151) % (1 << 24)) & !63);
            mc.enqueue(MemRequest::read(
                addr,
                Tick::from_us(batch) + Tick::from_ps(i * 500),
            ))
            .expect("capacity");
        }
        mc.drain();
    }
    micro::run("memctl/idle_report_4800_intervals", || {
        mc.finalize(Tick::from_us(250))
    });
}
