//! Micro-benchmarks of the cache hierarchy and stream prefetcher.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jafar_cache::{Hierarchy, HierarchyConfig, StreamPrefetcher};
use std::hint::black_box;

fn hierarchy_streaming(c: &mut Criterion) {
    c.bench_function("cache/streaming_8k_accesses", |b| {
        b.iter_batched(
            || Hierarchy::new(HierarchyConfig::gem5_like()),
            |mut h| {
                let mut misses = 0u64;
                for i in 0..8192u64 {
                    let outcome = h.access(i * 8, false);
                    misses += u64::from(outcome.level == jafar_cache::HitLevel::Memory);
                }
                misses
            },
            BatchSize::SmallInput,
        )
    });
}

fn hierarchy_random(c: &mut Criterion) {
    c.bench_function("cache/random_8k_accesses", |b| {
        b.iter_batched(
            || Hierarchy::new(HierarchyConfig::gem5_like()),
            |mut h| {
                let mut state = 88172645463325252u64;
                let mut misses = 0u64;
                for _ in 0..8192 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let outcome = h.access((state % (1 << 26)) & !7, false);
                    misses += u64::from(outcome.level == jafar_cache::HitLevel::Memory);
                }
                misses
            },
            BatchSize::SmallInput,
        )
    });
}

fn prefetcher(c: &mut Criterion) {
    c.bench_function("cache/prefetcher_observe_8k", |b| {
        b.iter_batched(
            || StreamPrefetcher::new(8, 8),
            |mut p| {
                let mut issued = 0usize;
                for i in 0..8192u64 {
                    issued += p.observe(black_box(i * 64)).len();
                }
                issued
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, hierarchy_streaming, hierarchy_random, prefetcher);
criterion_main!(benches);
