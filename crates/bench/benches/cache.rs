//! Micro-benchmarks of the cache hierarchy and stream prefetcher.

use jafar_bench::micro;
use jafar_cache::{Hierarchy, HierarchyConfig, StreamPrefetcher};
use std::hint::black_box;

fn main() {
    micro::run_batched(
        "cache/streaming_8k_accesses",
        || Hierarchy::new(HierarchyConfig::gem5_like()),
        |mut h| {
            let mut misses = 0u64;
            for i in 0..8192u64 {
                let outcome = h.access(i * 8, false);
                misses += u64::from(outcome.level == jafar_cache::HitLevel::Memory);
            }
            misses
        },
    );

    micro::run_batched(
        "cache/random_8k_accesses",
        || Hierarchy::new(HierarchyConfig::gem5_like()),
        |mut h| {
            let mut state = 88172645463325252u64;
            let mut misses = 0u64;
            for _ in 0..8192 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let outcome = h.access((state % (1 << 26)) & !7, false);
                misses += u64::from(outcome.level == jafar_cache::HitLevel::Memory);
            }
            misses
        },
    );

    micro::run_batched(
        "cache/prefetcher_observe_8k",
        || StreamPrefetcher::new(8, 8),
        |mut p| {
            let mut issued = 0usize;
            for i in 0..8192u64 {
                issued += p.observe(black_box(i * 64)).len();
            }
            issued
        },
    );
}
