//! Micro-benchmarks of the DDR3 model's hot paths: address decoding, the
//! bank state machine, and transaction-level streaming — the inner loops
//! every Figure-3/Figure-4 simulation spends its time in.

use jafar_bench::micro;
use jafar_common::time::Tick;
use jafar_dram::{
    AddressDecoder, AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr, Requester,
};
use std::hint::black_box;

fn module() -> DramModule {
    DramModule::new(
        DramGeometry::gem5_2gb(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    )
}

fn main() {
    let decoder = AddressDecoder::new(DramGeometry::gem5_2gb(), AddressMapping::RankRowBankBlock);
    micro::run("dram/decode_encode_round_trip", || {
        let mut acc = 0u64;
        for i in 0..1024u64 {
            let coord = decoder.decode(black_box(PhysAddr(i * 64)));
            acc += decoder.encode(coord).0;
        }
        acc
    });

    micro::run_batched(
        "dram/serve_block_streaming_1k_bursts",
        module,
        |mut module| {
            let mut now = Tick::ZERO;
            for i in 0..1024u64 {
                let access = module
                    .serve_addr(PhysAddr(i * 64), false, Requester::Host, now, None)
                    .expect("in range");
                now = access.data_ready;
            }
            now
        },
    );

    micro::run_batched("dram/serve_block_random_1k_bursts", module, |mut module| {
        let mut now = Tick::ZERO;
        let mut addr = 0x9E3779B97F4A7C15u64;
        for _ in 0..1024 {
            addr = addr.wrapping_mul(0xD1342543DE82EF95).wrapping_add(1);
            let a = PhysAddr((addr % (1 << 30)) & !63);
            let access = module
                .serve_addr(a, false, Requester::Host, now, None)
                .expect("in range");
            now = access.data_ready;
        }
        now
    });
}
