//! Micro-benchmarks of the column-store's bulk operators.

use criterion::{criterion_group, criterion_main, Criterion};
use jafar_columnstore::ops::agg::{AggKind, AggSpec};
use jafar_columnstore::ops::{hash_join, scan, ScanPredicate};
use jafar_columnstore::ops::agg::hash_group_by;
use jafar_columnstore::ops::project::gather;
use jafar_columnstore::{Column, PositionList};
use jafar_common::rng::SplitMix64;
use std::hint::black_box;

fn ops(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    let n = 262_144usize;
    let col = Column::int("v", (0..n).map(|_| rng.next_range_inclusive(0, 999)).collect());
    c.bench_function("columnstore/scan_256k", |b| {
        b.iter(|| scan(black_box(&col), ScanPredicate::Between(100, 499)))
    });

    let positions = scan(&col, ScanPredicate::Between(100, 499));
    c.bench_function("columnstore/gather_100k", |b| {
        b.iter(|| gather(black_box(&col), black_box(&positions)))
    });

    let build: Vec<i64> = (0..32_768).map(|_| rng.next_range_inclusive(0, 1 << 20)).collect();
    let probe: Vec<i64> = (0..131_072).map(|_| rng.next_range_inclusive(0, 1 << 20)).collect();
    c.bench_function("columnstore/hash_join_32k_x_128k", |b| {
        b.iter(|| hash_join(black_box(&build), black_box(&probe)))
    });

    let keys: Vec<i64> = (0..n).map(|_| rng.next_range_inclusive(0, 63)).collect();
    let vals: Vec<i64> = (0..n).map(|_| rng.next_range_inclusive(0, 100)).collect();
    c.bench_function("columnstore/group_by_256k_64_groups", |b| {
        b.iter(|| {
            hash_group_by(
                &[black_box(&keys[..])],
                &[AggSpec {
                    kind: AggKind::Sum,
                    input: &vals,
                }],
            )
        })
    });

    let a = PositionList::from_sorted((0..200_000u32).step_by(2).collect());
    let b_list = PositionList::from_sorted((0..200_000u32).step_by(3).collect());
    c.bench_function("columnstore/position_intersect_100k", |bch| {
        bch.iter(|| black_box(&a).intersect(black_box(&b_list)))
    });
}

criterion_group!(benches, ops);
criterion_main!(benches);
