//! Micro-benchmarks of the column-store's bulk operators.

use jafar_bench::micro;
use jafar_columnstore::ops::agg::{hash_group_by, AggKind, AggSpec};
use jafar_columnstore::ops::project::gather;
use jafar_columnstore::ops::{hash_join, scan, ScanPredicate};
use jafar_columnstore::{Column, PositionList};
use jafar_common::rng::SplitMix64;
use std::hint::black_box;

fn main() {
    let mut rng = SplitMix64::new(1);
    let n = 262_144usize;
    let col = Column::int(
        "v",
        (0..n).map(|_| rng.next_range_inclusive(0, 999)).collect(),
    );
    micro::run("columnstore/scan_256k", || {
        scan(black_box(&col), ScanPredicate::Between(100, 499))
    });

    let positions = scan(&col, ScanPredicate::Between(100, 499));
    micro::run("columnstore/gather_100k", || {
        gather(black_box(&col), black_box(&positions))
    });

    let build: Vec<i64> = (0..32_768)
        .map(|_| rng.next_range_inclusive(0, 1 << 20))
        .collect();
    let probe: Vec<i64> = (0..131_072)
        .map(|_| rng.next_range_inclusive(0, 1 << 20))
        .collect();
    micro::run("columnstore/hash_join_32k_x_128k", || {
        hash_join(black_box(&build), black_box(&probe)).expect("in range")
    });

    let keys: Vec<i64> = (0..n).map(|_| rng.next_range_inclusive(0, 63)).collect();
    let vals: Vec<i64> = (0..n).map(|_| rng.next_range_inclusive(0, 100)).collect();
    micro::run("columnstore/group_by_256k_64_groups", || {
        hash_group_by(
            &[black_box(&keys[..])],
            &[AggSpec {
                kind: AggKind::Sum,
                input: &vals,
            }],
        )
    });

    let a = PositionList::from_sorted((0..200_000u32).step_by(2).collect());
    let b_list = PositionList::from_sorted((0..200_000u32).step_by(3).collect());
    micro::run("columnstore/position_intersect_100k", || {
        black_box(&a).intersect(black_box(&b_list))
    });
}
