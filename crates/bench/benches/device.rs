//! Micro-benchmarks of the JAFAR device simulation and the Aladdin-like
//! scheduler it derives its throughput from.

use jafar_accel::ir::jafar_filter_kernel;
use jafar_accel::{Dddg, Resources, Schedule};
use jafar_bench::micro;
use jafar_common::time::Tick;
use jafar_core::{grant_ownership, JafarDevice, Predicate, SelectJob};
use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};

fn main() {
    micro::run_batched(
        "device/select_64k_rows",
        || {
            let mut module = DramModule::new(
                DramGeometry::gem5_2gb(),
                DramTiming::ddr3_paper().without_refresh(),
                AddressMapping::RankRowBankBlock,
            );
            for i in 0..65_536u64 {
                module
                    .data_mut()
                    .write_i64(PhysAddr(i * 8), (i % 1000) as i64);
            }
            let lease = grant_ownership(&mut module, 0, Tick::ZERO).expect("fresh");
            let t0 = lease.acquired_at;

            (module, JafarDevice::paper_default(), t0)
        },
        |(mut module, mut device, t0)| {
            device
                .run_select(
                    &mut module,
                    SelectJob {
                        col_addr: PhysAddr(0),
                        rows: 65_536,
                        predicate: Predicate::Between(100, 499),
                        out_addr: PhysAddr(1 << 20),
                    },
                    t0,
                )
                .expect("owned")
        },
    );

    let kernel = jafar_filter_kernel();
    micro::run("accel/schedule_1k_iterations", || {
        let graph = Dddg::expand(&kernel, 1024, 8);
        Schedule::compute(&graph, &Resources::jafar_default())
    });
    micro::run("accel/steady_state_ii", || {
        Schedule::steady_state_ii(&kernel, &Resources::jafar_default(), 8)
    });
}
