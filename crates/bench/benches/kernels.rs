//! Micro-benchmarks of the CPU scan engine (over the fixed-latency test
//! backend, isolating the kernel model) and the branch predictor.

use jafar_bench::micro;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_cpu::engine::ScanSpec;
use jafar_cpu::{FixedLatencyBackend, ScanEngine, ScanVariant, TwoBitPredictor};
use std::hint::black_box;

fn main() {
    let mut rng = SplitMix64::new(42);
    let values: Vec<i64> = (0..65_536)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    for (name, variant) in [
        ("branching", ScanVariant::Branching),
        ("predicated", ScanVariant::Predicated),
        ("vectorized", ScanVariant::Vectorized { lanes: 4 }),
    ] {
        micro::run_batched(
            &format!("cpu/scan_64k_{name}"),
            || {
                let mut backend = FixedLatencyBackend::new(2 << 20, Tick::from_ns(20));
                backend.put_column(0, &values);
                backend
            },
            |mut backend| {
                let engine = ScanEngine::gem5_like();
                engine
                    .run(
                        &mut backend,
                        ScanSpec {
                            col_addr: 0,
                            rows: values.len() as u64,
                            lo: 0,
                            hi: 499,
                            out_addr: 1 << 20,
                            variant,
                        },
                        Tick::ZERO,
                    )
                    .expect("column placed in range")
            },
        );
    }

    let mut rng = SplitMix64::new(7);
    let outcomes: Vec<bool> = (0..65_536).map(|_| rng.next_bool(0.5)).collect();
    micro::run("cpu/two_bit_predictor_64k", || {
        let mut p = TwoBitPredictor::new();
        for &o in &outcomes {
            p.predict_and_update(black_box(o));
        }
        p.mispredictions()
    });
}
