//! Ablation A3 — §3.3 memory-access scheduling.
//!
//! "Past work has shown that reordering DRAM reads and writes can provide
//! large increases in memory bandwidth and overall system performance ...
//! In this context, JAFAR is simply an additional agent of memory
//! requests, but one that is highly sensitive to intervening requests."
//!
//! Part 1 compares FCFS against FR-FCFS on a mixed (streaming + random)
//! host workload: row-hit rate and completion time.
//!
//! Part 2 quantifies JAFAR's sensitivity to interruptions: streaming a
//! region with exclusive rank ownership versus being interrupted (rows
//! closed by intervening host-style accesses) every k bursts.
//!
//! Usage: `ablation_schedulers [--reqs N]`

use jafar_bench::{arg, f1, f2, print_table};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_dram::{
    AddressMapping, Coord, DramGeometry, DramModule, DramTiming, PhysAddr, Requester,
};
use jafar_memctl::controller::{ControllerConfig, MemoryController};
use jafar_memctl::{MemRequest, Policy};

fn mixed_workload(n: u64) -> Vec<MemRequest> {
    // Two interleaved agents: a streaming scan and a random walker, plus
    // 20% writebacks — the access mix of a query with a hash table.
    let mut rng = SplitMix64::new(0xA3);
    let mut out = Vec::with_capacity(n as usize);
    let mut stream_line = 0u64;
    for i in 0..n {
        let arrival = Tick::from_ps(i * 3_000); // ~3 ns between requests
        let req = if i % 3 == 0 {
            let addr = PhysAddr(rng.next_below(1 << 26) & !63);
            if rng.next_bool(0.3) {
                MemRequest::writeback(addr, arrival)
            } else {
                MemRequest::read(addr, arrival)
            }
        } else {
            stream_line += 1;
            MemRequest::read(PhysAddr((1 << 27) + stream_line * 64), arrival)
        };
        out.push(req);
    }
    out
}

fn run_policy(policy: Policy, reqs: &[MemRequest]) -> (Tick, f64) {
    let module = DramModule::new(
        DramGeometry::gem5_2gb(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    );
    let mut mc = MemoryController::new(
        module,
        ControllerConfig {
            policy,
            ..ControllerConfig::default()
        },
    );
    let mut done = Tick::ZERO;
    for chunk in reqs.chunks(24) {
        for r in chunk {
            mc.enqueue(*r).expect("sized below capacity");
        }
        for c in mc.drain() {
            done = done.max(c.done);
        }
    }
    let hits = mc.counters().row_hits.get();
    let total = hits + mc.counters().row_misses.get() + mc.counters().row_conflicts.get();
    (done, hits as f64 / total.max(1) as f64)
}

fn main() {
    let reqs: u64 = arg("--reqs", 100_000);
    println!("# Ablation A3: memory-access scheduling");
    println!();
    println!("## Part 1: host scheduler policies on a mixed workload ({reqs} requests)");
    let workload = mixed_workload(reqs);
    let mut rows = Vec::new();
    for (name, policy) in [
        ("FCFS", Policy::Fcfs),
        ("FR-FCFS cap=4", Policy::FrFcfs { cap: 4 }),
        ("FR-FCFS cap=16", Policy::FrFcfs { cap: 16 }),
    ] {
        let (done, hit_rate) = run_policy(policy, &workload);
        rows.push(vec![
            name.to_owned(),
            f2(done.as_ms_f64()),
            format!("{:.1}%", hit_rate * 100.0),
        ]);
    }
    print_table(&["policy", "completion (ms)", "row-hit rate"], &rows);
    println!();

    println!("## Part 2: JAFAR's sensitivity to intervening requests");
    // Stream 4096 bursts from rank 0; interrupt every k bursts with a
    // host-style access to a different row of the same bank (closing the
    // device's open row) — what §3.3's missing scheduler would cause.
    let stream_bursts = 4096u64;
    let mut rows = Vec::new();
    for interrupt_every in [0u64, 512, 128, 32, 8] {
        let mut module = DramModule::new(
            DramGeometry::gem5_2gb(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        // No MPR ownership here: both agents issue as Host to model the
        // unarbitrated case.
        let mut now = Tick::ZERO;
        let start = now;
        let decoder = *module.decoder();
        for burst in 0..stream_bursts {
            let access = module
                .serve_addr(PhysAddr(burst * 64), false, Requester::Host, now, None)
                .expect("in range");
            now = access
                .data_ready
                .saturating_sub(module.timing().cl + module.timing().t_burst)
                .max(now)
                + module.timing().bus_clock.period();
            if interrupt_every > 0 && burst % interrupt_every == interrupt_every - 1 {
                // Intervening request: same bank, far-away row.
                let c = decoder.decode(PhysAddr(burst * 64));
                let other = Coord {
                    row: (c.row + 1000) % module.geometry().rows_per_bank,
                    ..c
                };
                let access = module
                    .serve_block(other, false, Requester::Host, now, None)
                    .expect("in range");
                now = access.data_ready;
            }
        }
        // Wait for the final burst to complete.
        let span = now + module.timing().cl + module.timing().t_burst - start;
        let ns_per_burst = span.as_ns_f64() / stream_bursts as f64;
        let label = if interrupt_every == 0 {
            "exclusive (owned rank)".to_owned()
        } else {
            format!("interrupted every {interrupt_every}")
        };
        rows.push(vec![
            label,
            f2(span.as_us_f64()),
            f2(ns_per_burst),
            f1(module.stats().row_hit_rate().unwrap_or(0.0) * 100.0),
        ]);
    }
    print_table(
        &["streaming mode", "span (us)", "ns/burst", "row-hit %"],
        &rows,
    );
    println!();
    println!("# expectations: FR-FCFS beats FCFS on row locality; JAFAR streams at ~4-5 ns");
    println!("# per burst with exclusive ownership and degrades sharply as intervening");
    println!("# requests flush its active rows — the (3.3) case for ownership windows.");
}
