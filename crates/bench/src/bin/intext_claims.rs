//! The paper's in-text quantitative claims, verified against the models.
//!
//! - **T1 (§2.2)**: "JAFAR operates at around 2GHz ... Each DRAM access
//!   retrieves up to eight 64-bit words, and JAFAR can process one per
//!   clock cycle (0.5ns) for a total of 4ns. As a result, JAFAR currently
//!   spends a total of 9 out of 13 nanoseconds waiting for data to
//!   arrive."
//! - **T2 (§3.3)**: "at most, JAFAR can process 500/4 = 125 32-byte data
//!   blocks, or a total of 4KB of data, per idle period" and "JAFAR would
//!   on average process half of a DRAM-activated row before an
//!   interruption" (8 KB rows).
//! - **T3 (§3.1)**: "93% of the total execution time is spent inside the
//!   accelerated region."

use jafar_bench::arg;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_core::JafarDevice;
use jafar_cpu::ScanVariant;
use jafar_dram::{DramGeometry, DramTiming};
use jafar_sim::{System, SystemConfig};

fn main() {
    let rows: u64 = arg("--rows", 4_000_000);

    println!("# In-text claims (paper value vs reproduction)");
    println!();

    // --- T1: per-access datapath arithmetic. -------------------------------
    let device = JafarDevice::paper_default();
    let timing = DramTiming::ddr3_paper();
    let ps_per_word = device.ps_per_word();
    let process_8 = Tick::from_ps(8 * ps_per_word);
    let cas = timing.cl;
    let waiting = cas.saturating_sub(process_8);
    println!("## T1 (2.2): burst-processing headroom");
    println!(
        "  device clock period     : {} (paper: 0.5ns)",
        device.config().clock.period()
    );
    println!("  derived rate            : {ps_per_word} ps/word (paper: one word per cycle)");
    println!("  8-word burst processing : {process_8} (paper: 4ns)");
    println!("  CAS latency             : {cas} (paper: ~13ns)");
    println!("  waiting per access      : {waiting} of {cas} (paper: 9 of 13 ns)");
    assert_eq!(ps_per_word, 500);
    assert_eq!(process_8, Tick::from_ns(4));
    assert_eq!(waiting, Tick::from_ns(9));
    println!();

    // --- T2: idle-period work budget. ---------------------------------------
    println!("## T2 (3.3): work per 500-cycle mean idle period");
    let mean_idle_cycles = 500u64;
    let blocks = mean_idle_cycles / 4;
    let bytes = blocks * 32;
    let row_bytes = DramGeometry::gem5_2gb().row_bytes as u64;
    println!("  {mean_idle_cycles} cycles / 4 per request = {blocks} 32-byte blocks (paper: 125)");
    println!("  = {bytes} bytes per idle period (paper: 4KB)");
    println!(
        "  = {:.2} of an {row_bytes}-byte DRAM row (paper: half a row)",
        bytes as f64 / row_bytes as f64
    );
    assert_eq!(blocks, 125);
    assert_eq!(bytes, 4000);
    println!();

    // --- T3: accelerated-region fraction. -----------------------------------
    println!("## T3 (3.1): fraction of CPU-only time inside the accelerated region");
    println!("  workload: {rows} rows, 0% selectivity, gem5-like host");
    let mut rng = SplitMix64::new(0xC1A1);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999_999))
        .collect();
    let mut sys = System::new(SystemConfig::gem5_like());
    let col = sys.write_column(&values);
    let cpu = sys
        .run_select_cpu(col, rows, 0, -1, ScanVariant::Branching, Tick::ZERO)
        .expect("column placed in range");
    let frac = cpu.kernel.as_ps() as f64 / cpu.end.as_ps() as f64;
    println!(
        "  kernel {} / total {} = {:.1}% (paper: 93%)",
        cpu.kernel,
        cpu.end,
        frac * 100.0
    );
    assert!(
        (0.88..0.98).contains(&frac),
        "kernel fraction {frac} out of the calibrated band"
    );
}
