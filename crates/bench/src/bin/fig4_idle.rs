//! Figure 4 — "Memory controller idle time estimates for several TPC-H
//! queries."
//!
//! §3.3's methodology, reproduced end to end: run filter-heavy TPC-H
//! queries (Q1, Q3, Q6, Q18, Q22) on the column-store, profile the memory
//! controller, and compute the paper's counter-based estimate
//!
//! ```text
//! MC_empty        = total_cycles − RC_busy − WC_busy
//! mean_idle_period = MC_empty / (#reads + #writes)
//! ```
//!
//! Because the simulated controller records exact busy intervals, the
//! ground-truth idle-period distribution is reported alongside, validating
//! the paper's "this is a pessimistic estimate" claim. Expected shape
//! (paper): idle periods between ≈200 and ≈800 memory-bus cycles, average
//! ≈500.
//!
//! Usage: `fig4_idle [--sf X] [--trace PREFIX] [--timeline]`. `--sf` is
//! the scale factor (default 0.02 ≈ 130 k lineitems, an order of magnitude
//! over the modelled cache capacity — the paper's own sampling argument,
//! §3.1). `--trace PREFIX` writes one Chrome `trace_event` JSON file per
//! query (`PREFIX-q1.json`, …; load at `chrome://tracing`); `--timeline`
//! prints the tail of each query's event timeline and the unified metrics
//! snapshot.

use jafar_bench::{arg, arg_opt, f1, flag, print_table, slug};
use jafar_columnstore::{ExecContext, Planner};
use jafar_common::time::Tick;
use jafar_sim::{PlacedDb, QueryReplayer, ReplayCosts, System, SystemConfig};
use jafar_tpch::queries::QueryId;
use jafar_tpch::{queries, TpchConfig, TpchDb};

fn main() {
    let sf: f64 = arg("--sf", 0.02);
    // The host load factor stands in for the profiled machine's traffic
    // dilution (8 memory channels, 4 sockets) and MonetDB's interpreted
    // per-tuple overhead relative to the tight kernels modelled here —
    // the single tuned constant of this experiment (see EXPERIMENTS.md).
    let load_factor: f64 = arg("--load-factor", 45.0);
    let trace_prefix = arg_opt("--trace");
    let timeline = flag("--timeline");
    println!("# Figure 4: memory-controller idle periods for TPC-H queries");
    let cfg = SystemConfig::xeon_like();
    println!(
        "# platform: {}; TPC-H-like sf = {sf}; host load factor = {load_factor}",
        cfg.name
    );
    let db = TpchDb::generate(TpchConfig { sf, seed: 0x7C });
    println!(
        "# dataset: {} customers, {} orders, {} lineitems ({} MiB)",
        db.customer.rows(),
        db.orders.rows(),
        db.lineitem.rows(),
        db.bytes() / (1 << 20)
    );
    println!();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut estimates = Vec::new();
    for q in QueryId::ALL {
        let mut cx = ExecContext::new(Planner::default());
        match q {
            QueryId::Q1 => {
                queries::q1(&db, &mut cx);
            }
            QueryId::Q3 => {
                queries::q3(&db, &mut cx, 10);
            }
            QueryId::Q6 => {
                queries::q6(&db, &mut cx);
            }
            QueryId::Q18 => {
                queries::q18(&db, &mut cx, 300, 100);
            }
            QueryId::Q22 => {
                queries::q22(&db, &mut cx);
            }
        }
        // Fresh system per query (cold caches, clean counters), as when
        // profiling isolated query executions.
        let mut sys = System::new(SystemConfig::xeon_like());
        if trace_prefix.is_some() || timeline {
            sys.enable_tracing(1 << 16);
        }
        let placed = PlacedDb::place(&mut sys, &db);
        sys.begin_measurement();
        let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default().scaled(load_factor))
            .with_scan_factor(load_factor);
        let end = replayer.replay(cx.trace(), &placed, Tick::ZERO);
        let report = sys.idle_report(end);
        let est = report.mean_idle_period_estimate();
        estimates.push(est);
        rows.push(vec![
            q.label().to_owned(),
            f1(est),
            f1(report.mean_idle_period_exact()),
            format!("{}", report.reads),
            format!("{}", report.writes),
            format!("{}", report.total_cycles()),
            format!(
                "{:.1}%",
                100.0 * report.exact_idle_cycles as f64 / report.total_cycles().max(1) as f64
            ),
        ]);
        if let Some(prefix) = &trace_prefix {
            let path = format!("{prefix}-{}.json", slug(q.label()));
            let json = sys.chrome_trace().expect("tracing enabled");
            std::fs::write(&path, &json).expect("writing trace file");
            println!("# wrote {path} ({} bytes)", json.len());
        }
        if timeline {
            let text = sys.trace_timeline().expect("tracing enabled");
            let lines: Vec<&str> = text.lines().collect();
            let tail = 24usize.min(lines.len());
            println!(
                "## {} timeline (last {tail} of {} events)",
                q.label(),
                lines.len()
            );
            for line in &lines[lines.len() - tail..] {
                println!("{line}");
            }
            println!("## {} metrics", q.label());
            print!("{}", sys.metrics());
            println!();
        }
    }
    let avg: f64 = estimates.iter().sum::<f64>() / estimates.len() as f64;
    rows.push(vec![
        "AVG".to_owned(),
        f1(avg),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    print_table(
        &[
            "query",
            "mean idle est (cyc)",
            "mean idle exact (cyc)",
            "reads",
            "writes",
            "total cyc",
            "idle frac",
        ],
        &rows,
    );
    println!();
    println!("# paper: idle periods range 200-800 bus cycles across queries, average ~500;");
    println!("# the counter-based estimate is a pessimistic lower bound of the exact value.");
    println!(
        "# JAFAR work per average idle period: {} bytes ({} 32-byte blocks at 4 cycles each)",
        (avg as u64 / 4) * 32,
        avg as u64 / 4
    );
}
