//! Ablation A5 — multi-channel traffic dilution.
//!
//! The Figure-4 host is a 4-socket Xeon with multiple memory channels per
//! socket; the paper samples idle periods per integrated memory
//! controller. Interleaving a fixed request stream across more channels
//! means each controller sees fewer requests per unit time, so its mean
//! idle period grows — the effect the Figure-4 harness's *host load
//! factor* stands in for (the single modelled channel must be slowed down
//! to look like one of many). This study measures the effect directly
//! with the multi-channel controller composition.
//!
//! Usage: `ablation_channels [--reqs N]`

use jafar_bench::{arg, f1, print_table};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};
use jafar_memctl::controller::{ControllerConfig, MemoryController};
use jafar_memctl::{MemRequest, MultiChannel};

fn main() {
    let reqs: u64 = arg("--reqs", 60_000);
    println!("# Ablation A5: per-controller idle periods vs channel count");
    println!("# fixed request stream (one 64B read every 50 ns, 70% streaming / 30% random)");
    println!();

    let mut rows = Vec::new();
    for channels in [1usize, 2, 4, 8] {
        let mk = || {
            MemoryController::new(
                DramModule::new(
                    DramGeometry::gem5_2gb(),
                    DramTiming::ddr3_paper().without_refresh(),
                    AddressMapping::RowBankRankBlock,
                ),
                ControllerConfig::default(),
            )
        };
        let mut multi = MultiChannel::new((0..channels).map(|_| mk()).collect())
            .expect("channel counts in this sweep are powers of two");
        let mut rng = SplitMix64::new(0xA5);
        let mut end = Tick::ZERO;
        let mut stream_line = 0u64;
        for i in 0..reqs {
            let arrival = Tick::from_ns(i * 50);
            let addr = if rng.next_bool(0.7) {
                stream_line += 1;
                PhysAddr(stream_line * 64)
            } else {
                PhysAddr((rng.next_below(1 << 24)) & !63)
            };
            if multi.enqueue(MemRequest::read(addr, arrival)).is_err() {
                for c in multi.drain() {
                    end = end.max(c.done);
                }
                let _ = multi.enqueue(MemRequest::read(addr, arrival));
            }
            if i % 512 == 511 {
                for c in multi.drain() {
                    end = end.max(c.done);
                }
            }
        }
        for c in multi.drain() {
            end = end.max(c.done);
        }
        let reports = multi.finalize(end);
        let mean_est: f64 = reports
            .iter()
            .map(|r| r.mean_idle_period_estimate())
            .sum::<f64>()
            / reports.len() as f64;
        let per_ctrl_reqs: f64 = reports
            .iter()
            .map(|r| (r.reads + r.writes) as f64)
            .sum::<f64>()
            / reports.len() as f64;
        rows.push(vec![format!("{channels}"), f1(per_ctrl_reqs), f1(mean_est)]);
    }
    print_table(
        &["channels", "requests/controller", "mean idle est (cyc)"],
        &rows,
    );
    println!();
    println!("# expectation: per-controller request rate falls ~1/N with channel count, so");
    println!("# the per-controller mean idle period grows ~N-fold — the dilution the");
    println!("# Figure-4 host load factor models on the single simulated channel.");
}
