//! Ablation A8 — fault injection vs the resilient driver.
//!
//! The invariant under test: for *any* seeded fault plan, the Fig. 3
//! select's result bitset equals the software reference, and the run
//! report says what the recovery cost. This bin sweeps the canned plans
//! (none / light / chaos, plus chaos with short leases so renewal is
//! exercised) and tabulates correctness, wall-clock and the recovery
//! counters side by side with what the injector actually did.
//!
//! Usage: `ablation_faults [--rows N] [--seed S] [--verbose]
//! [--trace PREFIX] [--timeline]`. `--trace PREFIX` writes one Chrome
//! `trace_event` JSON file per fault plan (`PREFIX-light.json`, …);
//! `--timeline` prints the tail of each case's event timeline and the
//! unified metrics snapshot alongside its recovery report.

use jafar_bench::{arg, arg_opt, f2, flag, print_table, slug};
use jafar_common::bitset::BitSet;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_core::ResilienceConfig;
use jafar_dram::FaultPlan;
use jafar_sim::{ResilientSelectStats, System, SystemConfig};

fn run_plan(
    values: &[i64],
    lo: i64,
    hi: i64,
    plan: Option<FaultPlan>,
    resilience: ResilienceConfig,
    page_bytes: Option<u64>,
    trace: bool,
) -> (ResilientSelectStats, bool, System) {
    let rows = values.len() as u64;
    let mut cfg = SystemConfig::gem5_like();
    if let Some(pb) = page_bytes {
        cfg.page_bytes = pb;
    }
    let mut sys = System::new(cfg);
    if trace {
        sys.enable_tracing(1 << 16);
    }
    let col = sys.write_column(values);
    if let Some(plan) = plan {
        sys.inject_faults(plan);
    }
    let stats = sys.run_select_jafar_resilient(col, rows, lo, hi, Tick::ZERO, resilience);

    // Software reference: the same predicate, evaluated functionally.
    let reference: Vec<u32> = values
        .iter()
        .enumerate()
        .filter(|(_, v)| lo <= **v && **v <= hi)
        .map(|(i, _)| i as u32)
        .collect();
    let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
    sys.mc().module().data().read(stats.out_addr, &mut bytes);
    let bits = BitSet::from_bytes(&bytes, rows as usize);
    let ok = stats.matched == reference.len() as u64 && bits.to_positions() == reference;
    (stats, ok, sys)
}

fn main() {
    let rows: u64 = arg("--rows", 262_144);
    let seed: u64 = arg("--seed", 0xFA);
    let verbose = flag("--verbose");
    let trace_prefix = arg_opt("--trace");
    let timeline = flag("--timeline");

    println!("# Ablation A8: seeded fault plans vs the resilient driver");
    println!("# workload: Fig. 3 select, {rows} uniform rows, 50% selectivity");
    println!();

    let mut rng = SplitMix64::new(seed);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    let (lo, hi) = (0i64, 499i64);

    let short_leases = ResilienceConfig {
        lease_window: Tick::from_us(40),
        renew_margin: Tick::from_us(10),
        ..ResilienceConfig::default()
    };
    type Case = (
        &'static str,
        Option<FaultPlan>,
        ResilienceConfig,
        Option<u64>,
    );
    let cases: Vec<Case> = vec![
        ("no plan installed", None, ResilienceConfig::default(), None),
        (
            "none (empty plan)",
            Some(FaultPlan::none(seed)),
            ResilienceConfig::default(),
            None,
        ),
        (
            "light",
            Some(FaultPlan::light(seed)),
            ResilienceConfig::default(),
            None,
        ),
        (
            "chaos",
            Some(FaultPlan::chaos(seed)),
            ResilienceConfig::default(),
            None,
        ),
        // 4 KB pages + a 40 µs window: renewals happen between pages.
        (
            "light, 4K pages + short leases",
            Some(FaultPlan::light(seed)),
            short_leases,
            Some(4096),
        ),
    ];

    let mut table = Vec::new();
    let mut reports = Vec::new();
    for (label, plan, resilience, page_bytes) in cases {
        let tracing = trace_prefix.is_some() || timeline;
        let (stats, ok, sys) = run_plan(&values, lo, hi, plan, resilience, page_bytes, tracing);
        if let Some(prefix) = &trace_prefix {
            let path = format!("{prefix}-{}.json", slug(label));
            let json = sys.chrome_trace().expect("tracing enabled");
            std::fs::write(&path, &json).expect("writing trace file");
            println!("# wrote {path} ({} bytes)", json.len());
        }
        if timeline {
            let text = sys.trace_timeline().expect("tracing enabled");
            let lines: Vec<&str> = text.lines().collect();
            let tail = 24usize.min(lines.len());
            println!(
                "## {label} timeline (last {tail} of {} events)",
                lines.len()
            );
            for line in &lines[lines.len() - tail..] {
                println!("{line}");
            }
            println!("## {label} metrics");
            print!("{}", sys.metrics());
            println!();
        }
        let r = &stats.recovery;
        table.push(vec![
            label.to_owned(),
            if ok {
                "yes".to_owned()
            } else {
                "NO".to_owned()
            },
            f2(stats.end.as_ms_f64()),
            format!("{}/{}", r.pages_jafar.get(), r.pages_cpu.get()),
            format!("{}", r.retries.get()),
            format!("{}", r.watchdog_fires.get()),
            format!("{}", r.lease_renewals.get()),
            format!("{}", stats.faults.map_or(0, |f| f.total())),
        ]);
        reports.push((label, stats.report()));
        assert!(ok, "bitset diverged from the software reference ({label})");
    }

    print_table(
        &[
            "fault plan",
            "bitset == ref",
            "end (ms)",
            "pages dev/cpu",
            "retries",
            "watchdog",
            "renewals",
            "faults fired",
        ],
        &table,
    );
    println!();
    println!("# invariant: the bitset equals the software reference under every plan;");
    println!("# the counters say what surviving the plan cost the driver.");

    if verbose {
        println!();
        for (label, report) in reports {
            println!("## {label}");
            print!("{report}");
        }
    }
}
