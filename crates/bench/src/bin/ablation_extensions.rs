//! Ablation A4 — the §4 extension accelerators.
//!
//! For each roadmap extension, compare the NDP path against a CPU-only
//! equivalent on time and — the NDP headline metric — bytes moved up the
//! memory hierarchy:
//!
//! - **aggregation**: `SUM(col)` (plus a filtered sum — filter+aggregate
//!   fused in one in-memory pass);
//! - **projection**: select on column A, project column B at the
//!   qualifying positions;
//! - **row-store filters**: a two-predicate conjunctive filter over
//!   32-byte rows versus the same filter on a columnar layout.
//!
//! Usage: `ablation_extensions [--rows N]`

use jafar_bench::{arg, f2, print_table};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_core::aggregate::{AggOp, AggregateJob};
use jafar_core::project::ProjectJob;
use jafar_core::rowstore::{ColPredicate, RowFilterJob};
use jafar_core::{grant_ownership, JafarDevice, Predicate, SelectJob};
use jafar_cpu::{MemoryBackend, ScanVariant};
use jafar_dram::PhysAddr;
use jafar_sim::{System, SystemConfig};

fn main() {
    let rows: u64 = arg("--rows", 1_000_000);
    println!("# Ablation A4: NDP extensions (aggregation, projection, row-store filters)");
    println!("# workload: {rows} rows per column");
    println!();

    let mut rng = SplitMix64::new(0xA4);
    let col_a: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    let col_b: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 1 << 30))
        .collect();

    let mut out: Vec<Vec<String>> = Vec::new();

    // ---- Aggregation: CPU sum (stream the column up) vs NDP sum. ----------
    {
        // CPU path: scan with an always-true predicate models the stream;
        // the fold cost is inside the kernel constants. Bytes up = column.
        let mut sys = System::new(SystemConfig::gem5_like());
        let a = sys.write_column(&col_a);
        sys.begin_measurement();
        let cpu = sys
            .run_select_cpu(
                a,
                rows,
                i64::MIN,
                i64::MAX,
                ScanVariant::Predicated,
                Tick::ZERO,
            )
            .expect("column placed in range");
        let cpu_bytes = sys.mc().counters().reads.get() * 64;
        let cpu_ms = cpu.end.as_ms_f64();

        let mut sys = System::new(SystemConfig::gem5_like());
        let a = sys.write_column(&col_a);
        sys.mc_mut().drain();
        let module = sys.mc_mut().module_mut();
        let lease = grant_ownership(module, 0, Tick::ZERO).expect("fresh");
        let t0 = lease.acquired_at;

        let mut device = JafarDevice::paper_default();
        let run = device
            .run_aggregate(
                module,
                AggregateJob {
                    col_addr: a,
                    rows,
                    op: AggOp::Sum,
                    filter: None,
                },
                t0,
            )
            .expect("owned");
        let want: i64 = col_a.iter().sum();
        assert_eq!(run.value, Some(want), "NDP sum must be exact");
        // Only the 8-byte scalar crosses the hierarchy.
        out.push(vec![
            "SUM(col)".to_owned(),
            f2(cpu_ms),
            f2((run.end - t0).as_ms_f64()),
            format!("{}", cpu_bytes / 1024),
            "1".to_owned(),
        ]);
    }

    // ---- Projection: select A < 100, project B. ----------------------------
    {
        let mut sys = System::new(SystemConfig::gem5_like());
        let a = sys.write_column(&col_a);
        let b = sys.write_column(&col_b);
        sys.begin_measurement();
        let cpu_sel = sys
            .run_select_cpu(a, rows, 0, 99, ScanVariant::Branching, Tick::ZERO)
            .expect("column placed in range");
        // CPU project: gather B at positions — stream B's touched lines up.
        let matches = cpu_sel.matches;
        let mut backend = sys.backend_dependent();
        let mut t = cpu_sel.end;
        for (i, pos) in cpu_sel.positions.iter().enumerate() {
            let (ready, _) = backend
                .load_line(b.0 + *pos as u64 * 8, t)
                .expect("column placed in range");
            t = t.max(ready) + Tick::from_ps(4_000);
            let _ = i;
        }
        sys.mc_mut().drain();
        let cpu_bytes = sys.mc().counters().reads.get() * 64;
        let cpu_ms = t.as_ms_f64();

        let mut sys = System::new(SystemConfig::gem5_like());
        let a = sys.write_column(&col_a);
        let b = sys.write_column(&col_b);
        let bitset = sys.alloc().alloc_blocks(rows.div_ceil(8).max(64));
        let proj_out = sys.alloc().alloc_blocks(rows.max(8) * 8);
        sys.mc_mut().drain();
        let module = sys.mc_mut().module_mut();
        let lease = grant_ownership(module, 0, Tick::ZERO).expect("fresh");
        let t0 = lease.acquired_at;

        let mut device = JafarDevice::paper_default();
        let sel = device
            .run_select(
                module,
                SelectJob {
                    col_addr: a,
                    rows,
                    predicate: Predicate::Lt(100),
                    out_addr: bitset,
                },
                t0,
            )
            .expect("owned");
        let proj = device
            .run_project(
                module,
                ProjectJob {
                    col_addr: b,
                    rows,
                    bitset_addr: bitset,
                    out_addr: PhysAddr(proj_out.0),
                },
                sel.end,
            )
            .expect("owned");
        assert_eq!(proj.emitted, matches);
        // Only the packed qualifying values would cross (if requested);
        // nothing crossed during the operation.
        out.push(vec![
            "select+project".to_owned(),
            f2(cpu_ms),
            f2((proj.end - t0).as_ms_f64()),
            format!("{}", cpu_bytes / 1024),
            format!("{}", proj.emitted * 8 / 1024),
        ]);
    }

    // ---- Row-store conjunctive filter (4 x i64 per row). -------------------
    {
        let width = 4u64;
        let mut sys = System::new(SystemConfig::gem5_like());
        // Row-major layout: CPU must stream all 32 bytes per row.
        let mut rowmajor = Vec::with_capacity((rows * width) as usize);
        for i in 0..rows as usize {
            rowmajor.push(col_a[i]);
            rowmajor.push(col_b[i]);
            rowmajor.push(0);
            rowmajor.push(0);
        }
        let base = sys.write_column(&rowmajor);
        sys.begin_measurement();
        // The CPU streams the whole row-major region (modelled as a scan
        // over rows*width values).
        let cpu = sys
            .run_select_cpu(
                base,
                rows * width,
                0,
                99,
                ScanVariant::Predicated,
                Tick::ZERO,
            )
            .expect("column placed in range");
        let cpu_bytes = sys.mc().counters().reads.get() * 64;
        let cpu_ms = cpu.end.as_ms_f64();

        let mut sys = System::new(SystemConfig::gem5_like());
        let base = sys.write_column(&rowmajor);
        let bitset = sys.alloc().alloc_blocks(rows.div_ceil(8).max(64));
        sys.mc_mut().drain();
        let module = sys.mc_mut().module_mut();
        let lease = grant_ownership(module, 0, Tick::ZERO).expect("fresh");
        let t0 = lease.acquired_at;

        let mut device = JafarDevice::paper_default();
        let run = device
            .run_row_filter(
                module,
                &RowFilterJob {
                    base,
                    row_bytes: (width * 8) as u32,
                    rows,
                    predicates: vec![
                        ColPredicate {
                            offset: 0,
                            predicate: Predicate::Lt(100),
                        },
                        ColPredicate {
                            offset: 8,
                            predicate: Predicate::Ge(0),
                        },
                    ],
                    out_addr: bitset,
                },
                t0,
            )
            .expect("owned");
        out.push(vec![
            "row-store filter".to_owned(),
            f2(cpu_ms),
            f2((run.end - t0).as_ms_f64()),
            format!("{}", cpu_bytes / 1024),
            format!("{}", rows.div_ceil(8) / 1024),
        ]);
    }

    // ---- Sorting (divide-and-conquer over a 64-element network). -----------
    {
        use jafar_core::sort::SortJob;
        // CPU sort: stream the column up, sort, stream back — model as a
        // read pass + n·log n compute at ~4 cycles/compare + write pass.
        let mut sys = System::new(SystemConfig::gem5_like());
        let a = sys.write_column(&col_b);
        sys.begin_measurement();
        let read = sys
            .run_select_cpu(
                a,
                rows,
                i64::MIN,
                i64::MAX,
                ScanVariant::Predicated,
                Tick::ZERO,
            )
            .expect("column placed in range");
        let log2 = 64 - rows.leading_zeros() as u64;
        let compute = Tick::from_ps(rows * log2 * 4 * 1000);
        let cpu_ms = (read.end + compute).as_ms_f64();
        let cpu_bytes = sys.mc().counters().reads.get() * 64 * 2; // up and back

        let mut sys = System::new(SystemConfig::gem5_like());
        let a = sys.write_column(&col_b);
        let out_region = sys.alloc().alloc_blocks(rows * 8);
        sys.mc_mut().drain();
        let module = sys.mc_mut().module_mut();
        let lease = grant_ownership(module, 0, Tick::ZERO).expect("fresh");
        let t0 = lease.acquired_at;

        let mut device = JafarDevice::paper_default();
        let run = device
            .run_sort(
                module,
                SortJob {
                    col_addr: a,
                    rows,
                    out_addr: out_region,
                },
                t0,
            )
            .expect("owned");
        // Verify sortedness from DRAM.
        let first = module.data().read_i64(run.result_addr);
        let mid = module
            .data()
            .read_i64(PhysAddr(run.result_addr.0 + (rows / 2) * 8));
        let last = module
            .data()
            .read_i64(PhysAddr(run.result_addr.0 + (rows - 1) * 8));
        assert!(first <= mid && mid <= last);
        out.push(vec![
            format!("sort ({} passes)", run.passes),
            f2(cpu_ms),
            f2((run.end - t0).as_ms_f64()),
            format!("{}", cpu_bytes / 1024),
            "0".to_owned(),
        ]);
    }

    print_table(
        &[
            "operator",
            "CPU (ms)",
            "NDP (ms)",
            "CPU bytes up (KiB)",
            "NDP bytes up (KiB)",
        ],
        &out,
    );
    println!();
    println!("# expectations (4): aggregation/projection/row filters all stream in memory at");
    println!("# the device rate; the hierarchy sees scalars, packed results, or bitsets");
    println!("# instead of whole columns/rows.");
}
