//! Ablation A7 — ownership windows: the §3.3 scheduling proposal, built.
//!
//! "The query manager can grant 'ownership' of a DRAM rank to JAFAR for a
//! specified number of cycles, knowing that JAFAR will finish its allotted
//! work in that amount of time. ... This opens up many interesting
//! questions about how to schedule DRAM ownership transfers in order to
//! minimize the impact on the rest of the system."
//!
//! The experiment: a latency-sensitive host (random reads on rank 1, one
//! every 200 ns) shares the channel with a JAFAR select over a rank-0
//! column. A time-sliced scheduler alternates device windows of length W
//! with host windows of equal length. Small W keeps host latency low but
//! pays per-window handoff/startup cost in device progress; large W
//! starves the host — exactly the §3.3 trade-off.
//!
//! Usage: `ablation_ownership_windows [--rows N] [--host-reqs M]`

use jafar_bench::{arg, f1, f2, print_table};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_core::{JafarDevice, Predicate, SelectJob};
use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};
use jafar_memctl::controller::{ControllerConfig, MemoryController};
use jafar_memctl::MemRequest;

struct Outcome {
    device_done: Tick,
    host_done: Tick,
    host_p50_ns: f64,
    host_p95_ns: f64,
}

/// Runs the co-schedule with device windows of `window` (Tick::MAX =
/// device-first, no slicing; Tick::ZERO = host-only baseline).
fn co_run(rows: u64, host_reqs: u64, window: Tick) -> Outcome {
    let module = DramModule::new(
        DramGeometry::gem5_2gb(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    );
    let mut mc = MemoryController::new(module, ControllerConfig::default());
    // Column on rank 0; host data on rank 1 (second half of the space).
    let rank1_base = DramGeometry::gem5_2gb().rank_bytes();
    for i in 0..rows {
        mc.module_mut()
            .data_mut()
            .write_i64(PhysAddr(i * 8), (i % 1000) as i64);
    }
    let t0 = if window > Tick::ZERO {
        mc.set_rank_ownership(0, true, Tick::ZERO)
            .expect("quiesced")
    } else {
        Tick::ZERO
    };
    let mut device = JafarDevice::paper_default();

    // Host arrival stream: uniform 200 ns spacing, random rank-1 lines.
    let mut rng = SplitMix64::new(0xA7);
    let arrivals: Vec<(Tick, PhysAddr)> = (0..host_reqs)
        .map(|i| {
            (
                t0 + Tick::from_ns(200 * (i + 1)),
                PhysAddr(rank1_base + (rng.next_below(1 << 24) & !63)),
            )
        })
        .collect();

    let page_rows = 4096u64; // ~512 bursts ≈ 2.2 µs of device streaming
    let out_addr = PhysAddr(512 << 20); // rank 0
    let mut row = 0u64;
    let mut t = t0;
    let mut device_done = t0;
    let mut next_arrival = 0usize;
    let mut latencies_ns: Vec<f64> = Vec::with_capacity(arrivals.len());
    let mut host_done = t0;
    let mut device_turn = window > Tick::ZERO;

    while row < rows || next_arrival < arrivals.len() {
        if device_turn && row < rows {
            // Device window: run pages until the window budget is used.
            let window_end = t.checked_add(window).unwrap_or(Tick::MAX);
            while row < rows && t < window_end {
                let n = page_rows.min(rows - row);
                let run = device
                    .run_select(
                        mc.module_mut(),
                        SelectJob {
                            col_addr: PhysAddr(row * 8),
                            rows: n,
                            predicate: Predicate::Lt(500),
                            out_addr: PhysAddr(out_addr.0 + row / 8),
                        },
                        t,
                    )
                    .expect("owned");
                t = run.end;
                row += n;
            }
            device_done = t;
        } else {
            // Host window: serve everything that has arrived by now (and,
            // in the host-only/leftover phase, jump to the next arrival).
            let window_end = if window > Tick::ZERO && row < rows {
                t + window
            } else {
                Tick::MAX
            };
            if next_arrival < arrivals.len() && arrivals[next_arrival].0 > t {
                t = arrivals[next_arrival].0.min(window_end);
            }
            while next_arrival < arrivals.len()
                && arrivals[next_arrival].0 <= window_end.min(t.max(arrivals[next_arrival].0))
            {
                let (arr, addr) = arrivals[next_arrival];
                if arr > window_end {
                    break;
                }
                mc.enqueue(MemRequest::read(addr, arr))
                    .expect("capacity 1-at-a-time");
                next_arrival += 1;
                mc.advance_cursor(t.max(arr));
                for c in mc.drain() {
                    latencies_ns.push((c.done - arr).as_ns_f64());
                    host_done = host_done.max(c.done);
                    t = t.max(c.done);
                }
                if next_arrival < arrivals.len() && arrivals[next_arrival].0 > window_end {
                    break;
                }
                if next_arrival < arrivals.len() {
                    t = t.max(arrivals[next_arrival].0.min(window_end));
                }
            }
            t = t.max(
                window_end.min(
                    arrivals
                        .get(next_arrival)
                        .map(|(a, _)| *a)
                        .unwrap_or(window_end),
                ),
            );
            if window_end != Tick::MAX {
                t = window_end;
            }
        }
        if window > Tick::ZERO && row < rows {
            device_turn = !device_turn;
        } else {
            device_turn = false;
        }
    }

    latencies_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pct = |p: f64| {
        if latencies_ns.is_empty() {
            0.0
        } else {
            latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize]
        }
    };
    Outcome {
        device_done,
        host_done,
        host_p50_ns: pct(0.5),
        host_p95_ns: pct(0.95),
    }
}

fn main() {
    let rows: u64 = arg("--rows", 1_000_000);
    let host_reqs: u64 = arg("--host-reqs", 10_000);
    println!("# Ablation A7: rank-ownership windows (the 3.3 scheduler proposal)");
    println!(
        "# device: select over {rows} rank-0 rows; host: {host_reqs} random rank-1 reads, 1/200ns"
    );
    println!();

    let mut out = Vec::new();
    for (label, window) in [
        ("host only (no device)", Tick::ZERO),
        ("W = 2 us", Tick::from_us(2)),
        ("W = 8 us", Tick::from_us(8)),
        ("W = 32 us", Tick::from_us(32)),
        ("W = 128 us", Tick::from_us(128)),
        ("device first (W = inf)", Tick::MAX),
    ] {
        let rows_here = if window == Tick::ZERO { 0 } else { rows };
        let o = co_run(rows_here, host_reqs, window);
        out.push(vec![
            label.to_owned(),
            if rows_here == 0 {
                "-".to_owned()
            } else {
                f2(o.device_done.as_ms_f64())
            },
            f2(o.host_done.as_ms_f64()),
            f1(o.host_p50_ns),
            f1(o.host_p95_ns),
        ]);
    }
    print_table(
        &[
            "schedule",
            "device done (ms)",
            "host done (ms)",
            "host p50 (ns)",
            "host p95 (ns)",
        ],
        &out,
    );
    println!();
    println!("# expectation: small windows keep host tail latency near the no-device");
    println!("# baseline while the device makes steady progress; giant windows finish the");
    println!("# device soonest but blow up the host's tail — the trade-off 3.3 leaves to");
    println!("# future memory-access schedulers.");
}
