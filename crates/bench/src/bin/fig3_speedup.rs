//! Figure 3 — "Simulated selection speedup obtained by JAFAR for a dataset
//! of uniformly distributed random integers."
//!
//! §3.1's workload: 4 million rows of uniformly distributed random
//! integers in [0, 1 000 000), unsorted and unindexed, on the Table-1
//! gem5-like host; selectivity swept 0 % → 100 % by moving the range
//! predicate's upper bound; the CPU spin-waits while JAFAR runs (no
//! contention). Expected shape (paper): speedup rising from ≈5× at 0 % to
//! ≈9× at 100 %, with JAFAR's own runtime selectivity-independent.
//!
//! Usage: `fig3_speedup [--rows N] [--points P] [--csv] [--dram ddr3_1600]`

use jafar_bench::{arg, f2, flag, print_table};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_cpu::ScanVariant;
use jafar_dram::DramTiming;
use jafar_sim::{System, SystemConfig};

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::gem5_like();
    // DRAM-timing sensitivity: `--dram ddr3_1600` swaps the paper's ~1 GHz
    // bus for the common DDR3-1600 bin (0.8 GHz, CL 13.75 ns).
    if arg::<String>("--dram", "paper".into()) == "ddr3_1600" {
        cfg.dram_timing = DramTiming::ddr3_1600();
    }
    cfg
}

fn main() {
    let rows: u64 = arg("--rows", 4_000_000);
    let points: u64 = arg("--points", 10);
    let csv = flag("--csv");
    let value_range = 1_000_000i64;

    println!("# Figure 3: JAFAR select speedup vs selectivity");
    println!("# workload: {rows} rows, uniform integers in [0, {value_range})");
    let cfg = config();
    println!(
        "# platform: {} (DRAM bus {} MHz)",
        cfg.name,
        cfg.dram_timing.bus_clock.freq_mhz()
    );
    println!();

    let mut rng = SplitMix64::new(0xF163);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, value_range - 1))
        .collect();

    let mut out_rows: Vec<Vec<String>> = Vec::new();
    if csv {
        println!("selectivity,cpu_ms,jafar_ms,speedup,cpu_mispredicts,jafar_device_ms");
    }
    for p in 0..=points {
        // Predicate [0, hi] with hi chosen for the target selectivity.
        let target = p as f64 / points as f64;
        let hi = (target * value_range as f64) as i64 - 1;

        let mut sys_cpu = System::new(config());
        let col = sys_cpu.write_column(&values);
        let cpu = sys_cpu
            .run_select_cpu(col, rows, 0, hi, ScanVariant::Branching, Tick::ZERO)
            .expect("column placed in range");

        let mut sys_jf = System::new(config());
        let col = sys_jf.write_column(&values);
        let jf = sys_jf.run_select_jafar(col, rows, 0, hi, Tick::ZERO);

        assert_eq!(cpu.matches, jf.matched, "both paths must agree");
        let selectivity = cpu.matches as f64 / rows as f64;
        let cpu_ms = cpu.end.as_ms_f64();
        let jf_ms = jf.end.as_ms_f64();
        let speedup = cpu_ms / jf_ms;
        if csv {
            println!(
                "{:.3},{:.4},{:.4},{:.3},{},{:.4}",
                selectivity,
                cpu_ms,
                jf_ms,
                speedup,
                cpu.mispredicts,
                jf.device.as_ms_f64()
            );
        }
        out_rows.push(vec![
            format!("{:.0}%", selectivity * 100.0),
            f2(cpu_ms),
            f2(cpu.stall.as_ms_f64()),
            f2(jf_ms),
            f2(speedup),
            format!("{}", cpu.mispredicts),
            f2(jf.device.as_ms_f64()),
        ]);
    }

    if !csv {
        print_table(
            &[
                "selectivity",
                "CPU (ms)",
                "stall (ms)",
                "JAFAR (ms)",
                "speedup",
                "mispredicts",
                "device (ms)",
            ],
            &out_rows,
        );
        println!();
        println!("# paper: speedup increases gradually from ~5x (0%) to ~9x (100%);");
        println!("# JAFAR execution time is selectivity-independent.");
    }
}
