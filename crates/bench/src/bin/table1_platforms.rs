//! Table 1 — "Specifications of our evaluation platforms."
//!
//! Prints the two platform configurations the reproduction models: the
//! gem5-like simulated host (used to isolate JAFAR's raw speedup,
//! Figure 3) and the Xeon-like profiling host (used for the
//! memory-contention study, Figure 4), side by side with the paper's
//! values.

use jafar_bench::print_table;
use jafar_sim::SystemConfig;

fn main() {
    println!("# Table 1: evaluation platform specifications");
    println!("# (left column: gem5 simulation host; right: Xeon profiling host)");
    println!();
    let rows: Vec<Vec<String>> = SystemConfig::table1()
        .into_iter()
        .map(|(spec, gem5, xeon)| vec![spec.to_owned(), gem5, xeon])
        .collect();
    print_table(&["spec", "gem5-like", "Xeon E7-4820 v2-like"], &rows);
    println!();
    println!("# paper values: gem5 = 1 OoO CPU, 1 GHz, 1 socket, 64kB L1 / 128kB L2, 2GB DRAM;");
    println!(
        "# Xeon = 8x 2-way SMT cores, 2 GHz, 4 sockets, 256kB L1 / 2MB L2 / 16MB L3, 1TB DDR3."
    );
    println!("# Substitutions: one core per host is modelled; shared caches are scaled to");
    println!("# one core's effective share; DRAM capacity is capped at 2GiB (sparse backing).");
}
