//! Rank-parallel scaling — one JAFAR per rank, the discussion section's
//! natural scaling axis.
//!
//! The column is striped across K ranks on DRAM-row-aligned boundaries;
//! each rank's device filters its shard concurrently under its own lease
//! and resilient driver, and the per-rank bitsets are merged into one
//! selection vector. This sweep measures completion time for K = 1..max
//! ranks over the same dataset, checking three things along the way:
//!
//! - every merged result is bit-identical to the CPU reference and to the
//!   single-device pushdown bitset;
//! - speedup over one device increases monotonically with K (each added
//!   rank shortens the longest shard);
//! - with a rank-scoped fault injected, the faulty shard falls back to
//!   the CPU scan without disturbing its siblings, and the merged result
//!   is still exact.
//!
//! Usage: `fig_scaling [--rows N] [--ranks K] [--csv] [--smoke]`
//!
//! `--smoke` shrinks the defaults (40 k rows, 3 ranks) so CI can execute
//! the whole sweep — assertions included — in seconds; explicit `--rows`
//! / `--ranks` still override it.

use jafar_bench::{arg, f2, flag, jnum, print_table, write_bench_json};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_core::ResilienceConfig;
use jafar_cpu::ScanVariant;
use jafar_dram::{DramGeometry, FaultPlan};
use jafar_sim::{System, SystemConfig};

/// gem5-like host over an 8-rank DIMM: 7 NDP ranks with a device each,
/// the last rank as CPU scratch. Query overhead is trimmed so the sweep
/// measures the accelerated region, not fixed planning cost.
fn config() -> SystemConfig {
    let mut cfg = SystemConfig::gem5_like();
    cfg.dram_geometry = DramGeometry {
        ranks: 8,
        banks_per_rank: 8,
        rows_per_bank: 1024,
        row_bytes: 8 * 1024,
    };
    cfg.query_overhead = Tick::from_us(5);
    cfg
}

fn reference(values: &[i64], lo: i64, hi: i64) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| lo <= v && v <= hi)
        .map(|(i, _)| i as u32)
        .collect()
}

fn main() {
    let smoke = flag("--smoke");
    let rows: u64 = arg("--rows", if smoke { 40_000 } else { 1_000_000 });
    let max_ranks: usize = arg("--ranks", if smoke { 3 } else { 7 });
    let csv = flag("--csv");
    let (lo, hi) = (0i64, 499i64); // ~50 % selectivity over [0, 999]

    assert!(
        (1..=7).contains(&max_ranks),
        "--ranks must be 1..=7 (8-rank DIMM, one rank reserved for the host)"
    );

    println!("# Rank-parallel JAFAR scaling, 1..{max_ranks} ranks");
    println!("# workload: {rows} rows, uniform integers in [0, 1000), predicate [{lo}, {hi}]");
    let cfg = config();
    println!(
        "# platform: {} / {}",
        cfg.name,
        cfg.dram_geometry.describe()
    );
    println!();

    let mut rng = SplitMix64::new(0x5CA1E);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    let expect = reference(&values, lo, hi);

    // CPU baseline (timing) on the same host.
    let mut sys_cpu = System::new(config());
    let col = sys_cpu.write_column(&values);
    let cpu = sys_cpu
        .run_select_cpu(col, rows, lo, hi, ScanVariant::Branching, Tick::ZERO)
        .expect("column placed in range");
    assert_eq!(cpu.positions, expect, "CPU reference");

    // Single-device pushdown: the bit-identity baseline for every K.
    let mut sys_one = System::new(config());
    let col = sys_one.write_column(&values);
    let one = sys_one.run_select_jafar(col, rows, lo, hi, Tick::ZERO);
    let mut one_bytes = vec![0u8; rows.div_ceil(8) as usize];
    sys_one
        .mc()
        .module()
        .data()
        .read(one.out_addr, &mut one_bytes);

    if csv {
        println!("ranks,time_ms,speedup_vs_1,speedup_vs_cpu,longest_shard_rows");
    }
    let mut out_rows: Vec<Vec<String>> = Vec::new();
    // (ranks, time ms, speedup vs 1, speedup vs cpu, longest shard rows)
    let mut points: Vec<(usize, f64, f64, f64, u64)> = Vec::new();
    let mut prev_end: Option<Tick> = None;
    let mut base_ms = 0.0f64;
    for k in 1..=max_ranks {
        let mut sys = System::new(config());
        let col = sys.write_column_partitioned(&values, k);
        let par =
            sys.run_select_jafar_parallel(&col, lo, hi, Tick::ZERO, ResilienceConfig::default());

        assert_eq!(par.selection.to_positions(), expect, "k={k}: merged == CPU");
        assert_eq!(
            par.selection.to_bytes(),
            one_bytes[..],
            "k={k}: merged == single-device bitset"
        );
        if let Some(prev) = prev_end {
            assert!(
                par.end < prev,
                "k={k}: {} must beat k-1's {} (monotonic scaling)",
                par.end,
                prev
            );
        }
        prev_end = Some(par.end);

        let ms = par.end.as_ms_f64();
        if k == 1 {
            base_ms = ms;
        }
        let longest = col.shards.iter().map(|s| s.rows).max().unwrap_or(0);
        if csv {
            println!(
                "{k},{:.4},{:.3},{:.3},{longest}",
                ms,
                base_ms / ms,
                cpu.end.as_ms_f64() / ms
            );
        }
        points.push((k, ms, base_ms / ms, cpu.end.as_ms_f64() / ms, longest));
        out_rows.push(vec![
            format!("{k}"),
            f2(ms),
            f2(base_ms / ms),
            f2(cpu.end.as_ms_f64() / ms),
            format!("{longest}"),
        ]);
    }

    if !csv {
        print_table(
            &[
                "ranks",
                "time (ms)",
                "speedup vs 1",
                "speedup vs CPU",
                "longest shard",
            ],
            &out_rows,
        );
        println!();
    }

    // Resilience spot-check: rank 0's reads all stall past the watchdog,
    // so its shard degrades to the CPU scan while the siblings stream at
    // device speed. The merged result must still be exact.
    let k = max_ranks;
    let mut sys = System::new(config());
    let col = sys.write_column_partitioned(&values, k);
    sys.inject_faults(FaultPlan {
        stall_burst_range: Some((0, u64::MAX)),
        rank_scope: Some(0),
        ..FaultPlan::none(1)
    });
    let par = sys.run_select_jafar_parallel(
        &col,
        lo,
        hi,
        Tick::ZERO,
        ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        },
    );
    assert_eq!(
        par.selection.to_positions(),
        expect,
        "faulted run stays bit-identical"
    );
    assert!(par.recovery[0].pages_cpu.get() >= 1, "rank 0 fell back");
    for (i, r) in par.recovery.iter().enumerate().skip(1) {
        assert_eq!(r.recovery_total(), 0, "sibling shard {i} undisturbed");
    }
    // The fault run's end time is a real watchdog stall, not an
    // accounting bug: every burst of rank 0 is stalled by `plan.stall`
    // (100 µs), so each full pass over the shard's page serializes to
    // bursts · stall. The watchdog abandons the host's *wait* at its
    // deadline, but the abandoned device session's reads still occupy
    // the rank's bank timeline, so the retry — and finally the CPU
    // fallback scan, which reads the same bursts through the same timed
    // (and still-stalled) module — queue behind it. End-to-end the sick
    // shard pays (watchdog_fires + pages_cpu) serialized passes; the
    // injector's stall counter (bursts × passes) is the receipt. The
    // siblings' timings are untouched — the stall is rank-scoped.
    let shard0_bursts = col.shards[0].rows.div_ceil(8);
    let stall_passes = par.recovery[0].watchdog_fires.get() + par.recovery[0].pages_cpu.get();
    let stalled_bursts = par.faults.as_ref().map_or(0, |f| f.stalls.get());
    assert_eq!(
        stalled_bursts,
        shard0_bursts * stall_passes,
        "every pass over the sick shard is fully stalled"
    );
    println!(
        "# fault run (rank 0 stalled, {k} ranks): end={} ms — merged result exact,",
        f2(par.end.as_ms_f64())
    );
    println!(
        "#   faulty shard fell back to the CPU scan ({stall_passes} serialized passes of \
         {shard0_bursts} stalled bursts); siblings untouched."
    );

    // Persist the perf trajectory (ROADMAP open item 3) as a hand-rolled
    // JSON artifact: the scaling curve plus the fault run's outcome.
    let points_json: Vec<String> = points
        .iter()
        .map(|(k, ms, s1, scpu, longest)| {
            format!(
                "    {{\"ranks\": {k}, \"time_ms\": {}, \"speedup_vs_1\": {}, \
                 \"speedup_vs_cpu\": {}, \"longest_shard_rows\": {longest}}}",
                jnum(*ms),
                jnum(*s1),
                jnum(*scpu),
            )
        })
        .collect();
    // `end_ms` here dwarfs the fault-free sweep by design: the sick
    // shard serializes `stall_passes` full passes of `stalled_bursts`
    // stalled bursts (see the fault-run comment above) — it is watchdog
    // + fallback physics, not double-counted accounting.
    let body = format!(
        "{{\n  \"bench\": \"fig_scaling\",\n  \"smoke\": {smoke},\n  \"rows\": {rows},\n  \
         \"cpu_baseline_ms\": {},\n  \"scaling\": [\n{}\n  ],\n  \"fault_run\": {{\"ranks\": {k}, \
         \"end_ms\": {}, \"rank0_cpu_pages\": {}, \"stall_passes\": {stall_passes}, \
         \"stalled_bursts\": {stalled_bursts}}}\n}}\n",
        jnum(cpu.end.as_ms_f64()),
        points_json.join(",\n"),
        jnum(par.end.as_ms_f64()),
        par.recovery[0].pages_cpu.get(),
    );
    write_bench_json("BENCH_scaling.json", &body);
}
