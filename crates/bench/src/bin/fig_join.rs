//! Served-join / keyed-group-by benchmark (beyond the paper's Figure 4):
//! the operator class PR 10 adds to the serving engine, measured two
//! ways.
//!
//! - **q3/q13 mix**: an open stream shaped like TPC-H Q3 and Q13 — semi-
//!   joins (an order-key build side compressed into predicate ranges,
//!   probed through the fused select datapath) interleaved with keyed
//!   group-bys (per-customer folds) and plain selects. Reports the mixed
//!   service rate and latency percentiles.
//! - **skew gate**: a saturated burst of keyed group-bys over a
//!   Zipf(1.0) key column, served once with naive hash partitioning and
//!   once with the JSPIM-style skew splitter. The deterministic gate:
//!   the split run must sustain **≥ 1.3×** the naive-hash service rate,
//!   and both runs must produce byte-identical group rows (the split is
//!   a placement change, never a semantics change).
//!
//! The run persists `BENCH_join.json` every time; `bench_check`
//! validates the schema, re-checks the 1.3× gate and holds the gated
//! fields to their accepted baseline in CI.
//!
//! Usage: `fig_join [--queries N] [--smoke]`

use jafar_bench::{arg, carry_baseline, f1, f2, flag, jnum, print_table, write_bench_json};
use jafar_common::time::Tick;
use jafar_dram::DramGeometry;
use jafar_serve::engine::ServeConfig;
use jafar_serve::{
    zipf_keys, AggFn, Arrivals, KeyRanges, QueryOp, QuerySpec, SchedPolicy, ServeReport, Workload,
};
use jafar_sim::{System, SystemConfig};

const SEED: u64 = 0x70A1;
const ROWS: usize = 32768;
const KEY_DOMAIN: usize = 4;
const ZIPF_THETA: f64 = 1.0;

/// The 4-rank machine the serving benches share.
fn system() -> System {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks: 4,
        banks_per_rank: 4,
        rows_per_bank: 512,
        row_bytes: 1024,
    };
    System::new(cfg)
}

/// A Q3-shaped build side: order keys clustered into a few contiguous
/// runs, compressed into the served predicate ranges.
fn q3_ranges() -> KeyRanges {
    let keys: Vec<i64> = (0..=120).chain(300..=340).chain(700..=705).collect();
    KeyRanges::from_keys(&keys).expect("3 runs → 3 ranges")
}

/// A second, narrower build side (a more selective order window).
fn q3_narrow_ranges() -> KeyRanges {
    let keys: Vec<i64> = (500..=530).chain(900..=920).collect();
    KeyRanges::from_keys(&keys).expect("2 runs → 2 ranges")
}

/// The Q3/Q13-shaped submission cycle: semi-joins probing the order-key
/// column, keyed group-bys folding per customer, selects riding along.
fn mix_specs(n: usize) -> Vec<QuerySpec> {
    (0..n)
        .map(|q| match q % 6 {
            0 => QuerySpec::semi_join(q3_ranges()),
            1 => QuerySpec::group_by(0, 999, AggFn::Sum),
            2 => QuerySpec {
                lo: 100,
                hi: 399,
                op: QueryOp::Select,
                slo: None,
            },
            3 => QuerySpec::semi_join(q3_narrow_ranges()),
            4 => QuerySpec::group_by(200, 899, AggFn::Max),
            _ => QuerySpec {
                lo: 0,
                hi: 999,
                op: QueryOp::SelectCount,
                slo: None,
            },
        })
        .collect()
}

fn p_ms(report: &ServeReport, pct: fn(&ServeReport) -> Option<Tick>) -> f64 {
    pct(report).map_or(0.0, |t| t.as_ms_f64())
}

fn main() {
    let smoke = flag("--smoke");
    let n: usize = arg("--queries", if smoke { 36 } else { 144 });
    let g: usize = arg("--groupbys", if smoke { 8 } else { 24 });
    let values: Vec<i64> = (0..ROWS as i64).map(|i| (i * 37 + 11) % 1000).collect();
    let keys = zipf_keys(ROWS, KEY_DOMAIN, ZIPF_THETA, SEED);
    println!(
        "# Served joins + keyed group-bys: {n} mixed queries, {g}-query skew burst, \
         {ROWS} rows, Zipf({ZIPF_THETA}) keys over {KEY_DOMAIN}, 4 NDP ranks"
    );
    println!();

    // --- Q3/Q13-shaped open mix -------------------------------------
    let mix = Workload {
        specs: mix_specs(n),
        arrivals: Arrivals::Open((0..n).map(|q| Tick::from_us(2) * (q as u64)).collect()),
        slo: None,
    };
    let cfg = ServeConfig {
        max_queue: n,
        fuse_window: 4,
        ..ServeConfig::default()
    };
    let mix_run = system().serve_with_keys(&values, &keys, &mix, SchedPolicy::Fifo, &cfg);
    let mix_report = &mix_run.report;
    assert_eq!(
        mix_report.completed(),
        n,
        "wide queue, no SLO: the whole mix completes"
    );
    let semi_joins = mix_report
        .records
        .iter()
        .filter(|r| matches!(r.op, QueryOp::SemiJoin { .. }))
        .count();
    let group_bys = mix_report
        .records
        .iter()
        .filter(|r| matches!(r.op, QueryOp::GroupBy { .. }))
        .count();

    // --- Skew gate: naive hash vs JSPIM-style split ------------------
    // One closed-loop client: each group-by gets the full pool, so the
    // makespan is the sum of per-query critical paths — exactly the
    // max-loaded-partition time the skew splitter attacks. (An open
    // burst would instead pipeline queries onto single freed units,
    // where total work — unchanged by placement — hides the effect.)
    let burst = Workload {
        specs: (0..g)
            .map(|_| QuerySpec::group_by(0, 999, AggFn::Sum))
            .collect(),
        arrivals: Arrivals::Closed {
            clients: 1,
            think: Tick::ZERO,
        },
        slo: None,
    };
    // Hot threshold 30%: on Zipf(1.0) over 4 keys only the head key
    // (~48% of rows) splits; the tail (≤24% each) stays hashed. Splitting
    // more keys would put every key's fold job on every unit, and the
    // per-job device overhead would eat the balance win.
    let skew_cfg = |split: bool| ServeConfig {
        max_queue: g,
        skew_split: split,
        skew_hot_pct: 30,
        ..ServeConfig::default()
    };
    let naive =
        system().serve_with_keys(&values, &keys, &burst, SchedPolicy::Fifo, &skew_cfg(false));
    let split =
        system().serve_with_keys(&values, &keys, &burst, SchedPolicy::Fifo, &skew_cfg(true));
    assert_eq!(naive.report.completed(), g);
    assert_eq!(split.report.completed(), g);
    // The split is a placement decision: every group row must be
    // byte-identical to the naive-hash run.
    let identity = naive
        .report
        .records
        .iter()
        .zip(&split.report.records)
        .all(|(a, b)| a.groups == b.groups && a.matched == b.matched);
    assert!(identity, "skew split changed a group row");
    let naive_qps = naive.report.service_rate_qps();
    let split_qps = split.report.service_rate_qps();
    let multiple = split_qps / naive_qps;

    let table = vec![
        vec![
            "q3/q13-mix".to_string(),
            format!("{n}"),
            format!("{semi_joins}/{group_bys}"),
            f2(mix_report.makespan.as_ms_f64()),
            f1(mix_report.service_rate_qps()),
            f2(p_ms(mix_report, ServeReport::p50)),
            f2(p_ms(mix_report, ServeReport::p99)),
        ],
        vec![
            "groupby-burst-naive".to_string(),
            format!("{g}"),
            "0/-".to_string(),
            f2(naive.report.makespan.as_ms_f64()),
            f1(naive_qps),
            f2(p_ms(&naive.report, ServeReport::p50)),
            f2(p_ms(&naive.report, ServeReport::p99)),
        ],
        vec![
            "groupby-burst-split".to_string(),
            format!("{g}"),
            "0/-".to_string(),
            f2(split.report.makespan.as_ms_f64()),
            f1(split_qps),
            f2(p_ms(&split.report, ServeReport::p50)),
            f2(p_ms(&split.report, ServeReport::p99)),
        ],
    ];
    print_table(
        &[
            "scenario", "queries", "semi/gby", "sim ms", "sim q/s", "p50 ms", "p99 ms",
        ],
        &table,
    );
    println!();
    println!(
        "# skew split: {}x the naive-hash service rate on the Zipf({ZIPF_THETA}) burst \
         (gate: >= 1.3x), group rows byte-identical.",
        f2(multiple)
    );
    assert!(
        multiple >= 1.3,
        "skew-aware split sustained only {multiple:.3}x the naive-hash service rate (< 1.3x)"
    );

    let body = format!(
        "{{\n  \"bench\": \"fig_join\",\n  \"smoke\": {smoke},\n  \"queries\": {n},\n  \
         \"rows\": {ROWS},\n  \"key_domain\": {KEY_DOMAIN},\n  \"zipf_theta\": {ZIPF_THETA},\n  \
         \"mix\": {{\"queries\": {n}, \"semi_joins\": {semi_joins}, \"group_bys\": {group_bys}, \
         \"completed\": {}, \"shed\": {}, \"service_rate_qps\": {}, \"p50_ms\": {}, \
         \"p99_ms\": {}}},\n  \
         \"skew\": {{\"queries\": {g}, \"naive_qps\": {}, \"split_qps\": {}, \
         \"split_multiple\": {}, \"naive_makespan_ms\": {}, \"split_makespan_ms\": {}, \
         \"identity\": {identity}}},\n  \
         \"baseline\": {}\n}}\n",
        mix_report.completed(),
        mix_report.shed(),
        jnum(mix_report.service_rate_qps()),
        jnum(p_ms(mix_report, ServeReport::p50)),
        jnum(p_ms(mix_report, ServeReport::p99)),
        jnum(naive_qps),
        jnum(split_qps),
        jnum(multiple),
        jnum(naive.report.makespan.as_ms_f64()),
        jnum(split.report.makespan.as_ms_f64()),
        carry_baseline("BENCH_join.json"),
    );
    write_bench_json("BENCH_join.json", &body);
}
