//! Served-load sweep — the saturation knee of the multi-tenant serving
//! subsystem (beyond the paper).
//!
//! A TPC-H-Q6-style predicate mix over the `lineitem.l_shipdate` column
//! is served as an open-loop Poisson stream of **mixed §4 operators**
//! (select, count, sum/min/max, k-column projection) through
//! `System::serve`, sweeping offered load from far below to far above
//! the machine's service capacity. Three properties are asserted as the
//! sweep runs:
//!
//! - **zero result divergence**: every completed select's selection
//!   vector is bit-identical to running the same predicate alone through
//!   `run_select_jafar` (and hence to the CPU reference, which the solo
//!   path is already tested against); every scalar aggregate equals the
//!   functional fold over the qualifying values, and every projection's
//!   packed output equals the filtered column;
//! - **throughput saturates**: past the knee, doubling offered load no
//!   longer buys proportional throughput;
//! - **tail latency rises past the knee**: p99 at the heaviest load is a
//!   multiple of p99 at the lightest, driven by queue wait rather than
//!   service time.
//!
//! A **channel sweep** then re-runs the heaviest load on a
//! [`jafar_sim::ServeCluster`] with C ∈ {1, 2, 4} memory channels: the
//! saturation knee (the heavy-load service-rate plateau) must move by
//! roughly the pool multiple — the 2-channel plateau is asserted at
//! ≥ 1.7× the single-channel plateau — while every completed query
//! stays bit-identical to its solo baseline.
//!
//! A **fusion sweep** replays the same saturated load as a pure-select
//! stream — maximal same-column contention — with the shared-scan fuse
//! window closed (1) and open (4): the fused knee is asserted at ≥ 1.3×
//! the unfused plateau, with results still bit-identical to solo runs.
//!
//! A final run repeats a moderate load under a rank-scoped stall fault
//! with an SLO attached: the sick rank's circuit breaker opens, the
//! rank-affinity policy steers work away from it, SLO-threatened queries
//! degrade to the host CPU rung — and every completed query, on whatever
//! rung, is still bit-identical to its solo run (scalar-identical for
//! aggregates, byte-identical for projections).
//!
//! Usage: `fig_serving [--sf F] [--queries N] [--csv] [--smoke]`
//!
//! `--smoke` shrinks the defaults (sf 0.003, 16 queries, two load
//! points) so CI can execute the sweep — assertions included — in
//! seconds.

use jafar_bench::{arg, carry_baseline, f1, f2, flag, jnum, print_table, write_bench_json};
use jafar_common::time::Tick;
use jafar_core::ResilienceConfig;
use jafar_dram::{DramGeometry, FaultPlan};
use jafar_serve::engine::ServeConfig;
use jafar_serve::workload::q6_shipdate_column;
use jafar_serve::{
    AggFn, ExecMode, FilterPool, PredicateMix, QueryOp, QueryRecord, SchedPolicy, Workload,
};
use jafar_sim::{ServeCluster, System, SystemConfig};
use jafar_tpch::gen::{TpchConfig, TpchDb};
use std::collections::BTreeMap;

const SEED: u64 = 0x6EA7;

/// The §4 operator set the served stream cycles through.
const OP_MIX: [QueryOp; 6] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::Project { k: 2 },
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::SelectAgg(AggFn::Max),
];

/// Solo baseline per distinct predicate: selection bytes, match count,
/// solo completion time, and the qualifying values in column order.
type SoloBaselines = BTreeMap<(i64, i64), (Vec<u8>, u64, Tick, Vec<i64>)>;

/// Every completed query, on whatever rung, must reproduce its solo
/// baseline: selection bytes for selects, the functional fold for
/// scalar aggregates, the filtered column for projections.
fn check_record(tag: &str, rec: &QueryRecord, solo: &SoloBaselines) {
    let (bytes, matched, _, qualifying) = &solo[&(rec.lo, rec.hi)];
    assert_eq!(rec.matched, *matched, "{tag}: query {} count", rec.id);
    match rec.op {
        QueryOp::Select | QueryOp::Project { .. } => {
            assert_eq!(
                &rec.bitset, bytes,
                "{tag}: query {} diverged from its solo run",
                rec.id
            );
            if matches!(rec.op, QueryOp::Project { .. }) {
                assert_eq!(
                    &rec.projected, qualifying,
                    "{tag}: query {} packed projection",
                    rec.id
                );
            }
        }
        QueryOp::SelectCount => assert_eq!(
            rec.agg,
            Some(*matched as i64),
            "{tag}: query {} count scalar",
            rec.id
        ),
        QueryOp::SelectAgg(f) => {
            let expect = match f {
                AggFn::Sum => qualifying.iter().copied().reduce(|a, b| a.wrapping_add(b)),
                AggFn::Min => qualifying.iter().copied().min(),
                AggFn::Max => qualifying.iter().copied().max(),
            };
            assert_eq!(rec.agg, expect, "{tag}: query {} aggregate scalar", rec.id);
        }
        QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
            unreachable!("{tag}: the fig_serving mix serves no joins or group-bys")
        }
    }
}

/// Same gem5-like 8-rank host as `fig_scaling`: 7 NDP ranks with a
/// device each, the last rank as CPU scratch.
fn config() -> SystemConfig {
    let mut cfg = SystemConfig::gem5_like();
    cfg.dram_geometry = DramGeometry {
        ranks: 8,
        banks_per_rank: 8,
        rows_per_bank: 1024,
        row_bytes: 8 * 1024,
    };
    cfg.query_overhead = Tick::from_us(5);
    cfg
}

fn main() {
    let smoke = flag("--smoke");
    let sf: f64 = arg("--sf", if smoke { 0.003 } else { 0.01 });
    let n: usize = arg("--queries", if smoke { 16 } else { 48 });
    let csv = flag("--csv");

    let db = TpchDb::generate(TpchConfig { sf, seed: 7 });
    let values = q6_shipdate_column(&db).to_vec();
    let rows = values.len() as u64;
    let mix = PredicateMix::tpch_q6();

    println!(
        "# Served-load sweep: {n} mixed-operator Q6-style queries over {rows} lineitem shipdates (sf {sf})"
    );
    let cfg = config();
    println!(
        "# platform: {} / {} — {} NDP ranks, fanout {}",
        cfg.name,
        cfg.dram_geometry.describe(),
        cfg.dram_geometry.ranks - 1,
        ServeConfig::default().fanout,
    );
    println!();

    // Solo baselines: every distinct predicate run alone on a fresh
    // system. The served runs must reproduce these bytes exactly. The
    // channel sweep below serves a deeper stream (`cn` queries), so
    // baselines cover that count too.
    let cn = n.max(128);
    let specs = mix.generate(cn, SEED);
    let mut solo: SoloBaselines = BTreeMap::new();
    for s in &specs {
        solo.entry((s.lo, s.hi)).or_insert_with(|| {
            let mut sys = System::new(config());
            let col = sys.write_column(&values);
            let run = sys.run_select_jafar(col, rows, s.lo, s.hi, Tick::ZERO);
            let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
            sys.mc().module().data().read(run.out_addr, &mut bytes);
            let qualifying: Vec<i64> = values
                .iter()
                .copied()
                .filter(|v| (s.lo..=s.hi).contains(v))
                .collect();
            (bytes, run.matched, run.end, qualifying)
        });
    }
    // Offered load is normalised to the solo service time: load x means
    // a mean inter-arrival gap of (solo end) / x.
    let svc = solo
        .values()
        .map(|(_, _, end, _)| *end)
        .max()
        .expect("at least one query");
    println!(
        "# solo service time (worst distinct predicate): {} ms across {} distinct predicates",
        f2(svc.as_ms_f64()),
        solo.len()
    );
    println!();

    let loads: &[f64] = if smoke {
        &[0.5, 16.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    };

    if csv {
        println!("load,gap_us,completed,shed,throughput_qps,p50_ms,p95_ms,p99_ms,mean_wait_ms,mean_service_ms");
    }
    let mut table: Vec<Vec<String>> = Vec::new();
    struct Point {
        load: f64,
        offered: f64,
        tput: f64,
        service_rate: f64,
        completed: usize,
        shed: usize,
        p50: f64,
        p95: f64,
        p99: f64,
        wait: f64,
        svc: f64,
    }
    let mut sweep: Vec<Point> = Vec::new();
    for &load in loads {
        let gap = Tick::from_ps(((svc.as_ps() as f64) / load).round().max(1.0) as u64);
        let workload = Workload::poisson(mix, n, gap, SEED).with_op_mix(&OP_MIX);
        let mut sys = System::new(config());
        let run = sys.serve(
            &values,
            &workload,
            SchedPolicy::Fifo,
            &ServeConfig::default(),
        );
        let report = &run.report;

        assert_eq!(
            report.completed() + report.shed(),
            n,
            "load {load}: every query completes or is shed"
        );
        for rec in &report.records {
            if rec.done.is_none() {
                continue;
            }
            check_record(&format!("load {load}"), rec, &solo);
        }

        let ms = |t: Option<Tick>| t.map_or(f64::NAN, |t| t.as_ms_f64());
        let p99 = ms(report.p99());
        let tput = report.throughput_qps();
        // Realized offered rate over the same arrival window the
        // throughput uses — the pair the `throughput <= offered`
        // invariant is stated (and schema-checked) against. The seeded
        // Poisson stream drifts from the configured `1 / gap`.
        let offered = report.offered_qps();
        assert!(
            tput <= offered * 1.0001,
            "load {load}: goodput cannot exceed offered load ({tput} vs {offered})"
        );
        sweep.push(Point {
            load,
            offered,
            tput,
            service_rate: report.service_rate_qps(),
            completed: report.completed(),
            shed: report.shed(),
            p50: ms(report.p50()),
            p95: ms(report.p95()),
            p99,
            wait: ms(report.mean_queue_wait()),
            svc: ms(report.mean_service()),
        });
        if csv {
            println!(
                "{load},{:.2},{},{},{:.1},{:.4},{:.4},{:.4},{:.4},{:.4}",
                gap.as_ms_f64() * 1e3,
                report.completed(),
                report.shed(),
                tput,
                ms(report.p50()),
                ms(report.p95()),
                p99,
                ms(report.mean_queue_wait()),
                ms(report.mean_service()),
            );
        }
        table.push(vec![
            f2(load),
            f2(gap.as_ms_f64() * 1e3),
            format!("{}", report.completed()),
            format!("{}", report.shed()),
            f1(tput),
            f2(ms(report.p50())),
            f2(p99),
            f2(ms(report.mean_queue_wait())),
            f2(ms(report.mean_service())),
        ]);
    }

    if !csv {
        print_table(
            &[
                "load",
                "gap (µs)",
                "done",
                "shed",
                "q/s",
                "p50 (ms)",
                "p99 (ms)",
                "wait (ms)",
                "svc (ms)",
            ],
            &table,
        );
        println!();
    }

    // The knee: tail latency must blow up with offered load, and the
    // sustained service rate (completed per second of makespan, drain
    // included) must fall behind the offered rate — or admission must
    // shed — once the machine saturates. Goodput (`throughput_qps`)
    // cannot carry this signal any more: it shares the offered-load
    // denominator, so a zero-shed run keeps up with its offered load by
    // construction. Comparing the service rate vs *offered* (rather than
    // vs the previous point) keeps the check meaningful even with the
    // two-point smoke sweep, where light-load throughput is
    // arrival-limited, not capacity-limited.
    let (p99_light, wait_light, svc_light) = (sweep[0].p99, sweep[0].wait, sweep[0].svc);
    let heavy = &sweep[sweep.len() - 1];
    let (p99_heavy, rate_heavy, offered_heavy, shed_heavy) =
        (heavy.p99, heavy.service_rate, heavy.offered, heavy.shed);
    let tput_heavy = heavy.tput;
    assert!(
        p99_heavy > 2.0 * p99_light,
        "p99 must rise past the knee: {p99_heavy} ms heavy vs {p99_light} ms light"
    );
    assert!(
        wait_light < 0.5 * svc_light,
        "light load must be service-dominated, not queueing: mean wait {wait_light} ms vs mean service {svc_light} ms"
    );
    assert!(
        rate_heavy < 0.7 * offered_heavy || shed_heavy > 0,
        "heaviest load must saturate: {rate_heavy} q/s sustained vs {offered_heavy} offered, {shed_heavy} shed"
    );
    println!(
        "# knee confirmed: p99 {}x the light-load tail; heaviest point sheds {shed_heavy} and",
        f1(p99_heavy / p99_light)
    );
    println!(
        "#   sustains only {}% of its offered rate.",
        f1(100.0 * rate_heavy / offered_heavy),
    );
    println!();

    // Channel sweep: the same overloaded stream on a ServeCluster with
    // C ∈ {1, 2, 4} memory channels. Every channel carries the same
    // channel-local column layout, so results stay bit-identical to the
    // solo baselines, while the saturation knee — the heavy-load service
    // -rate plateau — moves by roughly the pool multiple. The gap is set
    // well past even the 4-channel capacity so every width measures its
    // plateau, not the arrival rate, and the stream is deep enough that
    // steady-state service dominates the drain tail of the last wave.
    // The admission queue is widened to hold the whole backlog: shedding
    // would truncate the drain and turn the makespan into an
    // arrival-window measurement instead of a capacity one.
    let cgap = Tick::from_ps((svc.as_ps() / 64).max(1));
    let cworkload = Workload::poisson(mix, cn, cgap, SEED).with_op_mix(&OP_MIX);
    let ccfg = ServeConfig {
        max_queue: cn,
        ..ServeConfig::default()
    };
    struct ChannelPoint {
        channels: usize,
        units: usize,
        offered: f64,
        tput: f64,
        service_rate: f64,
        completed: usize,
        shed: usize,
        p99: f64,
    }
    let mut channel_sweep: Vec<ChannelPoint> = Vec::new();
    for channels in [1usize, 2, 4] {
        let mut cluster = ServeCluster::new(
            config(),
            channels,
            jafar_common::obs::SharedTracer::disabled(),
        )
        .expect("power-of-two channel count");
        let units = cluster.pool().units();
        let run = cluster.serve(&values, &cworkload, SchedPolicy::RankAffinity, &ccfg);
        let report = &run.report;
        assert_eq!(report.completed() + report.shed(), cn);
        for rec in &report.records {
            if rec.done.is_some() {
                check_record(&format!("{channels}-channel sweep"), rec, &solo);
            }
        }
        assert_eq!(report.availability.units.len(), units);
        channel_sweep.push(ChannelPoint {
            channels,
            units,
            offered: report.offered_qps(),
            tput: report.throughput_qps(),
            service_rate: report.service_rate_qps(),
            completed: report.completed(),
            shed: report.shed(),
            p99: report.p99().map_or(f64::NAN, |t| t.as_ms_f64()),
        });
    }
    let knee_1ch = channel_sweep[0].service_rate;
    let knee_2ch = channel_sweep[1].service_rate;
    let knee_4ch = channel_sweep[2].service_rate;
    assert!(
        knee_2ch >= 1.7 * knee_1ch,
        "2-channel knee must move ~the pool multiple: {knee_2ch} q/s vs {knee_1ch} q/s single-channel"
    );
    assert!(
        knee_4ch >= 1.2 * knee_2ch,
        "4-channel knee must keep moving: {knee_4ch} q/s vs {knee_2ch} q/s 2-channel"
    );
    println!("# channel sweep (saturated, rank-affinity): knee moves with the pool");
    for p in &channel_sweep {
        println!(
            "#   C={} ({:2} units): {} q/s sustained, {} done / {} shed, p99 {} ms",
            p.channels,
            p.units,
            f1(p.service_rate),
            p.completed,
            p.shed,
            f2(p.p99),
        );
    }
    println!(
        "#   2-channel plateau {}x single-channel, 4-channel {}x — results bit-identical throughout.",
        f2(knee_2ch / knee_1ch),
        f2(knee_4ch / knee_1ch),
    );
    println!();

    // Fusion sweep: the same saturated load as a *pure select* stream —
    // maximal same-column contention, every queued query a candidate
    // lane for the shared scan. With the fuse window open the engine
    // folds waiting selects into the running pass as extra predicate
    // lanes, so the saturation knee (heavy-load service-rate plateau)
    // must move right: ≥ 1.3× the unfused plateau, while every
    // completed query stays bit-identical to its solo baseline.
    let fworkload = Workload::poisson(mix, cn, cgap, SEED);
    struct FusionPoint {
        fuse_window: usize,
        offered: f64,
        tput: f64,
        service_rate: f64,
        completed: usize,
        shed: usize,
        p99: f64,
    }
    let mut fusion_sweep: Vec<FusionPoint> = Vec::new();
    for fuse_window in [1usize, 4] {
        let fcfg = ServeConfig {
            max_queue: cn,
            fuse_window,
            ..ServeConfig::default()
        };
        let mut sys = System::new(config());
        let run = sys.serve(&values, &fworkload, SchedPolicy::RankAffinity, &fcfg);
        let report = &run.report;
        assert_eq!(report.completed() + report.shed(), cn);
        for rec in &report.records {
            if rec.done.is_some() {
                check_record(&format!("fusion sweep (window {fuse_window})"), rec, &solo);
            }
        }
        fusion_sweep.push(FusionPoint {
            fuse_window,
            offered: report.offered_qps(),
            tput: report.throughput_qps(),
            service_rate: report.service_rate_qps(),
            completed: report.completed(),
            shed: report.shed(),
            p99: report.p99().map_or(f64::NAN, |t| t.as_ms_f64()),
        });
    }
    let knee_unfused = fusion_sweep[0].service_rate;
    let knee_fused = fusion_sweep[1].service_rate;
    assert!(
        knee_fused >= 1.3 * knee_unfused,
        "shared-scan fusion must move the knee right: {knee_fused} q/s fused vs {knee_unfused} q/s unfused"
    );
    println!("# fusion sweep (saturated pure-select stream, same column):");
    for p in &fusion_sweep {
        println!(
            "#   fuse_window={}: {} q/s sustained, {} done / {} shed, p99 {} ms",
            p.fuse_window,
            f1(p.service_rate),
            p.completed,
            p.shed,
            f2(p.p99),
        );
    }
    println!(
        "#   fused knee {}x the unfused plateau — results bit-identical throughout.",
        f2(knee_fused / knee_unfused),
    );
    println!();

    // Rank-scoped fault + SLO: the full ladder under contention. Rank 0
    // stalls every burst; its breaker opens on the first query that
    // touches it and rank affinity steers later queries away. Load is set
    // well past the capacity of the surviving ranks so the queue actually
    // builds, and the SLO sits one solo-service-time above the host-scan
    // estimate — a queued query degrades to the CPU rung once it has
    // waited about one solo service time.
    let scfg = ServeConfig {
        resilience: ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    // Per-operator host-scan estimate, anchored on the select shape
    // (bitset output: one bit per row). Projections estimate higher and
    // so degrade sooner; scalar aggregates estimate lower — the CPU
    // rung must return identical results on all of them.
    let est_cpu =
        scfg.cpu_fixed + scfg.cpu_per_row * rows + scfg.cpu_per_out_byte * rows.div_ceil(8);
    let slo = est_cpu + Tick::from_ps((svc.as_ps() / 2).max(1));
    let gap = Tick::from_ps((svc.as_ps() / 16).max(1));
    let workload = Workload::poisson(mix, n, gap, SEED)
        .with_slo(slo)
        .with_op_mix(&OP_MIX);
    let mut sys = System::new(config());
    sys.inject_faults(FaultPlan {
        stall_burst_range: Some((0, u64::MAX)),
        rank_scope: Some(0),
        ..FaultPlan::none(11)
    });
    let run = sys.serve(&values, &workload, SchedPolicy::RankAffinity, &scfg);
    let report = &run.report;
    assert_eq!(
        report.completed() + report.shed(),
        n,
        "fault run: every query completes or is shed"
    );
    let mut cpu_rung = 0usize;
    for rec in &report.records {
        if rec.done.is_none() {
            continue;
        }
        if rec.mode == ExecMode::Cpu {
            cpu_rung += 1;
        }
        check_record("fault run", rec, &solo);
    }
    assert!(
        run.recovery[0].recovery_total() >= 1,
        "rank 0 exercised its recovery ladder"
    );
    assert!(
        cpu_rung >= 1,
        "at least one SLO-threatened query degraded to the host CPU rung"
    );
    for (r, stats) in run.recovery.iter().enumerate().skip(1) {
        assert_eq!(
            stats.recovery_total(),
            0,
            "healthy rank {r} untouched by the rank-0 fault"
        );
    }
    println!(
        "# fault run (rank 0 stalled, SLO {} ms): {} completed ({} on the CPU rung), {} shed,",
        f2(slo.as_ms_f64()),
        report.completed(),
        cpu_rung,
        report.shed(),
    );
    println!(
        "#   p99 {} ms, {} deadline misses — all completed results bit-identical to solo runs.",
        f2(report.p99().map_or(f64::NAN, |t| t.as_ms_f64())),
        report.deadline_misses(),
    );
    println!("# per-operator breakdown (fault run):");
    for b in report.op_breakdown() {
        println!(
            "#   {:7} {:2} done ({} shed, {} on cpu), p99 {} ms, {} q/s",
            b.op,
            b.completed,
            b.shed,
            b.cpu,
            f2(b.p99.map_or(f64::NAN, |t| t.as_ms_f64())),
            f1(b.throughput_qps),
        );
    }

    // Persist the perf trajectory (ROADMAP open item 3): the load sweep,
    // the knee, and the fault run's availability accounting, as one
    // hand-rolled JSON artifact per run.
    let points: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "    {{\"load\": {}, \"offered_qps\": {}, \"throughput_qps\": {}, \
                 \"service_rate_qps\": {}, \"completed\": {}, \"shed\": {}, \"p50_ms\": {}, \
                 \"p95_ms\": {}, \"p99_ms\": {}, \"mean_wait_ms\": {}, \"mean_service_ms\": {}}}",
                jnum(p.load),
                jnum(p.offered),
                jnum(p.tput),
                jnum(p.service_rate),
                p.completed,
                p.shed,
                jnum(p.p50),
                jnum(p.p95),
                jnum(p.p99),
                jnum(p.wait),
                jnum(p.svc),
            )
        })
        .collect();
    let channel_points: Vec<String> = channel_sweep
        .iter()
        .map(|p| {
            format!(
                "    {{\"channels\": {}, \"units\": {}, \"offered_qps\": {}, \
                 \"throughput_qps\": {}, \"service_rate_qps\": {}, \"completed\": {}, \
                 \"shed\": {}, \"p99_ms\": {}}}",
                p.channels,
                p.units,
                jnum(p.offered),
                jnum(p.tput),
                jnum(p.service_rate),
                p.completed,
                p.shed,
                jnum(p.p99),
            )
        })
        .collect();
    let fusion_points: Vec<String> = fusion_sweep
        .iter()
        .map(|p| {
            format!(
                "    {{\"fuse_window\": {}, \"offered_qps\": {}, \"throughput_qps\": {}, \
                 \"service_rate_qps\": {}, \"completed\": {}, \"shed\": {}, \"p99_ms\": {}}}",
                p.fuse_window,
                jnum(p.offered),
                jnum(p.tput),
                jnum(p.service_rate),
                p.completed,
                p.shed,
                jnum(p.p99),
            )
        })
        .collect();
    let a = &report.availability;
    let units_json: Vec<String> = a
        .units
        .iter()
        .map(|r| {
            format!(
                "      {{\"unit\": {}, \"channel\": {}, \"rank\": {}, \"downtime_us\": {}, \
                 \"quarantines\": {}, \"canary_ok\": {}, \"canary_fail\": {}}}",
                r.unit,
                r.channel,
                r.rank,
                jnum(r.downtime.as_us_f64()),
                r.quarantines,
                r.canary_ok,
                r.canary_fail,
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"fig_serving\",\n  \"smoke\": {smoke},\n  \"queries\": {n},\n  \
         \"rows\": {rows},\n  \"load_sweep\": [\n{}\n  ],\n  \"knee\": {{\"p99_light_ms\": {}, \
         \"p99_heavy_ms\": {}, \"p99_ratio\": {}, \"heavy_offered_qps\": {}, \
         \"heavy_throughput_qps\": {}, \"heavy_service_rate_qps\": {}, \
         \"heavy_shed\": {shed_heavy}}},\n  \"channel_sweep\": [\n{}\n  ],\n  \
         \"knee_2ch_multiple\": {},\n  \"knee_4ch_multiple\": {},\n  \
         \"fusion_sweep\": [\n{}\n  ],\n  \"fused_knee_multiple\": {},\n  \"fault_run\": {{\n    \
         \"completed\": {}, \"shed\": {}, \"cpu_rung\": {cpu_rung}, \"p99_ms\": {}, \
         \"deadline_misses\": {},\n    \"availability\": {{\n      \"migrations\": {}, \
         \"requeues\": {}, \"sheds_tightened\": {}, \"total_downtime_us\": {},\n      \
         \"units\": [\n{}\n      ]\n    }}\n  }},\n  \"baseline\": {}\n}}\n",
        points.join(",\n"),
        jnum(p99_light),
        jnum(p99_heavy),
        jnum(p99_heavy / p99_light),
        jnum(offered_heavy),
        jnum(tput_heavy),
        jnum(rate_heavy),
        channel_points.join(",\n"),
        jnum(knee_2ch / knee_1ch),
        jnum(knee_4ch / knee_1ch),
        fusion_points.join(",\n"),
        jnum(knee_fused / knee_unfused),
        report.completed(),
        report.shed(),
        jnum(report.p99().map_or(f64::NAN, |t| t.as_ms_f64())),
        report.deadline_misses(),
        a.migrations,
        a.requeues,
        a.sheds_tightened,
        jnum(a.total_downtime().as_us_f64()),
        units_json.join(",\n"),
        carry_baseline("BENCH_serving.json"),
    );
    write_bench_json("BENCH_serving.json", &body);
}
