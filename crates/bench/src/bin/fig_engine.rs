//! Engine microbenchmark — wall-clock throughput of the discrete-event
//! serving engine itself (beyond the paper).
//!
//! Every other `fig_*` binary reports *simulated* time; this one asks
//! how fast the simulator's serving engine executes on the host: events
//! processed per wall-clock second and queries served per wall-clock
//! second, across three scenarios:
//!
//! - **mixed-open**: an open Poisson stream of the §4 operator mix —
//!   the engine's steady-state shape;
//! - **select-burst (unfused / fused)**: a saturated same-column select
//!   stream, the shared-scan fusion target. The fused run must sustain
//!   at least the unfused *simulated* service rate (the deterministic
//!   gate `bench_check` enforces — wall-clock numbers are machine-
//!   dependent and only checked for finiteness) and is expected to beat
//!   it by roughly the fuse window over the fused-scan overhead;
//! - **select-burst (unbatched)**: the same burst with one arrival per
//!   engine event, pinning the event-count saving of batched admission.
//!
//! The run persists `BENCH_engine.json` every time; `bench_check`
//! validates its schema and the two deterministic invariants in CI.
//!
//! Usage: `fig_engine [--queries N] [--smoke]`

use jafar_bench::{arg, carry_baseline, f1, f2, flag, jnum, print_table, write_bench_json};
use jafar_common::time::Tick;
use jafar_dram::DramGeometry;
use jafar_serve::engine::ServeConfig;
use jafar_serve::{AggFn, Arrivals, PredicateMix, QueryOp, SchedPolicy, Workload};
use jafar_sim::{System, SystemConfig};
use std::time::Instant;

const SEED: u64 = 0xE961;

/// The §4 operator set the mixed stream cycles through.
const OP_MIX: [QueryOp; 6] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::Project { k: 2 },
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::SelectAgg(AggFn::Max),
];

/// A small 4-rank machine: the engine (not the DRAM model) dominates,
/// which is the thing under measurement.
fn system() -> System {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks: 4,
        banks_per_rank: 4,
        rows_per_bank: 64,
        row_bytes: 1024,
    };
    System::new(cfg)
}

struct Scenario {
    name: &'static str,
    queries: usize,
    completed: usize,
    shed: usize,
    events: u64,
    sim_makespan_ms: f64,
    sim_service_rate_qps: f64,
    wall_ms: f64,
    events_per_sec: f64,
    queries_per_sec: f64,
}

fn run_scenario(
    name: &'static str,
    values: &[i64],
    workload: &Workload,
    cfg: &ServeConfig,
) -> Scenario {
    let mut sys = system();
    let t0 = Instant::now();
    let run = sys.serve(values, workload, SchedPolicy::Fifo, cfg);
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let report = &run.report;
    let n = report.records.len();
    assert_eq!(
        report.completed() + report.shed(),
        n,
        "{name}: every query completes or is shed"
    );
    Scenario {
        name,
        queries: n,
        completed: report.completed(),
        shed: report.shed(),
        events: report.events,
        sim_makespan_ms: report.makespan.as_ms_f64(),
        sim_service_rate_qps: report.service_rate_qps(),
        wall_ms: wall * 1e3,
        events_per_sec: report.events as f64 / wall,
        queries_per_sec: n as f64 / wall,
    }
}

fn main() {
    let smoke = flag("--smoke");
    let n: usize = arg("--queries", if smoke { 48 } else { 256 });
    let rows = 2048usize;
    let values: Vec<i64> = (0..rows as i64).map(|i| (i * 37 + 11) % 1000).collect();
    let mix = PredicateMix::UniformRange {
        min: 0,
        max: 999,
        width: 200,
    };
    println!("# Engine microbenchmark: {n} queries over {rows} rows, 4 NDP ranks");
    println!();

    // Mixed open stream at moderate pressure: arrivals outpace service
    // enough to keep the queue (and thus the dispatch path) busy.
    let mixed = Workload::poisson(mix, n, Tick::from_us(2), SEED).with_op_mix(&OP_MIX);
    // Saturated same-column select stream: everything arrives at one
    // instant, so the queue is deep whenever a rank frees — the
    // shared-scan fusion target, and the same-t batch the admission
    // drain collapses into one event. The queue is widened to hold the
    // whole backlog so every run serves the identical query set.
    let burst = Workload {
        specs: mix.generate(n, SEED),
        arrivals: Arrivals::Open(vec![Tick::ZERO; n]),
        slo: None,
    };
    let wide = |fuse: usize, batch: bool| ServeConfig {
        max_queue: n,
        fuse_window: fuse,
        batch_admission: batch,
        ..ServeConfig::default()
    };

    let scenarios = [
        run_scenario("mixed-open", &values, &mixed, &ServeConfig::default()),
        run_scenario("select-burst-unfused", &values, &burst, &wide(1, true)),
        run_scenario("select-burst-fused", &values, &burst, &wide(4, true)),
        run_scenario("select-burst-unbatched", &values, &burst, &wide(1, false)),
    ];

    let table: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                format!("{}", s.queries),
                format!("{}", s.shed),
                format!("{}", s.events),
                f2(s.sim_makespan_ms),
                f1(s.sim_service_rate_qps),
                f2(s.wall_ms),
                f1(s.events_per_sec / 1e3),
                f1(s.queries_per_sec / 1e3),
            ]
        })
        .collect();
    print_table(
        &[
            "scenario", "queries", "shed", "events", "sim ms", "sim q/s", "wall ms", "kev/s",
            "kq/s",
        ],
        &table,
    );
    println!();

    // Deterministic gates (simulated time, independent of the host):
    // fusion must not lose service rate on its target scenario, and
    // batched admission must not add events.
    let unfused = &scenarios[1];
    let fused = &scenarios[2];
    let unbatched = &scenarios[3];
    assert_eq!(
        fused.completed, unfused.completed,
        "fusion must not change admission outcomes on an un-shed burst"
    );
    assert!(
        fused.sim_service_rate_qps >= unfused.sim_service_rate_qps,
        "fused service rate {} q/s must not fall below unfused {} q/s",
        fused.sim_service_rate_qps,
        unfused.sim_service_rate_qps
    );
    assert!(
        unfused.events <= unbatched.events,
        "batched admission must not add events ({} vs {} unbatched)",
        unfused.events,
        unbatched.events
    );
    let multiple = fused.sim_service_rate_qps / unfused.sim_service_rate_qps;
    println!(
        "# fusion: {}x the unfused service rate on the contention burst (window 4);",
        f2(multiple)
    );
    println!(
        "# batching: {} events vs {} one-at-a-time ({} saved).",
        unfused.events,
        unbatched.events,
        unbatched.events - unfused.events
    );

    let points: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"queries\": {}, \"completed\": {}, \"shed\": {}, \
                 \"events\": {}, \"sim_makespan_ms\": {}, \"sim_service_rate_qps\": {}, \
                 \"wall_ms\": {}, \"events_per_sec\": {}, \"queries_per_sec\": {}}}",
                s.name,
                s.queries,
                s.completed,
                s.shed,
                s.events,
                jnum(s.sim_makespan_ms),
                jnum(s.sim_service_rate_qps),
                jnum(s.wall_ms),
                jnum(s.events_per_sec),
                jnum(s.queries_per_sec),
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"fig_engine\",\n  \"smoke\": {smoke},\n  \"queries\": {n},\n  \
         \"rows\": {rows},\n  \"scenarios\": [\n{}\n  ],\n  \"contention\": {{\"fuse_window\": 4, \
         \"unfused_qps\": {}, \"fused_qps\": {}, \"fused_multiple\": {}}},\n  \
         \"batching\": {{\"batched_events\": {}, \"unbatched_events\": {}}},\n  \
         \"baseline\": {}\n}}\n",
        points.join(",\n"),
        jnum(unfused.sim_service_rate_qps),
        jnum(fused.sim_service_rate_qps),
        jnum(multiple),
        unfused.events,
        unbatched.events,
        carry_baseline("BENCH_engine.json"),
    );
    write_bench_json("BENCH_engine.json", &body);
}
