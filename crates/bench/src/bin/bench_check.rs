//! Schema check over the `BENCH_*.json` perf artifacts — the CI gate
//! that keeps the persisted trajectory honest.
//!
//! For every artifact present (or explicitly listed on the command
//! line) this verifies:
//!
//! - the expected top-level keys exist;
//! - every knee/summary field that feeds a plot is a finite number (a
//!   `null` from an empty percentile would silently flatline a curve);
//! - the throughput accounting invariant: `throughput_qps <=
//!   offered_qps` on every sweep point — goodput over the arrival
//!   window can never exceed the offered load, the exact identity whose
//!   violation motivated the serving-report accounting fix;
//! - the channel sweep's knee multiples are present and the 2-channel
//!   plateau moved by at least 1.7× the single-channel one;
//! - the fusion sweep's knee multiple: the fused plateau sits at ≥ 1.3×
//!   the unfused one on the saturated same-column stream;
//! - the engine artifact's deterministic invariants: fused service rate
//!   at least the unfused rate on the contention burst, and batched
//!   admission processing no more events than one-at-a-time draining
//!   (wall-clock throughput fields are checked for finiteness only —
//!   they are machine-dependent);
//! - the join artifact's acceptance gates: the Q3/Q13-shaped mix served
//!   at least one semi-join and one keyed group-by with nothing lost,
//!   the skew-aware split sustained ≥ 1.3× the naive-hash service rate
//!   on the Zipf(1.0) key burst, and the split run's group rows were
//!   byte-identical to naive hashing;
//! - the cluster artifact's acceptance gates: the saturation knee scales
//!   ≥ 1.6× from one node to two under replica-local routing, the
//!   node-outage run completed every admitted query with results
//!   identical to the solo run, and the rf=1 pull run billed exactly one
//!   page-store transfer per frontend pull;
//! - the **baseline regression gate**: each artifact may carry a
//!   `baseline` object with per-mode (`full` / `smoke`) maps of dotted
//!   field paths to the values last accepted into the trajectory. Every
//!   gated field (knee multiples and service rates — all deterministic
//!   simulated quantities, never wall-clock) must sit within 15% of the
//!   value accepted for the same mode; a drop below `0.85 × baseline`
//!   fails CI. The modes are separate because CI re-runs the benches
//!   with `--smoke` before checking — a full-run knee would be compared
//!   against a smoke-run knee otherwise. After an intentional change,
//!   re-accept with `bench_check --accept [FILE...]`, which rewrites the
//!   artifacts with the current values as the new baseline for the
//!   artifact's current mode — the diff in the committed `BENCH_*.json`
//!   is the reviewable perf trajectory. Benches carry the accepted
//!   baseline forward when they rewrite an artifact, so only `--accept`
//!   ever moves it.
//!
//! Usage: `bench_check [--accept] [FILE...]` — defaults to
//! `BENCH_serving.json`, `BENCH_scaling.json`, `BENCH_engine.json`,
//! `BENCH_cluster.json` and `BENCH_join.json` in the working directory,
//! skipping missing
//! defaults but failing on missing explicit arguments. Exits non-zero
//! with one line per violation.

use jafar_bench::json::Json;

/// Per-bench gated fields for the baseline regression gate: dotted paths
/// to higher-is-better, deterministic (simulated-time) numbers.
fn gated_fields(bench: &str) -> &'static [&'static str] {
    match bench {
        "fig_serving" => &[
            "knee.heavy_service_rate_qps",
            "knee_2ch_multiple",
            "knee_4ch_multiple",
            "fused_knee_multiple",
        ],
        "fig_engine" => &["contention.fused_multiple"],
        "fig_cluster" => &["knee_2node_multiple", "knee_4node_multiple"],
        "fig_join" => &["skew.split_multiple", "mix.service_rate_qps"],
        _ => &[],
    }
}

/// Resolves a dotted path (`knee.heavy_service_rate_qps`) against a doc.
fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    Some(cur)
}

/// Which baseline sub-map this artifact gates against: smoke runs carry
/// different workload sizes (and so different knees) than full runs.
fn baseline_mode(doc: &Json) -> &'static str {
    if doc.get("smoke") == Some(&Json::Bool(true)) {
        "smoke"
    } else {
        "full"
    }
}

/// Accumulates violations instead of bailing at the first, so one CI
/// run reports everything wrong with an artifact.
struct Check {
    file: String,
    errors: Vec<String>,
}

impl Check {
    fn new(file: &str) -> Check {
        Check {
            file: file.to_string(),
            errors: Vec::new(),
        }
    }

    fn fail(&mut self, msg: String) {
        self.errors.push(format!("{}: {msg}", self.file));
    }

    fn require<'a>(&mut self, v: &'a Json, key: &str) -> Option<&'a Json> {
        let found = v.get(key);
        if found.is_none() {
            self.fail(format!("missing key `{key}`"));
        }
        found
    }

    fn finite(&mut self, v: &Json, key: &str) -> Option<f64> {
        match self.require(v, key).and_then(Json::num) {
            Some(n) if n.is_finite() => Some(n),
            Some(n) => {
                self.fail(format!("`{key}` is not finite: {n}"));
                None
            }
            None => {
                self.fail(format!("`{key}` is not a finite number"));
                None
            }
        }
    }

    /// The baseline regression gate: every gated field within 15% of
    /// the value last accepted via `--accept` for the artifact's mode
    /// (`full` vs `smoke` — the two run very different workload sizes).
    /// A missing baseline for the mode is reported as a note, not a
    /// failure — the gate arms itself the first time one is accepted.
    fn baseline_gate(&mut self, doc: &Json, gated: &[&str]) {
        if gated.is_empty() {
            return;
        }
        let mode = baseline_mode(doc);
        let Some(base) = doc.get("baseline").and_then(|b| b.get(mode)) else {
            println!(
                "# {}: no accepted `{mode}` baseline (seed one with `bench_check --accept {}`)",
                self.file, self.file
            );
            return;
        };
        for &path in gated {
            let Some(accepted) = base.get(path).and_then(Json::num) else {
                self.fail(format!("baseline is missing gated field `{path}`"));
                continue;
            };
            let Some(current) = lookup(doc, path).and_then(Json::num) else {
                self.fail(format!("gated field `{path}` absent from the artifact"));
                continue;
            };
            if current < accepted * 0.85 {
                self.fail(format!(
                    "`{path}` regressed > 15%: {current} vs accepted baseline {accepted} \
                     (re-accept an intentional change with `bench_check --accept`)"
                ));
            }
        }
    }

    /// `throughput_qps <= offered_qps` on one sweep point, with a hair
    /// of float slack.
    fn throughput_invariant(&mut self, point: &Json, label: &str) {
        let offered = self.finite(point, "offered_qps");
        let tput = self.finite(point, "throughput_qps");
        if let (Some(offered), Some(tput)) = (offered, tput) {
            if tput > offered * 1.0001 {
                self.fail(format!(
                    "{label}: throughput {tput} q/s exceeds offered {offered} q/s"
                ));
            }
        }
    }
}

fn check_serving(c: &mut Check, doc: &Json) {
    for key in ["bench", "smoke", "queries", "rows", "fault_run"] {
        c.require(doc, key);
    }
    if let Some(points) = c.require(doc, "load_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`load_sweep` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            c.throughput_invariant(p, &format!("load_sweep[{i}]"));
            for key in ["load", "service_rate_qps", "p50_ms", "p99_ms"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(knee) = c.require(doc, "knee") {
        for key in [
            "p99_light_ms",
            "p99_heavy_ms",
            "p99_ratio",
            "heavy_offered_qps",
            "heavy_throughput_qps",
            "heavy_service_rate_qps",
        ] {
            c.finite(knee, key);
        }
    }
    if let Some(points) = c.require(doc, "channel_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`channel_sweep` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            c.throughput_invariant(p, &format!("channel_sweep[{i}]"));
            for key in ["channels", "units", "service_rate_qps"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(mult) = c.finite(doc, "knee_2ch_multiple") {
        if mult < 1.7 {
            c.fail(format!(
                "2-channel knee moved only {mult}x the single-channel plateau (< 1.7x)"
            ));
        }
    }
    c.finite(doc, "knee_4ch_multiple");
    if let Some(points) = c.require(doc, "fusion_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`fusion_sweep` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            c.throughput_invariant(p, &format!("fusion_sweep[{i}]"));
            for key in ["fuse_window", "service_rate_qps"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(mult) = c.finite(doc, "fused_knee_multiple") {
        if mult < 1.3 {
            c.fail(format!(
                "fused knee moved only {mult}x the unfused plateau (< 1.3x)"
            ));
        }
    }
}

fn check_engine(c: &mut Check, doc: &Json) {
    for key in ["bench", "smoke", "queries", "rows"] {
        c.require(doc, key);
    }
    if let Some(points) = c.require(doc, "scenarios").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`scenarios` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            let name = p
                .get("name")
                .and_then(Json::str)
                .map_or_else(|| format!("scenarios[{i}]"), str::to_string);
            for key in [
                "queries",
                "completed",
                "shed",
                "events",
                "sim_makespan_ms",
                "sim_service_rate_qps",
                "wall_ms",
                "events_per_sec",
                "queries_per_sec",
            ] {
                if let Some(n) = c.finite(p, key) {
                    // Wall-clock rates vary by machine but can never be
                    // zero or negative on a run that processed events.
                    if matches!(key, "wall_ms" | "events_per_sec" | "queries_per_sec") && n <= 0.0 {
                        c.fail(format!("{name}: `{key}` is not positive: {n}"));
                    }
                }
            }
        }
    }
    if let Some(cont) = c.require(doc, "contention") {
        let window = c.finite(cont, "fuse_window");
        if window.is_some_and(|w| w < 2.0) {
            c.fail("contention run fused with a window < 2".into());
        }
        let unfused = c.finite(cont, "unfused_qps");
        let fused = c.finite(cont, "fused_qps");
        if let (Some(unfused), Some(fused)) = (unfused, fused) {
            if fused < unfused {
                c.fail(format!(
                    "fused service rate {fused} q/s fell below unfused {unfused} q/s"
                ));
            }
        }
        c.finite(cont, "fused_multiple");
    }
    if let Some(batching) = c.require(doc, "batching") {
        let batched = c.finite(batching, "batched_events");
        let unbatched = c.finite(batching, "unbatched_events");
        if let (Some(batched), Some(unbatched)) = (batched, unbatched) {
            if batched > unbatched {
                c.fail(format!(
                    "batched admission processed {batched} events vs {unbatched} one-at-a-time"
                ));
            }
        }
    }
}

fn check_scaling(c: &mut Check, doc: &Json) {
    for key in ["bench", "smoke", "rows"] {
        c.require(doc, key);
    }
    c.finite(doc, "cpu_baseline_ms");
    if let Some(points) = c.require(doc, "scaling").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`scaling` is empty".into());
        }
        for p in points {
            for key in ["ranks", "time_ms", "speedup_vs_1", "speedup_vs_cpu"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(fault) = c.require(doc, "fault_run") {
        for key in [
            "ranks",
            "end_ms",
            "rank0_cpu_pages",
            "stall_passes",
            "stalled_bursts",
        ] {
            c.finite(fault, key);
        }
    }
}

fn check_cluster(c: &mut Check, doc: &Json) {
    for key in ["bench", "smoke", "queries", "rows"] {
        c.require(doc, key);
    }
    if let Some(points) = c.require(doc, "node_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`node_sweep` is empty".into());
        }
        for p in points {
            for key in [
                "nodes",
                "replication",
                "service_rate_qps",
                "p50_ms",
                "p99_ms",
                "completed",
                "shed",
                "net_bytes",
                "net_messages",
            ] {
                c.finite(p, key);
            }
        }
    }
    if let Some(mult) = c.finite(doc, "knee_2node_multiple") {
        if mult < 1.6 {
            c.fail(format!(
                "2-node knee moved only {mult}x the single node (< 1.6x) under replica-local routing"
            ));
        }
    }
    c.finite(doc, "knee_4node_multiple");
    if let Some(points) = c.require(doc, "route_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`route_sweep` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            if p.get("route").and_then(Json::str).is_none() {
                c.fail(format!("route_sweep[{i}]: missing `route` name"));
            }
            for key in [
                "service_rate_qps",
                "remote_ndp",
                "remote_cpu",
                "local_pull",
                "shed",
            ] {
                c.finite(p, key);
            }
        }
    }
    if let Some(outage) = c.require(doc, "outage") {
        let queries = c.finite(outage, "queries");
        let completed = c.finite(outage, "completed");
        let shed = c.finite(outage, "shed");
        if let (Some(q), Some(done), Some(shed)) = (queries, completed, shed) {
            if done + shed < q {
                c.fail(format!(
                    "outage run lost queries: {done} completed + {shed} shed of {q}"
                ));
            }
        }
        c.finite(outage, "remote_cpu");
        if outage.get("identity_vs_solo") != Some(&Json::Bool(true)) {
            c.fail("outage run's results were not byte-identical to the solo run".into());
        }
    }
    if let Some(pull) = c.require(doc, "pull") {
        let pulls = c.finite(pull, "pulls");
        let messages = c.finite(pull, "store_messages");
        if let (Some(pulls), Some(messages)) = (pulls, messages) {
            if pulls >= 1.0 && messages != pulls {
                c.fail(format!(
                    "page-store ledger billed {messages} transfers for {pulls} pulls"
                ));
            }
        }
        c.finite(pull, "store_bytes");
        c.finite(pull, "completed");
    }
}

fn check_join(c: &mut Check, doc: &Json) {
    for key in [
        "bench",
        "smoke",
        "queries",
        "rows",
        "key_domain",
        "zipf_theta",
    ] {
        c.require(doc, key);
    }
    if let Some(mix) = c.require(doc, "mix") {
        for key in [
            "queries",
            "semi_joins",
            "group_bys",
            "completed",
            "shed",
            "service_rate_qps",
            "p50_ms",
            "p99_ms",
        ] {
            c.finite(mix, key);
        }
        let queries = c.finite(mix, "queries");
        let completed = c.finite(mix, "completed");
        let shed = c.finite(mix, "shed");
        if let (Some(q), Some(done), Some(shed)) = (queries, completed, shed) {
            if done + shed < q {
                c.fail(format!(
                    "mix lost queries: {done} completed + {shed} shed of {q}"
                ));
            }
        }
        for key in ["semi_joins", "group_bys"] {
            if c.finite(mix, key).is_some_and(|n| n < 1.0) {
                c.fail(format!("mix served no `{key}` — not a Q3/Q13-shaped mix"));
            }
        }
    }
    if let Some(skew) = c.require(doc, "skew") {
        for key in [
            "queries",
            "naive_qps",
            "split_qps",
            "naive_makespan_ms",
            "split_makespan_ms",
        ] {
            c.finite(skew, key);
        }
        if let Some(mult) = c.finite(skew, "split_multiple") {
            if mult < 1.3 {
                c.fail(format!(
                    "skew-aware split sustained only {mult}x the naive-hash service \
                     rate on the Zipf(1.0) burst (< 1.3x)"
                ));
            }
        }
        if skew.get("identity") != Some(&Json::Bool(true)) {
            c.fail("skew-split group rows were not byte-identical to naive hash".into());
        }
    }
}

fn main() {
    let accept = std::env::args().any(|a| a == "--accept");
    let explicit: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--accept")
        .collect();
    let defaults = [
        "BENCH_serving.json",
        "BENCH_scaling.json",
        "BENCH_engine.json",
        "BENCH_cluster.json",
        "BENCH_join.json",
    ];
    let files: Vec<(String, bool)> = if explicit.is_empty() {
        defaults.iter().map(|f| (f.to_string(), false)).collect()
    } else {
        explicit.into_iter().map(|f| (f, true)).collect()
    };

    let mut errors: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for (file, required) in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                if *required {
                    errors.push(format!("{file}: unreadable: {e}"));
                } else {
                    println!("# {file}: absent, skipped");
                }
                continue;
            }
        };
        let mut c = Check::new(file);
        match Json::parse(&text) {
            Err(e) => c.fail(format!("invalid JSON: {e}")),
            Ok(mut doc) => {
                let tag = doc
                    .get("bench")
                    .and_then(Json::str)
                    .map(str::to_string)
                    .unwrap_or_default();
                match tag.as_str() {
                    "fig_serving" => check_serving(&mut c, &doc),
                    "fig_scaling" => check_scaling(&mut c, &doc),
                    "fig_engine" => check_engine(&mut c, &doc),
                    "fig_cluster" => check_cluster(&mut c, &doc),
                    "fig_join" => check_join(&mut c, &doc),
                    other => c.fail(format!("unknown `bench` tag: {other:?}")),
                }
                let gated = gated_fields(&tag);
                if accept {
                    // Re-accept: the current gated values become the
                    // committed baseline for this artifact's mode
                    // (schema violations still fail — a broken artifact
                    // cannot become the trajectory).
                    if !gated.is_empty() && c.errors.is_empty() {
                        let fields: Vec<(String, Json)> = gated
                            .iter()
                            .filter_map(|&path| {
                                lookup(&doc, path)
                                    .and_then(Json::num)
                                    .map(|n| (path.to_string(), Json::Num(n)))
                            })
                            .collect();
                        let mode = baseline_mode(&doc);
                        let mut baseline = doc
                            .get("baseline")
                            .filter(|b| matches!(b, Json::Obj(_)))
                            .cloned()
                            .unwrap_or(Json::Obj(Vec::new()));
                        baseline.set(mode, Json::Obj(fields));
                        doc.set("baseline", baseline);
                        match std::fs::write(file, doc.render()) {
                            Ok(()) => println!("# {file}: `{mode}` baseline accepted"),
                            Err(e) => c.fail(format!("cannot rewrite: {e}")),
                        }
                    }
                } else {
                    c.baseline_gate(&doc, gated);
                }
            }
        }
        checked += 1;
        if c.errors.is_empty() {
            println!("# {file}: ok");
        }
        errors.extend(c.errors);
    }

    if checked == 0 && errors.is_empty() {
        errors.push("no BENCH_*.json artifacts found to check".into());
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("bench_check: {e}");
        }
        std::process::exit(1);
    }
    println!("# bench_check: {checked} artifact(s) pass");
}
