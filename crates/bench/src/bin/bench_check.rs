//! Schema check over the `BENCH_*.json` perf artifacts — the CI gate
//! that keeps the persisted trajectory honest.
//!
//! For every artifact present (or explicitly listed on the command
//! line) this verifies:
//!
//! - the expected top-level keys exist;
//! - every knee/summary field that feeds a plot is a finite number (a
//!   `null` from an empty percentile would silently flatline a curve);
//! - the throughput accounting invariant: `throughput_qps <=
//!   offered_qps` on every sweep point — goodput over the arrival
//!   window can never exceed the offered load, the exact identity whose
//!   violation motivated the serving-report accounting fix;
//! - the channel sweep's knee multiples are present and the 2-channel
//!   plateau moved by at least 1.7× the single-channel one;
//! - the fusion sweep's knee multiple: the fused plateau sits at ≥ 1.3×
//!   the unfused one on the saturated same-column stream;
//! - the engine artifact's deterministic invariants: fused service rate
//!   at least the unfused rate on the contention burst, and batched
//!   admission processing no more events than one-at-a-time draining
//!   (wall-clock throughput fields are checked for finiteness only —
//!   they are machine-dependent).
//!
//! Usage: `bench_check [FILE...]` — defaults to `BENCH_serving.json`,
//! `BENCH_scaling.json` and `BENCH_engine.json` in the working
//! directory, skipping missing defaults but failing on missing explicit
//! arguments. Exits non-zero with one line per violation.

use jafar_bench::json::Json;

/// Accumulates violations instead of bailing at the first, so one CI
/// run reports everything wrong with an artifact.
struct Check {
    file: String,
    errors: Vec<String>,
}

impl Check {
    fn new(file: &str) -> Check {
        Check {
            file: file.to_string(),
            errors: Vec::new(),
        }
    }

    fn fail(&mut self, msg: String) {
        self.errors.push(format!("{}: {msg}", self.file));
    }

    fn require<'a>(&mut self, v: &'a Json, key: &str) -> Option<&'a Json> {
        let found = v.get(key);
        if found.is_none() {
            self.fail(format!("missing key `{key}`"));
        }
        found
    }

    fn finite(&mut self, v: &Json, key: &str) -> Option<f64> {
        match self.require(v, key).and_then(Json::num) {
            Some(n) if n.is_finite() => Some(n),
            Some(n) => {
                self.fail(format!("`{key}` is not finite: {n}"));
                None
            }
            None => {
                self.fail(format!("`{key}` is not a finite number"));
                None
            }
        }
    }

    /// `throughput_qps <= offered_qps` on one sweep point, with a hair
    /// of float slack.
    fn throughput_invariant(&mut self, point: &Json, label: &str) {
        let offered = self.finite(point, "offered_qps");
        let tput = self.finite(point, "throughput_qps");
        if let (Some(offered), Some(tput)) = (offered, tput) {
            if tput > offered * 1.0001 {
                self.fail(format!(
                    "{label}: throughput {tput} q/s exceeds offered {offered} q/s"
                ));
            }
        }
    }
}

fn check_serving(c: &mut Check, doc: &Json) {
    for key in ["bench", "smoke", "queries", "rows", "fault_run"] {
        c.require(doc, key);
    }
    if let Some(points) = c.require(doc, "load_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`load_sweep` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            c.throughput_invariant(p, &format!("load_sweep[{i}]"));
            for key in ["load", "service_rate_qps", "p50_ms", "p99_ms"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(knee) = c.require(doc, "knee") {
        for key in [
            "p99_light_ms",
            "p99_heavy_ms",
            "p99_ratio",
            "heavy_offered_qps",
            "heavy_throughput_qps",
            "heavy_service_rate_qps",
        ] {
            c.finite(knee, key);
        }
    }
    if let Some(points) = c.require(doc, "channel_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`channel_sweep` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            c.throughput_invariant(p, &format!("channel_sweep[{i}]"));
            for key in ["channels", "units", "service_rate_qps"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(mult) = c.finite(doc, "knee_2ch_multiple") {
        if mult < 1.7 {
            c.fail(format!(
                "2-channel knee moved only {mult}x the single-channel plateau (< 1.7x)"
            ));
        }
    }
    c.finite(doc, "knee_4ch_multiple");
    if let Some(points) = c.require(doc, "fusion_sweep").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`fusion_sweep` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            c.throughput_invariant(p, &format!("fusion_sweep[{i}]"));
            for key in ["fuse_window", "service_rate_qps"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(mult) = c.finite(doc, "fused_knee_multiple") {
        if mult < 1.3 {
            c.fail(format!(
                "fused knee moved only {mult}x the unfused plateau (< 1.3x)"
            ));
        }
    }
}

fn check_engine(c: &mut Check, doc: &Json) {
    for key in ["bench", "smoke", "queries", "rows"] {
        c.require(doc, key);
    }
    if let Some(points) = c.require(doc, "scenarios").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`scenarios` is empty".into());
        }
        for (i, p) in points.iter().enumerate() {
            let name = p
                .get("name")
                .and_then(Json::str)
                .map_or_else(|| format!("scenarios[{i}]"), str::to_string);
            for key in [
                "queries",
                "completed",
                "shed",
                "events",
                "sim_makespan_ms",
                "sim_service_rate_qps",
                "wall_ms",
                "events_per_sec",
                "queries_per_sec",
            ] {
                if let Some(n) = c.finite(p, key) {
                    // Wall-clock rates vary by machine but can never be
                    // zero or negative on a run that processed events.
                    if matches!(key, "wall_ms" | "events_per_sec" | "queries_per_sec") && n <= 0.0 {
                        c.fail(format!("{name}: `{key}` is not positive: {n}"));
                    }
                }
            }
        }
    }
    if let Some(cont) = c.require(doc, "contention") {
        let window = c.finite(cont, "fuse_window");
        if window.is_some_and(|w| w < 2.0) {
            c.fail("contention run fused with a window < 2".into());
        }
        let unfused = c.finite(cont, "unfused_qps");
        let fused = c.finite(cont, "fused_qps");
        if let (Some(unfused), Some(fused)) = (unfused, fused) {
            if fused < unfused {
                c.fail(format!(
                    "fused service rate {fused} q/s fell below unfused {unfused} q/s"
                ));
            }
        }
        c.finite(cont, "fused_multiple");
    }
    if let Some(batching) = c.require(doc, "batching") {
        let batched = c.finite(batching, "batched_events");
        let unbatched = c.finite(batching, "unbatched_events");
        if let (Some(batched), Some(unbatched)) = (batched, unbatched) {
            if batched > unbatched {
                c.fail(format!(
                    "batched admission processed {batched} events vs {unbatched} one-at-a-time"
                ));
            }
        }
    }
}

fn check_scaling(c: &mut Check, doc: &Json) {
    for key in ["bench", "smoke", "rows"] {
        c.require(doc, key);
    }
    c.finite(doc, "cpu_baseline_ms");
    if let Some(points) = c.require(doc, "scaling").and_then(Json::arr) {
        if points.is_empty() {
            c.fail("`scaling` is empty".into());
        }
        for p in points {
            for key in ["ranks", "time_ms", "speedup_vs_1", "speedup_vs_cpu"] {
                c.finite(p, key);
            }
        }
    }
    if let Some(fault) = c.require(doc, "fault_run") {
        for key in [
            "ranks",
            "end_ms",
            "rank0_cpu_pages",
            "stall_passes",
            "stalled_bursts",
        ] {
            c.finite(fault, key);
        }
    }
}

fn main() {
    let explicit: Vec<String> = std::env::args().skip(1).collect();
    let defaults = [
        "BENCH_serving.json",
        "BENCH_scaling.json",
        "BENCH_engine.json",
    ];
    let files: Vec<(String, bool)> = if explicit.is_empty() {
        defaults.iter().map(|f| (f.to_string(), false)).collect()
    } else {
        explicit.into_iter().map(|f| (f, true)).collect()
    };

    let mut errors: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for (file, required) in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                if *required {
                    errors.push(format!("{file}: unreadable: {e}"));
                } else {
                    println!("# {file}: absent, skipped");
                }
                continue;
            }
        };
        let mut c = Check::new(file);
        match Json::parse(&text) {
            Err(e) => c.fail(format!("invalid JSON: {e}")),
            Ok(doc) => match doc.get("bench").and_then(Json::str) {
                Some("fig_serving") => check_serving(&mut c, &doc),
                Some("fig_scaling") => check_scaling(&mut c, &doc),
                Some("fig_engine") => check_engine(&mut c, &doc),
                other => c.fail(format!("unknown `bench` tag: {other:?}")),
            },
        }
        checked += 1;
        if c.errors.is_empty() {
            println!("# {file}: ok");
        }
        errors.extend(c.errors);
    }

    if checked == 0 && errors.is_empty() {
        errors.push("no BENCH_*.json artifacts found to check".into());
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("bench_check: {e}");
        }
        std::process::exit(1);
    }
    println!("# bench_check: {checked} artifact(s) pass");
}
