//! Disaggregated serving grid — the cluster-shaped follow-on to
//! `fig_serving`: N memory nodes behind a deterministic fabric, replica
//! routing, and the degradation ladder stretched across tiers.
//!
//! Four experiments over one seeded mixed-operator stream:
//!
//! - **node sweep** — N ∈ {1, 2, 4} fully-replicated nodes under
//!   replica-local routing on a saturating open-loop load: the
//!   saturation knee (service rate over the run's makespan) must scale
//!   ≥ 1.6× from one node to two (the acceptance gate `bench_check`
//!   re-enforces from the persisted artifact), and every per-query
//!   result must be byte-identical both to the functional reference and
//!   across node counts;
//! - **route sweep** — the same 2-node load under round-robin,
//!   least-outstanding and replica-local routing, reporting the tier mix
//!   each policy produces;
//! - **outage run** — node 1 fully dark from tick zero under blind
//!   round-robin: every admitted query still completes (remote NDP on
//!   the healthy node, the node-local CPU rung on the dark one) with
//!   results byte-identical to the solo run, and the disturbance is
//!   confined to node 1's availability ledger;
//! - **pull run** — replication factor 1 with the only holder dark: the
//!   frontend falls back to the ladder's last rung, pulling the column
//!   over the page-store link and scanning it locally; the store link's
//!   ledger must bill exactly one pull per fallen-back query.
//!
//! Usage: `fig_cluster [--rows N] [--queries N] [--csv] [--smoke]`
//!
//! Persists `BENCH_cluster.json` (carrying forward the accepted
//! `baseline` object — see `bench_check --accept`) for the CI gate.

use jafar_bench::{arg, carry_baseline, f2, flag, jnum, print_table, write_bench_json};
use jafar_common::obs::SharedTracer;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_dram::{DramGeometry, FaultPlan};
use jafar_net::Placement;
use jafar_serve::cluster::{ClusterConfig, ClusterQuery, RoutePolicy, Tier};
use jafar_serve::{AggFn, PredicateMix, QueryOp, SchedPolicy, ServeConfig, Workload};
use jafar_sim::{GridServeRun, ServeGrid, SystemConfig};

const FABRIC_SEED: u64 = 0xFAB;
/// Operators cycle with period 3 — coprime to every node count in the
/// sweep, so the round-robin op assignment never correlates with the
/// routed node (a period-4 mix hands one node of a 2- or 4-node grid
/// *all* the expensive projections and fakes a scaling wall).
const OP_MIX: [QueryOp; 3] = [
    QueryOp::Select,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::Project { k: 2 },
];

/// gem5-like node: a 4-rank DIMM per memory node — 3 NDP filter units,
/// the last rank CPU-private — so even the single-node grid schedules a
/// real pool.
fn config() -> SystemConfig {
    let mut cfg = SystemConfig::gem5_like();
    cfg.dram_geometry = DramGeometry {
        ranks: 4,
        banks_per_rank: 8,
        rows_per_bank: 1024,
        row_bytes: 8 * 1024,
    };
    cfg
}

fn serve_config(queries: usize) -> ServeConfig {
    ServeConfig {
        // The sweep measures the service knee, not admission policy:
        // the queue admits the whole stream so nothing is shed.
        max_queue: queries.max(1),
        ..ServeConfig::default()
    }
}

fn workload(queries: usize, seed: u64) -> Workload {
    let mix = PredicateMix::UniformRange {
        min: 0,
        max: 999,
        width: 300,
    };
    // A 200 ns mean gap keeps even the 4-node grid service-bound: the
    // knee measures capacity, not the arrival window.
    Workload::poisson(mix, queries, Tick::from_ns(200), seed).with_op_mix(&OP_MIX)
}

/// One grid run from a fresh machine (node arenas are single-shot).
#[allow(clippy::too_many_arguments)]
fn run(
    values: &[i64],
    nodes: usize,
    placement: &Placement,
    route: RoutePolicy,
    queries: usize,
    seed: u64,
    dark_node: Option<usize>,
) -> GridServeRun {
    let mut grid = ServeGrid::new(config(), nodes, SharedTracer::disabled());
    if let Some(node) = dark_node {
        // Every NDP unit of the node dark for the whole run: the node's
        // engine can only answer on its host-CPU rung.
        let mut plan = FaultPlan::none(7);
        for unit in 0..grid.units_per_node() as u32 {
            plan = plan.with_outage(unit, Tick::ZERO, Tick::MAX);
        }
        grid.inject_faults_on_node(node, plan);
    }
    let mut fabric = grid.fabric(FABRIC_SEED);
    grid.serve(
        values,
        placement,
        &mut fabric,
        &workload(queries, seed),
        SchedPolicy::Fifo,
        &serve_config(queries),
        &ClusterConfig {
            route,
            ..ClusterConfig::default()
        },
    )
}

/// Every completed record checked against the functional reference —
/// the per-node byte-identity contract, operator by operator.
fn assert_byte_identity(values: &[i64], queries: &[ClusterQuery], label: &str) {
    for q in queries {
        if q.tier == Tier::Shed {
            continue;
        }
        let rec = &q.record;
        let matching: Vec<i64> = values
            .iter()
            .copied()
            .filter(|v| (rec.lo..=rec.hi).contains(v))
            .collect();
        let mut bytes = vec![0u8; values.len().div_ceil(8)];
        for (i, v) in values.iter().enumerate() {
            if (rec.lo..=rec.hi).contains(v) {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        assert_eq!(
            rec.matched,
            matching.len() as u64,
            "{label}: q{} matched",
            rec.id
        );
        match rec.op {
            QueryOp::Select => assert_eq!(rec.bitset, bytes, "{label}: q{} bitset", rec.id),
            QueryOp::SelectCount => {
                assert_eq!(
                    rec.agg,
                    Some(matching.len() as i64),
                    "{label}: q{} count",
                    rec.id
                );
            }
            QueryOp::SelectAgg(AggFn::Sum) => {
                let sum = matching.iter().copied().reduce(|a, b| a.wrapping_add(b));
                assert_eq!(rec.agg, sum, "{label}: q{} sum", rec.id);
            }
            QueryOp::Project { .. } => {
                assert_eq!(rec.bitset, bytes, "{label}: q{} project bitset", rec.id);
                assert_eq!(rec.projected, matching, "{label}: q{} projection", rec.id);
            }
            other => panic!("{label}: unexpected operator {other:?}"),
        }
    }
}

/// Result payloads (not timings — those legitimately differ when the
/// load splits across nodes) of two runs over the same stream.
fn results_identical(a: &[ClusterQuery], b: &[ClusterQuery]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            let (rx, ry) = (&x.record, &y.record);
            rx.id == ry.id
                && rx.matched == ry.matched
                && rx.bitset == ry.bitset
                && rx.agg == ry.agg
                && rx.projected == ry.projected
        })
}

fn tier_counts(run: &GridServeRun) -> (usize, usize, usize, usize) {
    let r = &run.report;
    (
        r.tier_count(Tier::RemoteNdp),
        r.tier_count(Tier::RemoteCpu),
        r.tier_count(Tier::LocalPull),
        r.tier_count(Tier::Shed),
    )
}

fn ms(t: Option<Tick>) -> f64 {
    t.map_or(f64::NAN, |t| t.as_ms_f64())
}

fn main() {
    let smoke = flag("--smoke");
    let rows: usize = arg("--rows", if smoke { 4096 } else { 32_768 });
    let queries: usize = arg("--queries", if smoke { 24 } else { 96 });
    let csv = flag("--csv");
    let seed = 0xC1B5;

    println!("# Disaggregated serving grid: node-count x replication sweep");
    println!(
        "# workload: {queries} mixed-operator queries over {rows} rows, open-loop, 200 ns mean gap"
    );
    let cfg = config();
    println!(
        "# node: {} / {} (3 NDP units per node)",
        cfg.name,
        cfg.dram_geometry.describe()
    );
    println!();

    let mut rng = SplitMix64::new(0x5EED);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();

    // --- Node sweep: N fully-replicated nodes, replica-local routing ---
    let mut sweep: Vec<(usize, GridServeRun)> = Vec::new();
    for nodes in [1usize, 2, 4] {
        let run = run(
            &values,
            nodes,
            &Placement::hot(nodes),
            RoutePolicy::ReplicaLocal,
            queries,
            seed,
            None,
        );
        assert_eq!(
            run.report.completed(),
            queries,
            "{nodes} nodes: all complete"
        );
        assert_byte_identity(&values, &run.report.queries, &format!("{nodes}-node sweep"));
        sweep.push((nodes, run));
    }
    let rate = |i: usize| sweep[i].1.report.service_rate_qps();
    let knee2 = rate(1) / rate(0);
    let knee4 = rate(2) / rate(0);
    assert!(
        knee2 >= 1.6,
        "2-node knee moved only {knee2:.2}x the single node (< 1.6x)"
    );
    assert!(
        results_identical(&sweep[0].1.report.queries, &sweep[1].1.report.queries)
            && results_identical(&sweep[0].1.report.queries, &sweep[2].1.report.queries),
        "per-query results must not depend on the node count"
    );

    if csv {
        println!("nodes,replication,service_rate_qps,p50_ms,p99_ms,net_kib,msgs");
    }
    let mut rows_out: Vec<Vec<String>> = Vec::new();
    for (nodes, run) in &sweep {
        let r = &run.report;
        if csv {
            println!(
                "{nodes},{},{:.0},{:.3},{:.3},{:.1},{}",
                r.replication,
                r.service_rate_qps(),
                ms(r.p50()),
                ms(r.p99()),
                r.net_bytes as f64 / 1024.0,
                r.net_messages
            );
        }
        rows_out.push(vec![
            format!("{nodes}"),
            format!("{}", r.replication),
            format!("{:.0}", r.service_rate_qps()),
            f2(ms(r.p50())),
            f2(ms(r.p99())),
            f2(r.net_bytes as f64 / 1024.0),
            format!("{}", r.net_messages),
        ]);
    }
    if !csv {
        print_table(
            &[
                "nodes",
                "rf",
                "rate (q/s)",
                "p50 (ms)",
                "p99 (ms)",
                "net (KiB)",
                "msgs",
            ],
            &rows_out,
        );
        println!();
        println!(
            "# knee: 2 nodes = {knee2:.2}x the single node (gate >= 1.6x), 4 nodes = {knee4:.2}x"
        );
        println!();
    }

    // --- Route sweep: the same 2-node load under each routing policy ---
    let mut routes: Vec<(RoutePolicy, GridServeRun)> = Vec::new();
    for route in [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastOutstanding,
        RoutePolicy::ReplicaLocal,
    ] {
        let run = run(&values, 2, &Placement::hot(2), route, queries, seed, None);
        assert_eq!(run.report.completed(), queries, "{route:?}: all complete");
        assert_byte_identity(&values, &run.report.queries, "route sweep");
        routes.push((route, run));
    }
    if !csv {
        let rows_out: Vec<Vec<String>> = routes
            .iter()
            .map(|(route, run)| {
                let (ndp, cpu, pull, shed) = tier_counts(run);
                vec![
                    route.name().to_string(),
                    format!("{:.0}", run.report.service_rate_qps()),
                    format!("{ndp}"),
                    format!("{cpu}"),
                    format!("{pull}"),
                    format!("{shed}"),
                ]
            })
            .collect();
        print_table(
            &[
                "route (2 nodes)",
                "rate (q/s)",
                "ndp",
                "node-cpu",
                "pull",
                "shed",
            ],
            &rows_out,
        );
        println!();
    }

    // --- Outage run: node 1 fully dark, blind round-robin keeps
    // routing to it — the ladder answers everything anyway ---
    let outage = run(
        &values,
        2,
        &Placement::hot(2),
        RoutePolicy::RoundRobin,
        queries,
        seed,
        Some(1),
    );
    assert_eq!(
        outage.report.completed(),
        queries,
        "outage: every admitted query completes"
    );
    assert_byte_identity(&values, &outage.report.queries, "outage");
    let identity_vs_solo = results_identical(&outage.report.queries, &sweep[0].1.report.queries);
    assert!(identity_vs_solo, "outage results must match the solo run");
    assert!(
        outage.report.nodes[1].availability.disturbed(),
        "outage: node 1's ledger records the quarantine"
    );
    assert!(
        !outage.report.nodes[0].availability.disturbed(),
        "outage: node 0 is untouched"
    );
    let (o_ndp, o_cpu, o_pull, o_shed) = tier_counts(&outage);
    assert!(o_cpu >= 1, "outage: the dark node answers on its CPU rung");
    println!(
        "# outage (node 1 dark, round-robin): {queries}/{queries} complete — {o_ndp} remote-ndp, \
         {o_cpu} node-cpu, {o_pull} pulls, {o_shed} shed; results identical to the solo run,"
    );
    println!("#   disturbance confined to node 1's availability ledger.");

    // --- Pull run: replication factor 1, the only holder dark — the
    // frontend's pull-and-scan rung is the last resort ---
    let pull = run(
        &values,
        2,
        &Placement::cold(2, 1),
        RoutePolicy::ReplicaLocal,
        queries,
        seed,
        Some(0),
    );
    assert_eq!(pull.report.completed(), queries, "pull run: all complete");
    assert_byte_identity(&values, &pull.report.queries, "pull run");
    let (p_ndp, p_cpu, p_pulls, _) = tier_counts(&pull);
    assert!(p_pulls >= 1, "quarantined holder forces frontend pulls");
    assert_eq!(
        pull.report.store_link.messages, p_pulls as u64,
        "one page-store transfer per pull"
    );
    println!(
        "# rf=1 pull run (holder dark): {p_pulls} frontend pulls ({} KiB over the page-store \
         link), {p_ndp} ndp + {p_cpu} node-cpu before quarantine.",
        pull.report.store_link.bytes / 1024
    );

    // --- Persist the artifact, carrying the accepted baseline ---
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(nodes, run)| {
            let r = &run.report;
            format!(
                "    {{\"nodes\": {nodes}, \"replication\": {}, \"service_rate_qps\": {}, \
                 \"p50_ms\": {}, \"p99_ms\": {}, \"completed\": {}, \"shed\": {}, \
                 \"net_bytes\": {}, \"net_messages\": {}}}",
                r.replication,
                jnum(r.service_rate_qps()),
                jnum(ms(r.p50())),
                jnum(ms(r.p99())),
                r.completed(),
                r.shed(),
                r.net_bytes,
                r.net_messages,
            )
        })
        .collect();
    let routes_json: Vec<String> = routes
        .iter()
        .map(|(route, run)| {
            let (ndp, cpu, pull, shed) = tier_counts(run);
            format!(
                "    {{\"route\": \"{}\", \"service_rate_qps\": {}, \"remote_ndp\": {ndp}, \
                 \"remote_cpu\": {cpu}, \"local_pull\": {pull}, \"shed\": {shed}}}",
                route.name(),
                jnum(run.report.service_rate_qps()),
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"fig_cluster\",\n  \"smoke\": {smoke},\n  \"rows\": {rows},\n  \
         \"queries\": {queries},\n  \"node_sweep\": [\n{}\n  ],\n  \
         \"knee_2node_multiple\": {},\n  \"knee_4node_multiple\": {},\n  \
         \"route_sweep\": [\n{}\n  ],\n  \
         \"outage\": {{\"nodes\": 2, \"queries\": {queries}, \"completed\": {}, \"shed\": {o_shed}, \
         \"remote_ndp\": {o_ndp}, \"remote_cpu\": {o_cpu}, \"local_pull\": {o_pull}, \
         \"identity_vs_solo\": {identity_vs_solo}, \"confined_to_node\": 1}},\n  \
         \"pull\": {{\"replication\": 1, \"pulls\": {p_pulls}, \"store_bytes\": {}, \
         \"store_messages\": {}, \"completed\": {}}},\n  \
         \"baseline\": {}\n}}\n",
        sweep_json.join(",\n"),
        jnum(knee2),
        jnum(knee4),
        routes_json.join(",\n"),
        outage.report.completed(),
        pull.report.store_link.bytes,
        pull.report.store_link.messages,
        pull.report.completed(),
        carry_baseline("BENCH_cluster.json"),
    );
    write_bench_json("BENCH_cluster.json", &body);
}
