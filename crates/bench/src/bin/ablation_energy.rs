//! Ablation A6 — end-to-end energy of the two select paths.
//!
//! The data-movement argument in joules: for the Figure-3 workload,
//! compare the CPU-only select's energy (active core cycles + full
//! off-chip transfer energy per burst) against the pushdown's (the
//! device's Aladdin-modelled datapath energy + on-DIMM access energy +
//! host spin-wait), under both completion mechanisms.
//!
//! Usage: `ablation_energy [--rows N]`

use jafar_bench::{arg, f1, f2, print_table};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_core::CompletionMode;
use jafar_cpu::ScanVariant;
use jafar_sim::{HostEnergyModel, SelectEnergy, System, SystemConfig};

fn main() {
    let rows: u64 = arg("--rows", 2_000_000);
    println!("# Ablation A6: select energy, CPU vs JAFAR pushdown");
    println!("# workload: {rows} rows, 50% selectivity, gem5-like host");
    println!();

    let mut rng = SplitMix64::new(0xA6);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    let model = HostEnergyModel::default();

    // CPU path.
    let mut sys = System::new(SystemConfig::gem5_like());
    let col = sys.write_column(&values);
    sys.begin_measurement();
    let cpu = sys
        .run_select_cpu(col, rows, 0, 499, ScanVariant::Branching, Tick::ZERO)
        .expect("column placed in range");
    let bus_bursts = sys.mc().counters().reads.get() + sys.mc().counters().writes.get();
    let clock = sys.config().cpu_clock;
    let e_cpu = SelectEnergy::cpu_path(&cpu, bus_bursts, clock, &model);

    // JAFAR path under both completion mechanisms.
    let run_jafar = |completion| {
        let mut cfg = SystemConfig::gem5_like();
        cfg.driver.completion = completion;
        let mut sys = System::new(cfg);
        let col = sys.write_column(&values);
        let resources = sys.config().device.expect("device").resources;
        let jf = sys.run_select_jafar(col, rows, 0, 499, Tick::ZERO);
        let e = SelectEnergy::jafar_path(&jf, rows, &resources, clock, &model);
        (jf, e)
    };
    let (jf_poll, e_poll) = run_jafar(CompletionMode::Polling {
        gap: Tick::from_ns(100),
    });
    let (jf_irq, e_irq) = run_jafar(CompletionMode::Interrupt {
        latency: Tick::from_us(2),
    });
    assert_eq!(cpu.matches, jf_poll.matched);

    let row = |name: &str, e: &SelectEnergy, t_ms: f64| {
        vec![
            name.to_owned(),
            f2(t_ms),
            f1(e.cpu_pj / 1e6),
            f1(e.device_pj / 1e6),
            f1(e.memory_pj / 1e6),
            f1(e.total_pj() / 1e6),
        ]
    };
    print_table(
        &[
            "path",
            "time (ms)",
            "CPU (uJ)",
            "device (uJ)",
            "memory (uJ)",
            "total (uJ)",
        ],
        &[
            row("CPU only", &e_cpu, cpu.end.as_ms_f64()),
            row("JAFAR + polling", &e_poll, jf_poll.end.as_ms_f64()),
            row("JAFAR + interrupt", &e_irq, jf_irq.end.as_ms_f64()),
        ],
    );
    println!();
    println!(
        "# energy ratio CPU/JAFAR(poll) = {:.1}x; CPU/JAFAR(irq) = {:.1}x",
        e_cpu.total_pj() / e_poll.total_pj(),
        e_cpu.total_pj() / e_irq.total_pj()
    );
    println!("# expectation: the pushdown wins on both terms — no core cycles spent");
    println!("# filtering, and on-DIMM accesses avoid the off-chip transfer energy;");
    println!("# interrupts trade a little latency for the spin-wait energy.");
}
