//! Ablation A1 — the §3.2 predication discussion.
//!
//! "Here we do not use predication for the software that run the selects
//! in the CPU. Thus, JAFAR would materialize even bigger benefits for
//! lower selectivity against a database system that uses predication for
//! robustness, because while predication leads to more stable and better
//! performance on average, for lower selectivity it has adverse impact.
//! Essentially, JAFAR implements predication at the hardware level at
//! zero cost."
//!
//! This binary runs the Figure-3 sweep with all three CPU select kernels —
//! branching (the paper's baseline), predicated, and vectorized — and
//! reports JAFAR's speedup against each.
//!
//! Usage: `ablation_predication [--rows N] [--points P]`

use jafar_bench::{arg, f2, print_table};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_cpu::ScanVariant;
use jafar_sim::{System, SystemConfig};

fn main() {
    let rows: u64 = arg("--rows", 2_000_000);
    let points: u64 = arg("--points", 5);
    let value_range = 1_000_000i64;

    println!("# Ablation A1: CPU select kernel variants vs JAFAR");
    println!("# workload: {rows} rows, uniform integers in [0, {value_range})");
    println!();

    let mut rng = SplitMix64::new(0xAB1);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, value_range - 1))
        .collect();

    let variants = [
        ("branching", ScanVariant::Branching),
        ("predicated", ScanVariant::Predicated),
        ("vectorized", ScanVariant::Vectorized { lanes: 4 }),
    ];

    let mut out_rows: Vec<Vec<String>> = Vec::new();
    for p in 0..=points {
        let target = p as f64 / points as f64;
        let hi = (target * value_range as f64) as i64 - 1;

        let mut sys_jf = System::new(SystemConfig::gem5_like());
        let col = sys_jf.write_column(&values);
        let jf = sys_jf.run_select_jafar(col, rows, 0, hi, Tick::ZERO);
        let jf_ms = jf.end.as_ms_f64();

        let mut row = vec![format!("{:.0}%", target * 100.0), f2(jf_ms)];
        for (_, variant) in variants {
            let mut sys = System::new(SystemConfig::gem5_like());
            let col = sys.write_column(&values);
            let cpu = sys
                .run_select_cpu(col, rows, 0, hi, variant, Tick::ZERO)
                .expect("column placed in range");
            let ms = cpu.end.as_ms_f64();
            row.push(f2(ms));
            row.push(f2(ms / jf_ms));
        }
        out_rows.push(row);
    }

    print_table(
        &[
            "selectivity",
            "JAFAR (ms)",
            "branch (ms)",
            "speedup",
            "pred (ms)",
            "speedup",
            "vec (ms)",
            "speedup",
        ],
        &out_rows,
    );
    println!();
    println!("# expectations (3.2): predicated is flat across selectivity and slower than");
    println!("# branching at low selectivity (its 'adverse impact'), so JAFAR's win over a");
    println!("# predicated engine is larger at low selectivity; vectorization narrows the");
    println!("# gap but JAFAR still avoids moving the column entirely.");
}
