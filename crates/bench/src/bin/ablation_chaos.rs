//! Chaos ablation — serving availability under escalating fault regimes.
//!
//! The chaos property suite (`tests/chaos.rs`) proves the invariants on
//! randomized schedules; this bench makes the *cost* of surviving them
//! visible. It serves the same seeded multi-operator workload under a
//! grid of fault scenarios × scheduling policies and reports, per cell,
//! what the failure-domain machinery did (migrations, requeues, canary
//! probes, per-rank downtime) and what it cost the tenant (p99 latency,
//! throughput, sheds). Every cell re-asserts the correctness invariants
//! in-process: every admitted query completes bit-identical to the
//! fault-free functional reference or is explicitly shed, and a chaotic
//! cell replays byte-identically from its seed.
//!
//! Scenarios, in escalating order:
//!
//! - `clean`        — no faults: the baseline row (zero downtime).
//! - `light`        — sparse transient flips/stalls, recoverable in-ladder.
//! - `chaos`        — dense transient soup: retries, breakers, CPU rungs.
//! - `outage-heal`  — rank 1 dark from t=0, repairs at 120 µs: park →
//!   rescue → quarantine → canary → return to pool.
//! - `outage-dark`  — rank 0 permanently dark: its work migrates and the
//!   pool shrinks for the whole run (canaries keep failing).
//! - `outage+chaos` — a mid-run repairing outage on top of the dense
//!   transient soup.
//!
//! Usage: `ablation_chaos [--queries N] [--rows N] [--csv] [--smoke]`

use jafar_bench::{arg, f1, f2, flag, print_table};
use jafar_common::bitset::BitSet;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_dram::{DramGeometry, FaultPlan};
use jafar_serve::engine::ServeConfig;
use jafar_serve::{AggFn, ExecMode, PredicateMix, QueryOp, SchedPolicy, ServeReport, Workload};
use jafar_sim::{System, SystemConfig};

const SEED: u64 = 0xC4A05;

/// The §4 operator set every scenario cycles through.
const OP_MIX: [QueryOp; 6] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::Project { k: 2 },
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::SelectAgg(AggFn::Max),
];

/// Four DRAM ranks — three NDP ranks plus the host scratch rank — so a
/// single outage removes a third of the schedulable pool.
fn config() -> SystemConfig {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks: 4,
        banks_per_rank: 4,
        rows_per_bank: 64,
        row_bytes: 1024,
    };
    cfg
}

struct Scenario {
    name: &'static str,
    plan: fn(u64) -> FaultPlan,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario {
        name: "clean",
        plan: FaultPlan::none,
    },
    Scenario {
        name: "light",
        plan: FaultPlan::light,
    },
    Scenario {
        name: "chaos",
        plan: FaultPlan::chaos,
    },
    Scenario {
        name: "outage-heal",
        plan: |seed| FaultPlan::none(seed).with_outage(1, Tick::ZERO, Tick::from_us(120)),
    },
    Scenario {
        name: "outage-dark",
        plan: |seed| FaultPlan::none(seed).with_outage(0, Tick::ZERO, Tick::MAX),
    },
    Scenario {
        name: "outage+chaos",
        plan: |seed| FaultPlan::chaos(seed).with_outage(2, Tick::from_us(10), Tick::from_us(150)),
    },
];

fn reference_positions(values: &[i64], lo: i64, hi: i64) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|&(_, &v)| (lo..=hi).contains(&v))
        .map(|(i, _)| i as u32)
        .collect()
}

fn reference_agg(f: AggFn, matching: &[i64]) -> Option<i64> {
    match f {
        AggFn::Sum => matching.iter().copied().reduce(|a, b| a.wrapping_add(b)),
        AggFn::Min => matching.iter().copied().min(),
        AggFn::Max => matching.iter().copied().max(),
    }
}

/// Asserts the chaos invariants on one cell's report: every query done
/// or shed, and every completed result bit-identical to the functional
/// reference whatever rung or rank path served it.
fn check_cell(tag: &str, values: &[i64], n: usize, report: &ServeReport) {
    assert_eq!(
        report.completed() + report.shed(),
        n,
        "{tag}: every query completes or is explicitly shed"
    );
    for rec in &report.records {
        if rec.done.is_none() {
            assert_eq!(rec.mode, ExecMode::Shed, "{tag}: query {} lost", rec.id);
            continue;
        }
        let matching: Vec<i64> = values
            .iter()
            .copied()
            .filter(|v| (rec.lo..=rec.hi).contains(v))
            .collect();
        assert_eq!(
            rec.matched as usize,
            matching.len(),
            "{tag}: query {} match count",
            rec.id
        );
        match rec.op {
            QueryOp::Select | QueryOp::Project { .. } => {
                let got = BitSet::from_bytes(&rec.bitset, values.len()).to_positions();
                assert_eq!(
                    got,
                    reference_positions(values, rec.lo, rec.hi),
                    "{tag}: query {} selection vector",
                    rec.id
                );
                if matches!(rec.op, QueryOp::Project { .. }) {
                    assert_eq!(
                        rec.projected, matching,
                        "{tag}: query {} projection",
                        rec.id
                    );
                }
            }
            QueryOp::SelectCount => {
                assert_eq!(
                    rec.agg,
                    Some(matching.len() as i64),
                    "{tag}: query {} count",
                    rec.id
                );
            }
            QueryOp::SelectAgg(f) => {
                assert_eq!(
                    rec.agg,
                    reference_agg(f, &matching),
                    "{tag}: query {} scalar",
                    rec.id
                );
            }
            QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
                unreachable!("{tag}: the chaos mixes serve no joins or group-bys")
            }
        }
    }
    for r in &report.availability.units {
        assert!(
            r.downtime <= report.makespan,
            "{tag}: rank {} downtime exceeds makespan",
            r.rank
        );
    }
}

fn run_cell(
    values: &[i64],
    workload: &Workload,
    policy: SchedPolicy,
    plan: FaultPlan,
) -> ServeReport {
    let mut sys = System::new(config());
    sys.inject_faults(plan);
    sys.serve(values, workload, policy, &ServeConfig::default())
        .report
}

fn main() {
    let smoke = flag("--smoke");
    let queries: usize = arg("--queries", if smoke { 8 } else { 24 });
    let rows: usize = arg("--rows", if smoke { 1536 } else { 4096 });
    let csv = flag("--csv");

    let mut rng = SplitMix64::new(SEED);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    let workload = Workload::poisson(
        PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 300,
        },
        queries,
        Tick::from_us(30),
        SEED ^ 0x17,
    )
    .with_op_mix(&OP_MIX)
    .with_slo(Tick::from_us(400));

    let cfg = config();
    println!("# Chaos ablation: fault scenario x scheduling policy");
    println!(
        "# workload: {queries} queries over {rows} rows, Poisson 30 us mean gap, 400 us SLO, {} op mix",
        OP_MIX.len()
    );
    println!(
        "# platform: {} / {} (3 NDP ranks + host scratch)",
        cfg.name,
        cfg.dram_geometry.describe()
    );
    println!();

    let policies = [
        ("fifo", SchedPolicy::Fifo),
        ("edf", SchedPolicy::Edf),
        ("affinity", SchedPolicy::RankAffinity),
    ];

    if csv {
        println!(
            "scenario,policy,done,shed,p99_us,tput_qps,migrations,requeues,canary_ok,canary_fail,downtime_us"
        );
    }
    let mut out_rows: Vec<Vec<String>> = Vec::new();
    for sc in &SCENARIOS {
        for (pname, policy) in &policies {
            let tag = format!("{}/{}", sc.name, pname);
            let report = run_cell(&values, &workload, *policy, (sc.plan)(SEED ^ 0x9E));
            check_cell(&tag, &values, queries, &report);

            let a = &report.availability;
            match sc.name {
                "clean" => {
                    assert!(!a.disturbed(), "{tag}: clean run must be undisturbed");
                    assert_eq!(a.total_downtime(), Tick::ZERO, "{tag}: clean downtime");
                }
                "outage-heal" => {
                    assert!(
                        a.units[1].quarantines >= 1,
                        "{tag}: dark rank 1 never quarantined"
                    );
                    assert!(
                        a.units[1].canary_ok >= 1,
                        "{tag}: the repaired rank must heal through a canary"
                    );
                }
                "outage-dark" => {
                    assert!(
                        a.units[0].quarantines >= 1,
                        "{tag}: dark rank 0 never quarantined"
                    );
                    assert_eq!(
                        a.units[0].canary_ok, 0,
                        "{tag}: a canary cannot repair a permanently dark rank"
                    );
                    assert!(
                        a.units[0].canary_fail >= 1,
                        "{tag}: probes against the dark rank must fail"
                    );
                    assert!(a.migrations >= 1, "{tag}: rank 0's work must migrate");
                }
                _ => {}
            }

            let (ok, fail) = a.units.iter().fold((0u64, 0u64), |(o, f), r| {
                (o + r.canary_ok, f + r.canary_fail)
            });
            let p99_us = report.p99().map(|t| t.as_us_f64()).unwrap_or(0.0);
            let down_us = a.total_downtime().as_us_f64();
            if csv {
                println!(
                    "{},{},{},{},{:.2},{:.1},{},{},{ok},{fail},{:.1}",
                    sc.name,
                    pname,
                    report.completed(),
                    report.shed(),
                    p99_us,
                    report.throughput_qps(),
                    a.migrations,
                    a.requeues,
                    down_us
                );
            }
            out_rows.push(vec![
                sc.name.to_string(),
                pname.to_string(),
                format!("{}", report.completed()),
                format!("{}", report.shed()),
                f2(p99_us),
                f1(report.throughput_qps()),
                format!("{}", a.migrations),
                format!("{}", a.requeues),
                format!("{ok}/{fail}"),
                f1(down_us),
            ]);
        }
    }

    if !csv {
        print_table(
            &[
                "scenario",
                "policy",
                "done",
                "shed",
                "p99 (us)",
                "tput (q/s)",
                "migr",
                "requeue",
                "canary ok/fail",
                "downtime (us)",
            ],
            &out_rows,
        );
        println!();
    }

    // Replay determinism on the nastiest cell: the same seed must
    // reproduce the entire report byte-for-byte.
    let plan = (SCENARIOS[5].plan)(SEED ^ 0x9E);
    let a = run_cell(&values, &workload, SchedPolicy::Edf, plan);
    let b = run_cell(&values, &workload, SchedPolicy::Edf, plan);
    assert_eq!(a, b, "outage+chaos/edf must replay byte-identically");
    println!("# all cells passed the chaos invariants; outage+chaos/edf replays byte-identically.");
}
