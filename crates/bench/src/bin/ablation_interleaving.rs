//! Ablation A2 — §2.2 "Handling Data Interleaving".
//!
//! Two placements of a column in a multi-DIMM system:
//!
//! - **contiguous** (the storage engine shuffles the column so each DIMM
//!   holds a dense slice): each device filters its slice and writes its
//!   own dense bitset region — one write per output burst;
//! - **64-bit interleaved** (hardware interleaving): each device sees
//!   every N-th word and "must only overwrite bits corresponding to rows
//!   it has operated on" — a masked read-modify-write of every shared
//!   output burst.
//!
//! The reproduction runs one device per phase over one module and reports
//! filter time and writeback traffic for both placements, verifying the
//! combined bitsets agree.
//!
//! Usage: `ablation_interleaving [--rows N]`

use jafar_bench::{arg, f2, print_table};
use jafar_common::bitset::BitSet;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_core::interleave::InterleavedSelectJob;
use jafar_core::{grant_ownership, JafarDevice, Predicate, SelectJob};
use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};

fn main() {
    let rows: u64 = arg("--rows", 1_000_000);
    let ways = 2u32;
    println!("# Ablation A2: contiguous vs 64-bit-interleaved column placement ({ways} DIMMs)");
    println!("# workload: {rows} rows, predicate selects ~50%");
    println!();

    let mut rng = SplitMix64::new(0xA2);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    let predicate = Predicate::Lt(500);

    let mut module = DramModule::new(
        DramGeometry::gem5_2gb(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    );
    let lease = grant_ownership(&mut module, 0, Tick::ZERO).expect("fresh module");
    let t0 = lease.acquired_at;

    // Layouts: slices[phase] packed at distinct bases; plus a contiguous
    // copy of the whole column.
    let slice_base = |phase: u32| PhysAddr((phase as u64 * 64) << 20);
    let contig_base = PhysAddr(256 << 20);
    let out_interleaved = PhysAddr(320 << 20);
    let out_contig = PhysAddr(384 << 20);
    for (i, v) in values.iter().enumerate() {
        let phase = (i as u64 % ways as u64) as u32;
        let local = i as u64 / ways as u64;
        module
            .data_mut()
            .write_i64(PhysAddr(slice_base(phase).0 + local * 8), *v);
        module
            .data_mut()
            .write_i64(PhysAddr(contig_base.0 + i as u64 * 8), *v);
    }

    // Interleaved: each phase filters its slice + masked RMW writeback.
    let mut device = JafarDevice::paper_default();
    let mut t = t0;
    let mut rmw_reads = 0;
    let mut writes_inter = 0;
    let inter_start = t;
    for phase in 0..ways {
        let local_rows = rows / ways as u64 + u64::from((rows % ways as u64) > phase as u64);
        let run = device
            .run_select_interleaved(
                &mut module,
                InterleavedSelectJob {
                    local_col_addr: slice_base(phase),
                    local_rows,
                    predicate,
                    out_addr: out_interleaved,
                    ways,
                    phase,
                },
                t,
            )
            .expect("owned rank");
        t = run.end;
        rmw_reads += run.rmw_reads;
        writes_inter += run.bursts_written;
    }
    let inter_time = t - inter_start;

    // Contiguous: one dense filter pass.
    let contig_start = t;
    let run = device
        .run_select(
            &mut module,
            SelectJob {
                col_addr: contig_base,
                rows,
                predicate,
                out_addr: out_contig,
            },
            t,
        )
        .expect("owned rank");
    let contig_time = run.end - contig_start;

    // Functional check: both layouts produce the same global bitset.
    let nbytes = (rows as usize).div_ceil(8);
    let mut a = vec![0u8; nbytes];
    let mut b = vec![0u8; nbytes];
    module.data().read(out_interleaved, &mut a);
    module.data().read(out_contig, &mut b);
    let ba = BitSet::from_bytes(&a, rows as usize);
    let bb = BitSet::from_bytes(&b, rows as usize);
    assert_eq!(ba.count_ones(), bb.count_ones());
    assert_eq!(ba.to_positions(), bb.to_positions());
    println!(
        "# functional check: both placements produce identical bitsets ({} set)",
        ba.count_ones()
    );
    println!();

    print_table(
        &[
            "placement",
            "filter+WB time (ms)",
            "output writes",
            "RMW reads",
        ],
        &[
            vec![
                "interleaved".to_owned(),
                f2(inter_time.as_ms_f64()),
                format!("{writes_inter}"),
                format!("{rmw_reads}"),
            ],
            vec![
                "contiguous".to_owned(),
                f2(contig_time.as_ms_f64()),
                format!("{}", run.bursts_written),
                "0".to_owned(),
            ],
        ],
    );
    println!();
    println!("# expectation (2.2): interleaving works correctly but pays a read-modify-write");
    println!("# per shared output burst (and {ways}x the bitset coverage per device), which is");
    println!("# why the paper also offers the explicit-shuffle alternative [12].");
}
