//! # jafar-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's per-experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_platforms` | Table 1 (platform specifications) |
//! | `fig3_speedup` | Figure 3 (select speedup vs selectivity) |
//! | `fig4_idle` | Figure 4 (memory-controller idle periods, TPC-H) |
//! | `intext_claims` | §2.2/§3.1/§3.3 in-text numbers |
//! | `ablation_predication` | §3.2 predication discussion |
//! | `ablation_interleaving` | §2.2 multi-DIMM interleaving |
//! | `ablation_schedulers` | §3.3 memory-access scheduling |
//! | `ablation_extensions` | §4 aggregation/projection/row-store NDP |
//!
//! Criterion micro-benches over the hot simulator paths live in
//! `benches/`.
//!
//! This library provides the small shared utilities: argument parsing and
//! aligned table printing.

use std::fmt::Display;

/// Reads `--key value` style arguments with a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True if `--flag` is present.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Prints an aligned table: header row + data rows.
pub fn print_table<R: AsRef<[String]>>(headers: &[&str], rows: &[R]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.as_ref().iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.as_ref().to_vec());
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: impl Display) -> String {
    format!("{v}")
}

/// Formats a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float to 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(fmt(42), "42");
    }

    #[test]
    fn table_renders_without_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".to_string(), "2".to_string()]],
        );
    }
}
