//! # jafar-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's per-experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_platforms` | Table 1 (platform specifications) |
//! | `fig3_speedup` | Figure 3 (select speedup vs selectivity) |
//! | `fig4_idle` | Figure 4 (memory-controller idle periods, TPC-H) |
//! | `intext_claims` | §2.2/§3.1/§3.3 in-text numbers |
//! | `ablation_predication` | §3.2 predication discussion |
//! | `ablation_interleaving` | §2.2 multi-DIMM interleaving |
//! | `ablation_schedulers` | §3.3 memory-access scheduling |
//! | `ablation_extensions` | §4 aggregation/projection/row-store NDP |
//! | `fig_scaling` | rank-parallel scaling sweep (beyond the paper) |
//! | `fig_serving` | served-load sweep: saturation knee + tail latency (beyond the paper) |
//! | `fig_engine` | wall-clock engine throughput: fusion + batched admission (beyond the paper) |
//! | `fig_cluster` | disaggregated serving grid: node-count × replication sweep, outage ladder (beyond the paper) |
//!
//! `fig_scaling`, `fig_serving`, `fig_engine` and `fig_cluster` accept
//! `--smoke` for a seconds-scale CI run that still executes every
//! assertion.
//!
//! Micro-benches over the hot simulator paths live in `benches/` and run
//! on the in-tree [`micro`] harness (the workspace builds offline, so it
//! cannot depend on Criterion).
//!
//! This library provides the small shared utilities: argument parsing,
//! aligned table printing, and the micro-benchmark harness.

use std::fmt::Display;

/// A minimal wall-clock micro-benchmark harness: warm up, then run batches
/// until enough time has elapsed, and report the mean per-iteration time.
///
/// Each `benches/*.rs` target is a plain `fn main()` (`harness = false`)
/// that calls [`micro::run`] / [`micro::run_batched`]. Use `--bench-filter
/// substring` to run a subset and `--bench-ms N` to change the measurement
/// budget per benchmark.
pub mod micro {
    use std::time::{Duration, Instant};

    fn wants(name: &str) -> bool {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--bench-filter") {
            Some(i) => args
                .get(i + 1)
                .map(|needle| name.contains(needle.as_str()))
                .unwrap_or(true),
            None => true,
        }
    }

    fn budget() -> Duration {
        Duration::from_millis(crate::arg("--bench-ms", 200u64))
    }

    fn report(name: &str, iters: u64, elapsed: Duration) {
        let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        let (value, unit) = if per_iter >= 1e6 {
            (per_iter / 1e6, "ms")
        } else if per_iter >= 1e3 {
            (per_iter / 1e3, "µs")
        } else {
            (per_iter, "ns")
        };
        println!("{name:<48} {value:>10.2} {unit}/iter  ({iters} iters)");
    }

    /// Benchmarks `f`, timing every call.
    pub fn run<T>(name: &str, mut f: impl FnMut() -> T) {
        if !wants(name) {
            return;
        }
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let budget = budget();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget {
            let t0 = Instant::now();
            std::hint::black_box(f());
            elapsed += t0.elapsed();
            iters += 1;
        }
        report(name, iters, elapsed);
    }

    /// Benchmarks `f` with a fresh `setup()` value per iteration; only the
    /// time inside `f` is measured.
    pub fn run_batched<S, T>(name: &str, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> T) {
        if !wants(name) {
            return;
        }
        for _ in 0..2 {
            std::hint::black_box(f(setup()));
        }
        let budget = budget();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        report(name, iters, elapsed);
    }
}

/// A minimal JSON reader for the `BENCH_*.json` artifacts the fig
/// binaries emit (the workspace builds offline, so there is no serde).
/// Covers exactly the grammar [`write_bench_json`] callers produce:
/// objects, arrays, strings without exotic escapes, `f64` numbers,
/// booleans and `null`. `bench_check` uses it to validate artifact
/// schemas in CI.
pub mod json {
    /// One parsed JSON value. Numbers are uniformly `f64` (the artifacts
    /// carry nothing outside its exact range); `null` — which [`crate::jnum`]
    /// emits for non-finite inputs — becomes [`Json::Null`].
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Parses `text` as one JSON document.
        pub fn parse(text: &str) -> Result<Json, String> {
            let bytes = text.as_bytes();
            let mut pos = 0usize;
            let v = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing bytes at offset {pos}"));
            }
            Ok(v)
        }

        /// Object field lookup; `None` on missing key or non-object.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn num(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Serializes this value back to JSON text (2-space indent).
        /// `Json::parse(v.render())` round-trips for everything the
        /// grammar covers — `bench_check --accept` uses this to rewrite
        /// an artifact with a refreshed `baseline` object.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out, 0);
            out.push('\n');
            out
        }

        /// Replaces the top-level `key` (or appends it) on an object.
        /// No-op on non-objects.
        pub fn set(&mut self, key: &str, value: Json) {
            if let Json::Obj(fields) = self {
                match fields.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v = value,
                    None => fields.push((key.to_string(), value)),
                }
            }
        }

        fn render_into(&self, out: &mut String, depth: usize) {
            let pad = "  ".repeat(depth + 1);
            let close = "  ".repeat(depth);
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Num(n) => out.push_str(&crate::jnum(*n)),
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            '\r' => out.push_str("\\r"),
                            other => out.push(other),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&pad);
                        item.render_into(out, depth + 1);
                    }
                    out.push('\n');
                    out.push_str(&close);
                    out.push(']');
                }
                Json::Obj(fields) => {
                    if fields.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&pad);
                        out.push('"');
                        out.push_str(k);
                        out.push_str("\": ");
                        v.render_into(out, depth + 1);
                    }
                    out.push('\n');
                    out.push_str(&close);
                    out.push('}');
                }
            }
        }
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at offset {pos}"))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => parse_obj(b, pos),
            Some(b'[') => parse_arr(b, pos),
            Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
            Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
            Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
            Some(_) => parse_num(b, pos),
        }
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, "{")?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_str(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, ":")?;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, "[")?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {pos}")),
            }
        }
    }

    fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, "\"")?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

/// Reads `--key value` style arguments with a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True if `--flag` is present.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The raw value following `--name`, if present — for path-valued options
/// with no meaningful default (e.g. `--trace out/run`).
pub fn arg_opt(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Lowercases `label` into a filename-safe slug (`a-z0-9-`), collapsing
/// runs of other characters to single dashes.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Prints an aligned table: header row + data rows.
pub fn print_table<R: AsRef<[String]>>(headers: &[&str], rows: &[R]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.as_ref().iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.as_ref().to_vec());
    }
}

/// Serializes one JSON number; non-finite values (an empty percentile,
/// a NaN ratio) become `null` so the artifact stays parseable.
pub fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Writes a `BENCH_*.json` perf artifact next to the working directory
/// and notes it on stdout. The workspace builds offline (no serde), so
/// callers compose the body by hand with [`jnum`] for the numbers.
pub fn write_bench_json(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    println!("# wrote {path}");
}

/// The previous artifact's accepted `baseline` object, rendered as one
/// JSON value — `"null"` when the file is absent, unparseable, or has
/// no baseline yet. Benches splice this into the body they are about to
/// write so re-running a bench never discards the values `bench_check
/// --accept` committed; only `--accept` moves the baseline.
pub fn carry_baseline(path: &str) -> String {
    let Ok(text) = std::fs::read_to_string(path) else {
        return "null".to_string();
    };
    match json::Json::parse(&text).ok().and_then(|doc| {
        doc.get("baseline")
            .filter(|b| !matches!(b, json::Json::Null))
            .cloned()
    }) {
        Some(baseline) => {
            let mut out = String::new();
            // Re-render at top-level depth; the caller embeds it after
            // `"baseline": ` so nested indentation is cosmetic only.
            out.push_str(baseline.render().trim_end());
            out
        }
        None => "null".to_string(),
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: impl Display) -> String {
    format!("{v}")
}

/// Formats a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float to 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(fmt(42), "42");
    }

    #[test]
    fn table_renders_without_panic() {
        print_table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    fn json_roundtrips_a_bench_artifact_shape() {
        use super::json::Json;
        let doc = r#"{
  "bench": "fig_x", "smoke": false, "n": 3,
  "sweep": [ {"a": 1.5, "b": null}, {"a": -2e3, "b": true} ]
}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(v.get("bench").and_then(Json::str), Some("fig_x"));
        assert_eq!(v.get("n").and_then(Json::num), Some(3.0));
        let sweep = v.get("sweep").and_then(Json::arr).expect("array");
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].get("a").and_then(Json::num), Some(1.5));
        assert_eq!(sweep[0].get("b"), Some(&Json::Null));
        assert_eq!(sweep[1].get("a").and_then(Json::num), Some(-2000.0));
        assert_eq!(sweep[1].get("b"), Some(&Json::Bool(true)));
    }

    #[test]
    fn json_render_round_trips() {
        use super::json::Json;
        let doc = r#"{"bench": "fig_x", "baseline": {"knee.qps": 1250.5, "mult": 2}, "sweep": [1, null, true, "s\"t"]}"#;
        let v = Json::parse(doc).expect("parses");
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).expect("round-trips"), v);
        let mut v2 = v.clone();
        v2.set("baseline", Json::Null);
        assert_eq!(v2.get("baseline"), Some(&Json::Null));
        v2.set("extra", Json::Num(3.0));
        assert_eq!(v2.get("extra").and_then(Json::num), Some(3.0));
    }

    #[test]
    fn json_rejects_malformed_input() {
        use super::json::Json;
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
