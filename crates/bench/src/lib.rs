//! # jafar-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's per-experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_platforms` | Table 1 (platform specifications) |
//! | `fig3_speedup` | Figure 3 (select speedup vs selectivity) |
//! | `fig4_idle` | Figure 4 (memory-controller idle periods, TPC-H) |
//! | `intext_claims` | §2.2/§3.1/§3.3 in-text numbers |
//! | `ablation_predication` | §3.2 predication discussion |
//! | `ablation_interleaving` | §2.2 multi-DIMM interleaving |
//! | `ablation_schedulers` | §3.3 memory-access scheduling |
//! | `ablation_extensions` | §4 aggregation/projection/row-store NDP |
//! | `fig_scaling` | rank-parallel scaling sweep (beyond the paper) |
//! | `fig_serving` | served-load sweep: saturation knee + tail latency (beyond the paper) |
//!
//! `fig_scaling` and `fig_serving` accept `--smoke` for a seconds-scale
//! CI run that still executes every assertion.
//!
//! Micro-benches over the hot simulator paths live in `benches/` and run
//! on the in-tree [`micro`] harness (the workspace builds offline, so it
//! cannot depend on Criterion).
//!
//! This library provides the small shared utilities: argument parsing,
//! aligned table printing, and the micro-benchmark harness.

use std::fmt::Display;

/// A minimal wall-clock micro-benchmark harness: warm up, then run batches
/// until enough time has elapsed, and report the mean per-iteration time.
///
/// Each `benches/*.rs` target is a plain `fn main()` (`harness = false`)
/// that calls [`micro::run`] / [`micro::run_batched`]. Use `--bench-filter
/// substring` to run a subset and `--bench-ms N` to change the measurement
/// budget per benchmark.
pub mod micro {
    use std::time::{Duration, Instant};

    fn wants(name: &str) -> bool {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--bench-filter") {
            Some(i) => args
                .get(i + 1)
                .map(|needle| name.contains(needle.as_str()))
                .unwrap_or(true),
            None => true,
        }
    }

    fn budget() -> Duration {
        Duration::from_millis(crate::arg("--bench-ms", 200u64))
    }

    fn report(name: &str, iters: u64, elapsed: Duration) {
        let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        let (value, unit) = if per_iter >= 1e6 {
            (per_iter / 1e6, "ms")
        } else if per_iter >= 1e3 {
            (per_iter / 1e3, "µs")
        } else {
            (per_iter, "ns")
        };
        println!("{name:<48} {value:>10.2} {unit}/iter  ({iters} iters)");
    }

    /// Benchmarks `f`, timing every call.
    pub fn run<T>(name: &str, mut f: impl FnMut() -> T) {
        if !wants(name) {
            return;
        }
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let budget = budget();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget {
            let t0 = Instant::now();
            std::hint::black_box(f());
            elapsed += t0.elapsed();
            iters += 1;
        }
        report(name, iters, elapsed);
    }

    /// Benchmarks `f` with a fresh `setup()` value per iteration; only the
    /// time inside `f` is measured.
    pub fn run_batched<S, T>(name: &str, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> T) {
        if !wants(name) {
            return;
        }
        for _ in 0..2 {
            std::hint::black_box(f(setup()));
        }
        let budget = budget();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        report(name, iters, elapsed);
    }
}

/// Reads `--key value` style arguments with a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True if `--flag` is present.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The raw value following `--name`, if present — for path-valued options
/// with no meaningful default (e.g. `--trace out/run`).
pub fn arg_opt(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Lowercases `label` into a filename-safe slug (`a-z0-9-`), collapsing
/// runs of other characters to single dashes.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Prints an aligned table: header row + data rows.
pub fn print_table<R: AsRef<[String]>>(headers: &[&str], rows: &[R]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.as_ref().iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.as_ref().to_vec());
    }
}

/// Serializes one JSON number; non-finite values (an empty percentile,
/// a NaN ratio) become `null` so the artifact stays parseable.
pub fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Writes a `BENCH_*.json` perf artifact next to the working directory
/// and notes it on stdout. The workspace builds offline (no serde), so
/// callers compose the body by hand with [`jnum`] for the numbers.
pub fn write_bench_json(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
    println!("# wrote {path}");
}

/// Formats a float with the given precision.
pub fn fmt(v: impl Display) -> String {
    format!("{v}")
}

/// Formats a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float to 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(fmt(42), "42");
    }

    #[test]
    fn table_renders_without_panic() {
        print_table(&["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
    }
}
