//! # jafar-net — deterministic simulated cluster fabric
//!
//! The serving engine grew up inside one memory box: a channels × ranks
//! filter-unit pool behind zero-cost host access. Farview
//! and Taurus place the NDP units on *disaggregated* memory nodes behind
//! a real network, where the hop latency, link bandwidth and message
//! serialization costs are first-class performance axes. This crate
//! models that fabric deterministically, so cluster serve runs remain
//! pure functions of `(workload, placement, policies, config, seed)`:
//!
//! - [`NetFabric`]: a star fabric — one host frontend connected by one
//!   link per memory node (plus optional extra links, e.g. a page-store
//!   link). Each message charged to a link pays a fixed serialization
//!   cost, the link's propagation latency, a per-byte transmission cost,
//!   and a seeded uniform jitter draw from that link's **own** RNG
//!   stream.
//! - RNG stream hygiene: link streams are derived with
//!   [`SplitMix64::split`] from the fabric seed using the link's label,
//!   so adding a node (a new link) never perturbs another link's jitter
//!   sequence — the cluster-identity tests rely on this to prove a
//!   2-node run's node-0 traffic is byte-identical to the 1-node run's.
//! - [`LinkStats`]: per-link message/byte/busy-time accounting, the raw
//!   material for the serve report's network-bytes and hop-latency
//!   breakdown.
//! - [`Placement`]: which memory nodes hold a replica of each column —
//!   hot columns replicated on every node, cold columns on a subset
//!   (the `replication factor` axis the `fig_cluster` bench sweeps).
//!
//! The fabric is a *cost model*, not a packet simulator: it answers
//! "what does this message cost on this link right now" and keeps the
//! ledger. Queueing on the link itself is not modelled (messages are
//! small relative to the serve-time scale); contention shows up where it
//! matters for the reproduction — in the node-local engines the messages
//! feed.

use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;

/// Cost parameters of one point-to-point link.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// One-way propagation latency paid by every message.
    pub latency: Tick,
    /// Transmission cost per payload byte, in picoseconds (the inverse
    /// bandwidth: 80 ps/B ≈ 12.5 GB/s ≈ a 100 Gb/s fabric).
    pub ps_per_byte: u64,
    /// Upper bound of the per-message uniform jitter draw, in
    /// picoseconds (0 disables jitter; the draw still happens so stream
    /// positions stay aligned across configurations).
    pub jitter_ps: u64,
}

impl LinkSpec {
    /// A 100 Gb/s-class datacenter RDMA link: 1.5 µs propagation,
    /// 80 ps/byte (~12.5 GB/s), up to 200 ns jitter.
    pub fn datacenter() -> LinkSpec {
        LinkSpec {
            latency: Tick::from_ns(1500),
            ps_per_byte: 80,
            jitter_ps: 200_000,
        }
    }

    /// A slower page-store / capacity-tier link: 5 µs propagation,
    /// 400 ps/byte (~2.5 GB/s), up to 1 µs jitter. Used for the
    /// cross-tier ladder's last rung (pull the column over the network).
    pub fn page_store() -> LinkSpec {
        LinkSpec {
            latency: Tick::from_us(5),
            ps_per_byte: 400,
            jitter_ps: 1_000_000,
        }
    }

    /// An ideal link: zero latency, zero cost, zero jitter. Makes a
    /// cluster run collapse to the node engines' own timelines — the
    /// baseline the fabric's overhead is measured against.
    pub fn ideal() -> LinkSpec {
        LinkSpec {
            latency: Tick::ZERO,
            ps_per_byte: 0,
            jitter_ps: 0,
        }
    }
}

/// Traffic ledger of one link: what crossed it and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages charged to the link.
    pub messages: u64,
    /// Total payload bytes carried.
    pub bytes: u64,
    /// Total hop time charged (sum of every message's full delay).
    pub busy: Tick,
}

/// One link with its private jitter stream and ledger.
#[derive(Clone, Debug)]
struct Link {
    spec: LinkSpec,
    rng: SplitMix64,
    stats: LinkStats,
}

/// The deterministic star fabric between the host frontend and the
/// memory nodes. See the crate docs for the cost model.
#[derive(Clone, Debug)]
pub struct NetFabric {
    links: Vec<Link>,
    msg_fixed: Tick,
    root: SplitMix64,
}

impl NetFabric {
    /// An empty fabric. `seed` roots every link's jitter stream;
    /// `msg_fixed` is the fixed per-message serialization/processing
    /// cost (marshalling the request, syscall/NIC doorbell — paid on
    /// every hop regardless of size).
    pub fn new(seed: u64, msg_fixed: Tick) -> NetFabric {
        NetFabric {
            links: Vec::new(),
            msg_fixed,
            root: SplitMix64::new(seed),
        }
    }

    /// Adds a link and returns its dense id. The link's jitter stream is
    /// `root.split(label)`, so streams are a pure function of
    /// `(fabric seed, label)` — independent of how many other links
    /// exist or the order they were added in.
    pub fn add_link(&mut self, label: &str, spec: LinkSpec) -> usize {
        let rng = self.root.split(label);
        self.links.push(Link {
            spec,
            rng,
            stats: LinkStats::default(),
        });
        self.links.len() - 1
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.links.len()
    }

    /// Charges one `bytes`-byte message to `link` and returns its hop
    /// delay: `msg_fixed + latency + bytes · ps_per_byte + jitter`,
    /// where jitter is a fresh uniform draw in `[0, jitter_ps]` from the
    /// link's stream. Updates the link's [`LinkStats`].
    ///
    /// # Panics
    /// Panics if `link` is out of range.
    pub fn delay(&mut self, link: usize, bytes: u64) -> Tick {
        let l = &mut self.links[link];
        let jitter = Tick::from_ps(l.rng.next_below(l.spec.jitter_ps + 1));
        let wire = Tick::from_ps(bytes.saturating_mul(l.spec.ps_per_byte));
        let total = self.msg_fixed + l.spec.latency + wire + jitter;
        l.stats.messages += 1;
        l.stats.bytes += bytes;
        l.stats.busy += total;
        total
    }

    /// The ledger of one link.
    ///
    /// # Panics
    /// Panics if `link` is out of range.
    pub fn stats(&self, link: usize) -> LinkStats {
        self.links[link].stats
    }

    /// Total payload bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.stats.bytes).sum()
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.links.iter().map(|l| l.stats.messages).sum()
    }

    /// Total hop time charged across all links.
    pub fn total_busy(&self) -> Tick {
        self.links.iter().map(|l| l.stats.busy).sum()
    }
}

/// Where a column's replicas live: the node ids (dense, `0..nodes`)
/// holding a full copy. The serving tier routes a query to a holder when
/// one is healthy, and falls back to pulling the column over the network
/// when none is (the cross-tier ladder's last rung).
///
/// "Hot" columns are replicated on every node ([`Placement::hot`]);
/// "cold" columns keep fewer copies ([`Placement::cold`]) — striping a
/// cold column across k of N nodes is the placement the `fig_cluster`
/// replication-factor axis sweeps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    holders: Vec<usize>,
}

impl Placement {
    /// Replicate on every one of `nodes` nodes (hot column).
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn hot(nodes: usize) -> Placement {
        assert!(nodes > 0, "a placement needs at least one node");
        Placement {
            holders: (0..nodes).collect(),
        }
    }

    /// Replicate on the first `factor` of `nodes` nodes (cold column,
    /// replication factor < N).
    ///
    /// # Panics
    /// Panics if `factor == 0` or `factor > nodes`.
    pub fn cold(nodes: usize, factor: usize) -> Placement {
        assert!(
            factor > 0 && factor <= nodes,
            "replication factor {factor} must be in 1..={nodes}"
        );
        Placement {
            holders: (0..factor).collect(),
        }
    }

    /// An explicit holder set.
    ///
    /// # Panics
    /// Panics if `holders` is empty or contains duplicates.
    pub fn on(mut holders: Vec<usize>) -> Placement {
        assert!(!holders.is_empty(), "a placement needs at least one node");
        holders.sort_unstable();
        let len = holders.len();
        holders.dedup();
        assert_eq!(holders.len(), len, "duplicate holder node");
        Placement { holders }
    }

    /// The holder node ids, sorted ascending.
    pub fn holders(&self) -> &[usize] {
        &self.holders
    }

    /// True when `node` holds a replica.
    pub fn holds(&self, node: usize) -> bool {
        self.holders.binary_search(&node).is_ok()
    }

    /// The replication factor (number of holders).
    pub fn factor(&self) -> usize {
        self.holders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_for_a_seed() {
        let build = || {
            let mut f = NetFabric::new(0xFAB, Tick::from_ns(200));
            for i in 0..3 {
                f.add_link(&format!("node-{i}"), LinkSpec::datacenter());
            }
            f
        };
        let mut a = build();
        let mut b = build();
        for msg in 0..64u64 {
            let link = (msg % 3) as usize;
            assert_eq!(a.delay(link, msg * 64), b.delay(link, msg * 64));
        }
    }

    #[test]
    fn adding_a_link_never_perturbs_existing_streams() {
        // The satellite guarantee: node-0's hop delays are identical
        // whether the fabric has one node or four.
        let mut solo = NetFabric::new(7, Tick::from_ns(200));
        solo.add_link("node-0", LinkSpec::datacenter());
        let mut wide = NetFabric::new(7, Tick::from_ns(200));
        for i in 0..4 {
            wide.add_link(&format!("node-{i}"), LinkSpec::datacenter());
        }
        for bytes in [0u64, 64, 4096, 1 << 20] {
            assert_eq!(solo.delay(0, bytes), wide.delay(0, bytes));
        }
    }

    #[test]
    fn cost_model_is_exact_without_jitter() {
        let mut f = NetFabric::new(1, Tick::from_ns(100));
        let spec = LinkSpec {
            latency: Tick::from_ns(1000),
            ps_per_byte: 80,
            jitter_ps: 0,
        };
        f.add_link("node-0", spec);
        // 100ns fixed + 1000ns latency + 4096 B * 80 ps.
        assert_eq!(
            f.delay(0, 4096),
            Tick::from_ns(1100) + Tick::from_ps(4096 * 80)
        );
        let s = f.stats(0);
        assert_eq!((s.messages, s.bytes), (1, 4096));
        assert_eq!(s.busy, Tick::from_ns(1100) + Tick::from_ps(4096 * 80));
    }

    #[test]
    fn jitter_stays_within_its_bound() {
        let mut f = NetFabric::new(99, Tick::ZERO);
        let spec = LinkSpec {
            latency: Tick::ZERO,
            ps_per_byte: 0,
            jitter_ps: 500,
        };
        f.add_link("node-0", spec);
        for _ in 0..10_000 {
            assert!(f.delay(0, 0) <= Tick::from_ps(500));
        }
    }

    #[test]
    fn ledger_accumulates_across_links() {
        let mut f = NetFabric::new(3, Tick::ZERO);
        f.add_link("node-0", LinkSpec::ideal());
        f.add_link("node-1", LinkSpec::ideal());
        f.delay(0, 10);
        f.delay(1, 20);
        f.delay(1, 30);
        assert_eq!(f.total_messages(), 3);
        assert_eq!(f.total_bytes(), 60);
        assert_eq!(f.stats(1).messages, 2);
        assert_eq!(f.total_busy(), Tick::ZERO);
    }

    #[test]
    fn placement_hot_cold_and_membership() {
        let hot = Placement::hot(4);
        assert_eq!(hot.holders(), &[0, 1, 2, 3]);
        assert_eq!(hot.factor(), 4);
        let cold = Placement::cold(4, 2);
        assert_eq!(cold.holders(), &[0, 1]);
        assert!(cold.holds(1) && !cold.holds(2));
        let explicit = Placement::on(vec![3, 1]);
        assert_eq!(explicit.holders(), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_factor_rejected() {
        let _ = Placement::cold(4, 0);
    }
}
