//! The scan engine: executes a select kernel over a column, co-simulating
//! compute with a pluggable memory backend.
//!
//! Per 64-byte line the engine (1) asks the backend for the line's data and
//! readiness tick, (2) evaluates the predicate on each of the line's eight
//! 64-bit values, charging the kernel's µop costs and any branch-mispredict
//! penalties from the live two-bit predictor, and (3) issues position-list
//! stores through the backend so output traffic (write-allocates,
//! writebacks) is modelled. Elapsed time per line is
//! `max(data ready, compute so far) + line compute` — prefetching inside
//! the backend is what lets the memory stream run ahead of compute, exactly
//! as on a real core.

use crate::branch::TwoBitPredictor;
use crate::kernels::{KernelParams, ScanVariant};
use jafar_common::time::{ClockDomain, Tick};

/// A memory access the backend could not perform. Surfaced as a typed
/// error (instead of a backend panic) so callers — notably the resilient
/// driver's CPU-fallback path — can report or recover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryFault {
    /// The physical address lies beyond the backing memory's capacity.
    OutOfRange {
        /// The faulting byte address.
        addr: u64,
    },
}

impl core::fmt::Display for MemoryFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemoryFault::OutOfRange { addr } => {
                write!(f, "memory access at {addr:#x} beyond backing capacity")
            }
        }
    }
}

impl std::error::Error for MemoryFault {}

/// Where the engine gets memory from. Implemented over the full cache +
/// memory-controller stack in `jafar-sim`; a fixed-latency test double is
/// provided here.
pub trait MemoryBackend {
    /// Demand-loads the 64-byte line containing `addr`, issued at `at`.
    /// Returns the tick at which the data is available and the line bytes.
    ///
    /// # Errors
    /// [`MemoryFault::OutOfRange`] when `addr` exceeds backing capacity.
    fn load_line(&mut self, addr: u64, at: Tick) -> Result<(Tick, [u8; 64]), MemoryFault>;

    /// Stores `bytes` at `addr` at tick `at` (fire-and-forget through the
    /// store buffer; the returned tick is when the store retires, normally
    /// `at` — traffic effects are the backend's concern).
    ///
    /// # Errors
    /// [`MemoryFault::OutOfRange`] when `addr` exceeds backing capacity.
    fn store(&mut self, addr: u64, bytes: &[u8], at: Tick) -> Result<Tick, MemoryFault>;
}

/// What to scan and how.
#[derive(Clone, Copy, Debug)]
pub struct ScanSpec {
    /// Base address of the packed `i64` column.
    pub col_addr: u64,
    /// Number of rows.
    pub rows: u64,
    /// Inclusive lower bound of the range predicate.
    pub lo: i64,
    /// Inclusive upper bound of the range predicate.
    pub hi: i64,
    /// Base address of the `u32` position-list output.
    pub out_addr: u64,
    /// Kernel variant.
    pub variant: ScanVariant,
}

/// Outcome of a scan.
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// Completion tick.
    pub end: Tick,
    /// Number of matching rows.
    pub matches: u64,
    /// Matching row indices, in order (the functional result).
    pub positions: Vec<u32>,
    /// Time spent waiting for memory beyond compute.
    pub stall: Tick,
    /// Time spent in compute.
    pub compute: Tick,
    /// Branch mispredictions charged.
    pub mispredicts: u64,
}

/// The engine: one host core running one select kernel.
pub struct ScanEngine {
    clock: ClockDomain,
    params: KernelParams,
}

impl ScanEngine {
    /// An engine on the given core clock with the given µop costs.
    pub fn new(clock: ClockDomain, params: KernelParams) -> Self {
        ScanEngine { clock, params }
    }

    /// The Table-1 gem5 host: 1 GHz, default kernel costs.
    pub fn gem5_like() -> Self {
        ScanEngine::new(ClockDomain::from_ghz(1), KernelParams::default())
    }

    /// Runs `spec` starting at `start` against `backend`.
    ///
    /// # Errors
    /// Propagates the backend's [`MemoryFault`] if any load or store in the
    /// scan touches memory the backend cannot serve (e.g. a column placed
    /// beyond simulated DRAM capacity).
    pub fn run(
        &self,
        backend: &mut impl MemoryBackend,
        spec: ScanSpec,
        start: Tick,
    ) -> Result<ScanResult, MemoryFault> {
        let period_ps = self.clock.period().as_ps() as f64;
        let mut predictor = TwoBitPredictor::new();
        let mut now = start;
        let mut stall = Tick::ZERO;
        let mut compute_ps = 0.0f64;
        let mut carry_ps = 0.0f64;
        let mut positions: Vec<u32> = Vec::new();
        let lines = spec.rows.div_ceil(8);

        for line in 0..lines {
            let line_addr = spec.col_addr + line * 64;
            let (ready, data) = backend.load_line(line_addr, now)?;
            if ready > now {
                stall += ready - now;
                now = ready;
            }
            let rows_here = (spec.rows - line * 8).min(8);
            let mut line_cycles = 0.0f64;
            for i in 0..rows_here {
                let off = (i * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                let matched = spec.lo <= v && v <= spec.hi;
                line_cycles += self.params.row_cycles(spec.variant, matched);
                if self.params.has_branch(spec.variant) && !predictor.predict_and_update(matched) {
                    line_cycles += self.params.mispredict_penalty;
                }
                // The store executes for matches (all variants) and
                // unconditionally for the predicated kernel; only matches
                // advance the output cursor, so the predicated kernel
                // re-stores the same slot on non-matches.
                let row_idx = (line * 8 + i) as u32;
                let store_slot = positions.len() as u64;
                if matched {
                    positions.push(row_idx);
                    backend.store(spec.out_addr + store_slot * 4, &row_idx.to_le_bytes(), now)?;
                } else if matches!(spec.variant, ScanVariant::Predicated) {
                    backend.store(spec.out_addr + store_slot * 4, &row_idx.to_le_bytes(), now)?;
                }
            }
            let advance_ps = line_cycles * period_ps + carry_ps;
            let whole = advance_ps.floor();
            carry_ps = advance_ps - whole;
            let adv = Tick::from_ps(whole as u64);
            compute_ps += line_cycles * period_ps;
            now += adv;
        }

        Ok(ScanResult {
            end: now,
            matches: positions.len() as u64,
            positions,
            stall,
            compute: Tick::from_ps(compute_ps as u64),
            mispredicts: predictor.mispredictions(),
        })
    }
}

/// A deterministic test backend: fixed line-load latency over a flat byte
/// image, zero-latency stores applied functionally.
pub struct FixedLatencyBackend {
    /// The memory image.
    pub memory: Vec<u8>,
    /// Per-line load latency.
    pub load_latency: Tick,
    /// Lines loaded.
    pub loads: u64,
    /// Stores applied.
    pub stores: u64,
}

impl FixedLatencyBackend {
    /// An image of `size` zero bytes with the given load latency.
    pub fn new(size: usize, load_latency: Tick) -> Self {
        FixedLatencyBackend {
            memory: vec![0; size],
            load_latency,
            loads: 0,
            stores: 0,
        }
    }

    /// Writes an `i64` column at `addr`.
    pub fn put_column(&mut self, addr: u64, values: &[i64]) {
        for (i, v) in values.iter().enumerate() {
            let off = addr as usize + i * 8;
            self.memory[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
    }
}

impl MemoryBackend for FixedLatencyBackend {
    fn load_line(&mut self, addr: u64, at: Tick) -> Result<(Tick, [u8; 64]), MemoryFault> {
        let base = (addr & !63) as usize;
        if base >= self.memory.len() {
            return Err(MemoryFault::OutOfRange { addr });
        }
        self.loads += 1;
        let mut line = [0u8; 64];
        let end = (base + 64).min(self.memory.len());
        line[..end - base].copy_from_slice(&self.memory[base..end]);
        Ok((at + self.load_latency, line))
    }

    fn store(&mut self, addr: u64, bytes: &[u8], at: Tick) -> Result<Tick, MemoryFault> {
        let a = addr as usize;
        if a + bytes.len() > self.memory.len() {
            return Err(MemoryFault::OutOfRange { addr });
        }
        self.stores += 1;
        self.memory[a..a + bytes.len()].copy_from_slice(bytes);
        Ok(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_common::rng::SplitMix64;

    fn spec(rows: u64, lo: i64, hi: i64, variant: ScanVariant) -> ScanSpec {
        ScanSpec {
            col_addr: 0,
            rows,
            lo,
            hi,
            out_addr: 1 << 20,
            variant,
        }
    }

    fn backend_with_column(values: &[i64]) -> FixedLatencyBackend {
        let mut b = FixedLatencyBackend::new(2 << 20, Tick::from_ns(20));
        b.put_column(0, values);
        b
    }

    fn reference_positions(values: &[i64], lo: i64, hi: i64) -> Vec<u32> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| lo <= v && v <= hi)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn positions_match_reference() {
        let mut rng = SplitMix64::new(7);
        let values: Vec<i64> = (0..1000).map(|_| rng.next_range_inclusive(0, 99)).collect();
        let mut b = backend_with_column(&values);
        let engine = ScanEngine::gem5_like();
        for variant in [
            ScanVariant::Branching,
            ScanVariant::Predicated,
            ScanVariant::Vectorized { lanes: 4 },
        ] {
            let r = engine
                .run(&mut b, spec(1000, 20, 60, variant), Tick::ZERO)
                .unwrap();
            assert_eq!(r.positions, reference_positions(&values, 20, 60));
            assert_eq!(r.matches as usize, r.positions.len());
        }
    }

    #[test]
    fn functional_store_lands_in_backend_memory() {
        let values: Vec<i64> = (0..16).collect();
        let mut b = backend_with_column(&values);
        let engine = ScanEngine::gem5_like();
        let s = spec(16, 5, 8, ScanVariant::Branching);
        let r = engine.run(&mut b, s, Tick::ZERO).unwrap();
        assert_eq!(r.positions, vec![5, 6, 7, 8]);
        for (slot, pos) in r.positions.iter().enumerate() {
            let off = (s.out_addr as usize) + slot * 4;
            let got = u32::from_le_bytes(b.memory[off..off + 4].try_into().unwrap());
            assert_eq!(got, *pos);
        }
    }

    #[test]
    fn runtime_grows_with_selectivity_for_branching() {
        let mut rng = SplitMix64::new(3);
        let values: Vec<i64> = (0..8000)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let engine = ScanEngine::gem5_like();
        let run = |hi: i64| {
            let mut b = backend_with_column(&values);
            engine
                .run(
                    &mut b,
                    spec(8000, 0, hi, ScanVariant::Branching),
                    Tick::ZERO,
                )
                .unwrap()
                .end
        };
        let t0 = run(-1); // 0% selectivity
        let t100 = run(999); // 100%
        assert!(t100 > t0, "t0={t0} t100={t100}");
        // Roughly the documented anchors: (base+match)/base ≈ 1.8×.
        let ratio = t100.as_ps() as f64 / t0.as_ps() as f64;
        assert!((1.4..2.2).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn predicated_runtime_is_selectivity_independent() {
        let mut rng = SplitMix64::new(5);
        let values: Vec<i64> = (0..8000)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let engine = ScanEngine::gem5_like();
        let run = |hi: i64| {
            let mut b = backend_with_column(&values);
            engine
                .run(
                    &mut b,
                    spec(8000, 0, hi, ScanVariant::Predicated),
                    Tick::ZERO,
                )
                .unwrap()
                .end
        };
        let t0 = run(-1);
        let t100 = run(999);
        // Identical compute; both runs time out to the same tick.
        assert_eq!(t0, t100);
    }

    #[test]
    fn mispredicts_peak_mid_selectivity() {
        let mut rng = SplitMix64::new(11);
        let values: Vec<i64> = (0..20_000)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let engine = ScanEngine::gem5_like();
        let miss = |hi: i64| {
            let mut b = backend_with_column(&values);
            engine
                .run(
                    &mut b,
                    spec(20_000, 0, hi, ScanVariant::Branching),
                    Tick::ZERO,
                )
                .unwrap()
                .mispredicts
        };
        let low = miss(49); // 5%
        let mid = miss(499); // 50%
        let high = miss(949); // 95%
        assert!(mid > low && mid > high, "low={low} mid={mid} high={high}");
    }

    #[test]
    fn stall_reflects_memory_latency() {
        let values: Vec<i64> = (0..80).collect();
        let mut b = backend_with_column(&values);
        b.load_latency = Tick::from_us(1); // brutally slow memory
        let engine = ScanEngine::gem5_like();
        let r = engine
            .run(&mut b, spec(80, 0, -1, ScanVariant::Branching), Tick::ZERO)
            .unwrap();
        // 10 lines x 1 µs dominates; compute is negligible.
        assert!(r.stall >= Tick::from_us(10));
        assert!(r.compute < Tick::from_us(1));
        assert_eq!(b.loads, 10);
    }

    #[test]
    fn partial_last_line_handled() {
        let values: Vec<i64> = (0..13).collect();
        let mut b = backend_with_column(&values);
        let engine = ScanEngine::gem5_like();
        let r = engine
            .run(&mut b, spec(13, 0, 100, ScanVariant::Branching), Tick::ZERO)
            .unwrap();
        assert_eq!(r.matches, 13);
        assert_eq!(b.loads, 2);
    }

    #[test]
    fn zero_rows() {
        let mut b = FixedLatencyBackend::new(1 << 10, Tick::from_ns(20));
        let engine = ScanEngine::gem5_like();
        let r = engine
            .run(
                &mut b,
                spec(0, 0, 10, ScanVariant::Branching),
                Tick::from_ns(5),
            )
            .unwrap();
        assert_eq!(r.end, Tick::from_ns(5));
        assert_eq!(r.matches, 0);
        assert_eq!(b.loads, 0);
    }

    #[test]
    fn scan_beyond_capacity_surfaces_typed_fault() {
        // Column claimed to be longer than the backing image: the load past
        // the end must surface as a typed fault, not a panic.
        let mut b = FixedLatencyBackend::new(1 << 10, Tick::from_ns(20));
        let engine = ScanEngine::gem5_like();
        let s = ScanSpec {
            col_addr: 0,
            rows: 1 << 12, // 32 KiB of column in a 1 KiB image
            lo: 0,
            hi: 0,
            out_addr: 1 << 9,
            variant: ScanVariant::Branching,
        };
        let err = engine.run(&mut b, s, Tick::ZERO).unwrap_err();
        assert_eq!(err, MemoryFault::OutOfRange { addr: 1 << 10 });
        assert!(err.to_string().contains("beyond backing capacity"));
    }

    #[test]
    fn out_of_range_store_surfaces_typed_fault() {
        let mut b = FixedLatencyBackend::new(1 << 10, Tick::ZERO);
        let err = b
            .store(1 << 20, &7u32.to_le_bytes(), Tick::ZERO)
            .unwrap_err();
        assert_eq!(err, MemoryFault::OutOfRange { addr: 1 << 20 });
    }

    #[test]
    fn vectorized_faster_than_branching_mid_selectivity() {
        let mut rng = SplitMix64::new(13);
        let values: Vec<i64> = (0..8000)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let engine = ScanEngine::gem5_like();
        let run = |variant| {
            let mut b = backend_with_column(&values);
            b.load_latency = Tick::ZERO; // isolate compute
            engine
                .run(&mut b, spec(8000, 0, 499, variant), Tick::ZERO)
                .unwrap()
                .end
        };
        assert!(run(ScanVariant::Vectorized { lanes: 4 }) < run(ScanVariant::Branching));
    }
}
