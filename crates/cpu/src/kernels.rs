//! Select-kernel cost descriptors and the calibration constants.
//!
//! # Calibration (read this before touching any constant)
//!
//! We reproduce *shapes*, not the authors' absolute cycle counts: their
//! baseline ran on an unpublished gem5 configuration. The per-row µop costs
//! below are the **only tuned constants in the whole reproduction**, and
//! they are tuned against the paper's two anchor points (Figure 3):
//! JAFAR speedup ≈ 5× at 0% selectivity and ≈ 9× at 100%.
//!
//! The *mechanism* producing the slope is the paper's own (§3.2): JAFAR's
//! runtime is selectivity-independent, while the CPU pays (a) extra
//! recording instructions per match and (b) branch-misprediction penalties
//! on the non-predicated select. Arithmetic behind the defaults, for the
//! Table-1 host (1 GHz, out-of-order, 64 B lines = 8 × 8-byte values),
//! solving the paper's three constraints simultaneously — 5× speedup at
//! s=0, 9× at s=1, and 93% of CPU-only time inside the kernel region:
//!
//! - JAFAR streams 4 M rows in ≈ 2.15 ms (one 64-byte burst per 4 ns, §2.2);
//! - with a fixed non-kernel overhead D ≈ 7% of the s=0 CPU run, the
//!   constraints give a CPU kernel of ≈ 3.9 cycles/row at s=0 and
//!   ≈ 7.2 cycles/row at s=1 ⇒ base ≈ 3.9, per-match extra ≈ 3.3
//!   (store + index increment + occasional line spill);
//! - mispredict penalty 5 cycles: a short-pipeline 1 GHz core; applied per
//!   actual mispredict of the real two-bit predictor, which adds a small
//!   mid-selectivity bump on top of the linear trend.

/// Which select implementation the host runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanVariant {
    /// `if (lo <= v && v <= hi) out[n++] = i;` — branchy, the paper's
    /// baseline.
    Branching,
    /// Branch-free: `out[n] = i; n += (lo <= v && v <= hi);` — flat cost,
    /// discussed in §3.2 as the "predication for robustness" alternative.
    Predicated,
    /// SIMD compare + compressed store over `lanes` values per operation
    /// (the \[52\]-style vectorized scan the introduction mentions).
    Vectorized {
        /// Values processed per vector operation (4 for AVX2 on 64-bit).
        lanes: u32,
    },
}

/// Per-row µop costs, in CPU cycles (fractional: these are throughput
/// costs on a superscalar core, not latencies).
#[derive(Clone, Copy, Debug)]
pub struct KernelParams {
    /// Cycles per row for load + compare + loop overhead (branching and
    /// predicated variants).
    pub base_cycles_per_row: f64,
    /// Extra cycles per *matching* row for recording the position
    /// (branching variant).
    pub match_cycles: f64,
    /// Branch misprediction penalty in cycles (branching variant only).
    pub mispredict_penalty: f64,
    /// Extra cycles per row, selectivity-independent, for the predicated
    /// variant (the cmov/unconditional-store overhead §3.2 calls its
    /// "adverse impact" at low selectivity).
    pub predication_overhead: f64,
    /// Cycles per vector operation for the vectorized variant.
    pub vector_op_cycles: f64,
    /// Extra cycles per matching row for the vectorized compress-store.
    pub vector_match_cycles: f64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            base_cycles_per_row: 4.1,
            match_cycles: 3.6,
            mispredict_penalty: 3.0,
            predication_overhead: 1.8,
            vector_op_cycles: 1.6,
            vector_match_cycles: 1.0,
        }
    }
}

impl KernelParams {
    /// Compute cycles for one row given the variant and whether it matched,
    /// *excluding* branch-mispredict penalties (the engine charges those
    /// from the live predictor).
    pub fn row_cycles(&self, variant: ScanVariant, matched: bool) -> f64 {
        match variant {
            ScanVariant::Branching => {
                self.base_cycles_per_row + if matched { self.match_cycles } else { 0.0 }
            }
            ScanVariant::Predicated => self.base_cycles_per_row + self.predication_overhead,
            ScanVariant::Vectorized { lanes } => {
                self.vector_op_cycles / lanes as f64
                    + if matched {
                        self.vector_match_cycles
                    } else {
                        0.0
                    }
            }
        }
    }

    /// Whether the variant exercises the data-dependent branch.
    pub fn has_branch(&self, variant: ScanVariant) -> bool {
        matches!(variant, ScanVariant::Branching)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branching_costs_scale_with_matches() {
        let p = KernelParams::default();
        let miss = p.row_cycles(ScanVariant::Branching, false);
        let hit = p.row_cycles(ScanVariant::Branching, true);
        assert!(hit > miss);
        assert!((hit - miss - p.match_cycles).abs() < 1e-12);
    }

    #[test]
    fn predicated_cost_is_flat() {
        let p = KernelParams::default();
        assert_eq!(
            p.row_cycles(ScanVariant::Predicated, false),
            p.row_cycles(ScanVariant::Predicated, true)
        );
        // Predication costs more than a non-matching branchy row — its
        // "adverse impact for lower selectivity" (§3.2).
        assert!(
            p.row_cycles(ScanVariant::Predicated, false)
                > p.row_cycles(ScanVariant::Branching, false)
        );
    }

    #[test]
    fn vectorized_is_cheapest_per_row() {
        let p = KernelParams::default();
        let v = ScanVariant::Vectorized { lanes: 4 };
        assert!(p.row_cycles(v, false) < p.row_cycles(ScanVariant::Branching, false));
    }

    #[test]
    fn only_branching_has_the_branch() {
        let p = KernelParams::default();
        assert!(p.has_branch(ScanVariant::Branching));
        assert!(!p.has_branch(ScanVariant::Predicated));
        assert!(!p.has_branch(ScanVariant::Vectorized { lanes: 4 }));
    }

    #[test]
    fn anchor_point_arithmetic() {
        // End-to-end anchors including the fixed D = 7%-of-CPU-run
        // overhead charged to both paths: speedup(s) =
        // (D + K_cpu(s)) / (D + K_dev) with K_dev ≈ 0.5375 cycles/row
        // equivalent and D ≈ 1.16 ms for 4 M rows at 1 GHz.
        let p = KernelParams::default();
        let rows = 4.0e6;
        let d_ns = 1.16e6;
        let k_dev_ns = rows * 0.5375;
        let k0_ns = rows * p.row_cycles(ScanVariant::Branching, false);
        let k1_ns = rows * p.row_cycles(ScanVariant::Branching, true);
        let low = (d_ns + k0_ns) / (d_ns + k_dev_ns);
        let high = (d_ns + k1_ns) / (d_ns + k_dev_ns);
        assert!((4.2..6.0).contains(&low), "low anchor {low}");
        assert!((8.0..10.0).contains(&high), "high anchor {high}");
        // And the kernel is ≈93% of the s=0 CPU run.
        let frac = k0_ns / (k0_ns + d_ns);
        assert!((0.90..0.96).contains(&frac), "kernel fraction {frac}");
    }
}
