//! Branch prediction for the select loop's data-dependent branch.
//!
//! The paper's baseline select is deliberately *not* predicated (§3.2), so
//! the `if (value in range)` branch is predicted by hardware. For a scan
//! the only hard branch is that one; we model it with the classic two-bit
//! saturating counter, fed the actual match sequence, so the mispredict
//! rate emerges from the data rather than from an analytic formula.

/// A single two-bit saturating counter predictor (states 0–3; ≥2 predicts
/// taken).
///
/// ```
/// use jafar_cpu::TwoBitPredictor;
///
/// let mut p = TwoBitPredictor::new();
/// for _ in 0..100 {
///     p.predict_and_update(true); // a 100%-selective scan
/// }
/// assert!(p.miss_rate() < 0.05, "biased branches predict well");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TwoBitPredictor {
    state: u8,
    predictions: u64,
    mispredictions: u64,
}

impl Default for TwoBitPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoBitPredictor {
    /// A predictor initialised to "weakly not taken".
    pub fn new() -> Self {
        TwoBitPredictor {
            state: 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the branch, then updates with the actual `taken` outcome.
    /// Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, taken: bool) -> bool {
        let predicted = self.state >= 2;
        let correct = predicted == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        if taken {
            self.state = (self.state + 1).min(3);
        } else {
            self.state = self.state.saturating_sub(1);
        }
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Observed misprediction rate (0 if no predictions yet).
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_common::rng::SplitMix64;

    #[test]
    fn always_taken_converges() {
        let mut p = TwoBitPredictor::new();
        for _ in 0..100 {
            p.predict_and_update(true);
        }
        // After warm-up the predictor is saturated: ≤ 2 early misses.
        assert!(p.mispredictions() <= 2, "{}", p.mispredictions());
    }

    #[test]
    fn never_taken_converges() {
        let mut p = TwoBitPredictor::new();
        for _ in 0..100 {
            p.predict_and_update(false);
        }
        assert_eq!(p.mispredictions(), 0, "init state already predicts NT");
    }

    #[test]
    fn alternating_pattern_hurts() {
        let mut p = TwoBitPredictor::new();
        for i in 0..1000 {
            p.predict_and_update(i % 2 == 0);
        }
        // The two-bit counter oscillates on alternation: ≈ 50% misses.
        assert!(p.miss_rate() > 0.4, "{}", p.miss_rate());
    }

    #[test]
    fn random_miss_rate_tracks_selectivity() {
        // For iid Bernoulli(s) outcomes the two-bit counter's miss rate is
        // ~0 at s∈{0,1} and maximal near s = 0.5.
        let rate = |s: f64| {
            let mut p = TwoBitPredictor::new();
            let mut rng = SplitMix64::new(42);
            for _ in 0..100_000 {
                p.predict_and_update(rng.next_bool(s));
            }
            p.miss_rate()
        };
        assert!(rate(0.0) < 0.001);
        assert!(rate(1.0) < 0.001);
        let mid = rate(0.5);
        assert!(mid > 0.35 && mid < 0.60, "mid={mid}");
        assert!(rate(0.1) < mid);
        assert!(rate(0.9) < mid);
    }

    #[test]
    fn counters_consistent() {
        let mut p = TwoBitPredictor::new();
        for i in 0..10 {
            p.predict_and_update(i >= 5);
        }
        assert_eq!(p.predictions(), 10);
        assert!(p.mispredictions() <= p.predictions());
    }
}
