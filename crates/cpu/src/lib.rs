//! # jafar-cpu — the host CPU timing model
//!
//! Figure 3's baseline is "CPU-only execution" of a select over 4 M
//! unsorted integers on the Table-1 gem5 platform (one out-of-order core at
//! 1 GHz). The paper attributes the baseline's selectivity-dependence to two
//! mechanisms (§3.2):
//!
//! 1. "The CPU executes additional code to record when a row passes the
//!    filter" — per-match position-list bookkeeping;
//! 2. the select is *not* predicated, so the data-dependent branch
//!    mispredicts on random data.
//!
//! This crate models exactly those mechanisms:
//!
//! - [`branch::TwoBitPredictor`]: a saturating two-bit predictor fed the
//!   real per-row outcome sequence;
//! - [`kernels`]: the three classic select kernels — branching, predicated
//!   and vectorized — as µop cost descriptors, with the calibration
//!   constants documented in one place;
//! - [`engine::ScanEngine`]: executes a select kernel over a column,
//!   obtaining line data and latency from a [`engine::MemoryBackend`]
//!   (implemented over the cache hierarchy + memory controller in
//!   `jafar-sim`; a fixed-latency backend is provided for unit tests).
//!
//! Compute and memory overlap in the natural streaming way: per 64-byte
//! line, elapsed time is `max(line data ready, previous compute done)` plus
//! the line's compute time — prefetching in the backend is what makes
//! the stream run ahead, mirroring a real core.

pub mod branch;
pub mod engine;
pub mod kernels;

pub use branch::TwoBitPredictor;
pub use engine::{FixedLatencyBackend, MemoryBackend, MemoryFault, ScanEngine, ScanResult};
pub use kernels::{KernelParams, ScanVariant};
