//! Resource-constrained cycle-by-cycle scheduling of a DDDG.
//!
//! This is the "executed cycle-by-cycle by a breadth-first traversal that
//! also takes into account constraints like memory bandwidth and available
//! functional units" step of Aladdin (§3.1). The scheduler is list
//! scheduling: each cycle, ready nodes issue in trace order up to the
//! per-class functional-unit limits and the memory-bandwidth budget;
//! finished nodes wake their dependents.

use crate::dddg::Dddg;
use crate::ir::{FuClass, Kernel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Datapath resource provisioning.
#[derive(Clone, Copy, Debug)]
pub struct Resources {
    /// Arithmetic/compare units.
    pub alus: u32,
    /// Bit-manipulation units (output-buffer insert path).
    pub bitops: u32,
    /// Memory ports into the DRAM IO buffer.
    pub mem_ports: u32,
    /// Bytes the memory interface can move per cycle.
    pub mem_bytes_per_cycle: u64,
}

impl Resources {
    /// JAFAR's provisioning per §2.2 / Figure 1(b): two ALUs, one port into
    /// the IO buffer delivering one 64-bit word per 0.5 ns device cycle.
    /// The bitset-insert path (and/shift/or) is cheap combinational logic
    /// and is provisioned generously so the two ALUs are the compute
    /// bottleneck, as in the paper's datapath.
    pub fn jafar_default() -> Self {
        Resources {
            alus: 2,
            bitops: 4,
            mem_ports: 1,
            mem_bytes_per_cycle: 8,
        }
    }

    /// Checks the provisioning is schedulable.
    ///
    /// # Panics
    /// Panics if any resource is zero (the scheduler could never progress).
    pub fn validate(&self) {
        assert!(self.alus > 0, "at least one ALU required");
        assert!(self.bitops > 0, "at least one bitwise unit required");
        assert!(self.mem_ports > 0, "at least one memory port required");
        assert!(
            self.mem_bytes_per_cycle > 0,
            "memory bandwidth must be positive"
        );
    }
}

/// The result of scheduling a graph.
///
/// ```
/// use jafar_accel::ir::jafar_filter_kernel;
/// use jafar_accel::{Resources, Schedule};
///
/// // The paper's §2.2 claim, derived rather than assumed: with two ALUs
/// // the filter datapath sustains one word per cycle.
/// let ii = Schedule::steady_state_ii(&jafar_filter_kernel(), &Resources::jafar_default(), 8);
/// assert!((ii - 1.0).abs() < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Total cycles from first issue to last completion.
    pub cycles: u64,
    /// Nodes issued per functional-unit class: `(alu, bitwise, memory)`.
    pub issued: (u64, u64, u64),
    /// Bytes moved over the memory interface.
    pub bytes_moved: u64,
}

impl Schedule {
    /// Computes the schedule of `graph` under `resources`.
    ///
    /// Bandwidth is a token bucket replenished by `mem_bytes_per_cycle`
    /// each cycle (bounded burst), so sub-word-per-cycle interfaces stretch
    /// transfers over multiple cycles instead of deadlocking.
    pub fn compute(graph: &Dddg, resources: &Resources) -> Schedule {
        resources.validate();
        let n = graph.nodes.len();
        if n == 0 {
            return Schedule {
                cycles: 0,
                issued: (0, 0, 0),
                bytes_moved: 0,
            };
        }
        // Successor lists and in-degrees.
        let mut indeg = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in graph.nodes.iter().enumerate() {
            indeg[i] = node.preds.len() as u32;
            for &p in &node.preds {
                succs[p as usize].push(i as u32);
            }
        }
        // Earliest-start heap: (ready_cycle, node), plus per-node running
        // max of predecessor finish times.
        let mut max_pred_finish = vec![0u64; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for (i, d) in indeg.iter().enumerate() {
            if *d == 0 {
                heap.push(Reverse((0, i as u32)));
            }
        }
        let mut pending: Vec<u32> = Vec::new(); // ready but resource-stalled
        let mut cycle = 0u64;
        let mut last_finish = 0u64;
        let mut issued = (0u64, 0u64, 0u64);
        let mut bytes_moved = 0u64;
        // Bandwidth token bucket: replenished each cycle, bounded burst.
        let bw_cap = resources.mem_bytes_per_cycle * 4;
        let mut bw_tokens = resources.mem_bytes_per_cycle;
        let mut last_refill_cycle = 0u64;

        while !heap.is_empty() || !pending.is_empty() {
            // Pull everything ready by `cycle` into the pending list.
            while let Some(&Reverse((start, _))) = heap.peek() {
                if start <= cycle {
                    let Reverse((_, idx)) = heap.pop().expect("peeked");
                    pending.push(idx);
                } else {
                    break;
                }
            }
            if pending.is_empty() {
                // Jump to the next ready time.
                cycle = heap.peek().map(|&Reverse((s, _))| s).expect("nonempty");
            }
            // Refill bandwidth tokens for elapsed cycles.
            if cycle > last_refill_cycle {
                let earned =
                    (cycle - last_refill_cycle).saturating_mul(resources.mem_bytes_per_cycle);
                bw_tokens = (bw_tokens + earned).min(bw_cap);
                last_refill_cycle = cycle;
            }
            if pending.is_empty() {
                continue;
            }
            // Issue this cycle, trace order, within resource limits.
            pending.sort_unstable();
            let mut used = [0u32; 3]; // alu, bitwise, memory
            let mut remaining: Vec<u32> = Vec::new();
            for &idx in &pending {
                let node = &graph.nodes[idx as usize];
                let class = node.kind.fu_class();
                let (slot, limit) = match class {
                    FuClass::Alu => (0, resources.alus),
                    FuClass::Bitwise => (1, resources.bitops),
                    FuClass::Memory => (2, resources.mem_ports),
                };
                let bytes = node.kind.memory_bytes();
                let fits = node.free || (used[slot] < limit && bytes <= bw_tokens);
                if !fits {
                    remaining.push(idx);
                    continue;
                }
                if !node.free {
                    used[slot] += 1;
                    bw_tokens -= bytes;
                    match class {
                        FuClass::Alu => issued.0 += 1,
                        FuClass::Bitwise => issued.1 += 1,
                        FuClass::Memory => issued.2 += 1,
                    }
                    bytes_moved += bytes;
                }
                let finish = cycle + node.kind.latency();
                last_finish = last_finish.max(finish);
                for &s in &succs[idx as usize] {
                    let s = s as usize;
                    max_pred_finish[s] = max_pred_finish[s].max(finish);
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        heap.push(Reverse((max_pred_finish[s], s as u32)));
                    }
                }
            }
            pending = remaining;
            cycle += 1;
        }

        Schedule {
            cycles: last_finish,
            issued,
            bytes_moved,
        }
    }

    /// Steady-state initiation interval of `kernel` under `resources` with
    /// the given unroll factor, in cycles per iteration: measured as the
    /// marginal cost of additional iterations (cancelling pipeline
    /// fill/drain).
    pub fn steady_state_ii(kernel: &Kernel, resources: &Resources, unroll: u64) -> f64 {
        let short = Schedule::compute(&Dddg::expand(kernel, 64, unroll), resources);
        let long = Schedule::compute(&Dddg::expand(kernel, 192, unroll), resources);
        (long.cycles as f64 - short.cycles as f64) / 128.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{jafar_filter_kernel, KernelBuilder, OpKind};

    #[test]
    fn empty_graph_schedules_to_zero() {
        let k = jafar_filter_kernel();
        let g = Dddg::expand(&k, 0, 1);
        let s = Schedule::compute(&g, &Resources::jafar_default());
        assert_eq!(s.cycles, 0);
    }

    #[test]
    fn jafar_kernel_achieves_ii_of_one_with_two_alus() {
        // §2.2: "JAFAR can process one [64-bit word] per clock cycle" with
        // two ALUs evaluating the range bounds in parallel.
        let k = jafar_filter_kernel();
        let ii = Schedule::steady_state_ii(&k, &Resources::jafar_default(), 8);
        assert!((ii - 1.0).abs() < 0.05, "ii={ii}");
    }

    #[test]
    fn single_alu_halves_throughput() {
        let k = jafar_filter_kernel();
        let one_alu = Resources {
            alus: 1,
            ..Resources::jafar_default()
        };
        let ii = Schedule::steady_state_ii(&k, &one_alu, 8);
        assert!((ii - 2.0).abs() < 0.1, "ii={ii}");
    }

    #[test]
    fn memory_bandwidth_limits_ii() {
        let k = jafar_filter_kernel();
        let starved = Resources {
            mem_bytes_per_cycle: 4, // half a word per cycle
            ..Resources::jafar_default()
        };
        let ii = Schedule::steady_state_ii(&k, &starved, 8);
        assert!(ii >= 1.9, "ii={ii}");
    }

    #[test]
    fn serial_carried_chain_cannot_pipeline() {
        let mut b = KernelBuilder::new();
        let mul = b.op(OpKind::Mul, &[]); // 3-cycle op
        b.carry(mul, mul);
        let k = b.build();
        let ii = Schedule::steady_state_ii(&k, &Resources::jafar_default(), 1);
        assert!(
            (ii - 3.0).abs() < 0.1,
            "carried 3-cycle chain → II 3, got {ii}"
        );
    }

    #[test]
    fn resource_counts_accumulate() {
        let k = jafar_filter_kernel();
        let g = Dddg::expand(&k, 16, 1);
        let s = Schedule::compute(&g, &Resources::jafar_default());
        // Per iteration: 2 cmps (alu), 3 bit ops, 1 load; induction is free.
        assert_eq!(s.issued, (32, 48, 16));
        assert_eq!(s.bytes_moved, 16 * 8);
    }

    #[test]
    fn schedule_respects_dependences() {
        // A pure chain of 10 adds has no parallelism: 10 cycles regardless
        // of resources.
        let mut b = KernelBuilder::new();
        let mut prev = b.op(OpKind::Add, &[]);
        for _ in 0..9 {
            prev = b.op(OpKind::Add, &[prev]);
        }
        let k = b.build();
        let g = Dddg::expand(&k, 1, 1);
        let wide = Resources {
            alus: 64,
            bitops: 64,
            mem_ports: 64,
            mem_bytes_per_cycle: 1 << 20,
        };
        let s = Schedule::compute(&g, &wide);
        assert_eq!(s.cycles, 10);
        assert_eq!(s.cycles, g.critical_path());
    }

    #[test]
    fn unrolling_amortises_induction_chain() {
        let k = jafar_filter_kernel();
        let r = Resources::jafar_default();
        let no_unroll = Schedule::compute(&Dddg::expand(&k, 64, 1), &r);
        let unrolled = Schedule::compute(&Dddg::expand(&k, 64, 8), &r);
        assert!(unrolled.cycles <= no_unroll.cycles);
    }
}
