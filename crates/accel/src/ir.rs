//! Kernel IR: the operations of one loop body and their dependences.

/// Operation classes, with datapath latencies in accelerator cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read one word from the local memory interface.
    Load,
    /// Write one word to the local memory interface.
    Store,
    /// Integer comparison.
    ICmp,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Integer add/subtract.
    Add,
    /// Integer multiply.
    Mul,
    /// Shift.
    Shl,
    /// Two-way select (predicated move).
    Select,
    /// Fixed-function hash stage (§4 aggregation support).
    Hash,
}

/// Functional-unit class an operation competes for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Arithmetic/compare units — the "two ALUs" of Figure 1(b).
    Alu,
    /// Dedicated bit-manipulation logic (the output-buffer insert path);
    /// cheap combinational logic, provisioned separately from the ALUs.
    Bitwise,
    /// Memory ports into the DRAM IO buffer.
    Memory,
}

impl OpKind {
    /// Latency in accelerator cycles (fully pipelined units: a new op can
    /// enter every cycle).
    pub fn latency(self) -> u64 {
        match self {
            OpKind::Load | OpKind::Store => 1,
            OpKind::ICmp
            | OpKind::And
            | OpKind::Or
            | OpKind::Add
            | OpKind::Shl
            | OpKind::Select => 1,
            OpKind::Mul => 3,
            OpKind::Hash => 4,
        }
    }

    /// The functional-unit class this op occupies.
    pub fn fu_class(self) -> FuClass {
        match self {
            OpKind::Load | OpKind::Store => FuClass::Memory,
            OpKind::ICmp | OpKind::Add | OpKind::Mul | OpKind::Select | OpKind::Hash => {
                FuClass::Alu
            }
            OpKind::And | OpKind::Or | OpKind::Shl => FuClass::Bitwise,
        }
    }

    /// True for operations that occupy a memory port.
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Bytes moved over the local memory interface (for bandwidth limits).
    pub fn memory_bytes(self) -> u64 {
        if self.is_memory() {
            8
        } else {
            0
        }
    }
}

/// One operation in a loop body.
#[derive(Clone, Debug)]
pub struct Op {
    /// The operation class.
    pub kind: OpKind,
    /// Indices (within the body) of same-iteration operations this one
    /// depends on.
    pub deps: Vec<usize>,
    /// Loop-bookkeeping op (induction increment, branch): eliminated for
    /// all but one copy per unrolled group.
    pub induction: bool,
}

/// A loop kernel: a body plus loop-carried dependences.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// The body operations.
    pub body: Vec<Op>,
    /// `(from, to)` pairs: body op `from` of iteration *i* feeds body op
    /// `to` of iteration *i + 1*.
    pub carried: Vec<(usize, usize)>,
}

impl Kernel {
    /// Number of non-induction ops per iteration.
    pub fn work_ops(&self) -> usize {
        self.body.iter().filter(|o| !o.induction).count()
    }

    /// Validates dependence indices.
    ///
    /// # Panics
    /// Panics on out-of-range or forward same-iteration dependences.
    pub fn validate(&self) {
        for (i, op) in self.body.iter().enumerate() {
            for &d in &op.deps {
                assert!(d < i, "op {i} depends on non-earlier op {d}");
            }
        }
        for &(from, to) in &self.carried {
            assert!(from < self.body.len() && to < self.body.len());
        }
    }
}

/// Fluent builder for kernels.
#[derive(Default)]
pub struct KernelBuilder {
    body: Vec<Op>,
    carried: Vec<(usize, usize)>,
}

impl KernelBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation; returns its id.
    pub fn op(&mut self, kind: OpKind, deps: &[usize]) -> usize {
        self.body.push(Op {
            kind,
            deps: deps.to_vec(),
            induction: false,
        });
        self.body.len() - 1
    }

    /// Appends a loop-bookkeeping operation; returns its id.
    pub fn induction(&mut self, kind: OpKind, deps: &[usize]) -> usize {
        self.body.push(Op {
            kind,
            deps: deps.to_vec(),
            induction: true,
        });
        self.body.len() - 1
    }

    /// Declares a loop-carried dependence from `from` (iteration *i*) to
    /// `to` (iteration *i + 1*).
    pub fn carry(&mut self, from: usize, to: usize) -> &mut Self {
        self.carried.push((from, to));
        self
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    /// Panics if the kernel is structurally invalid.
    pub fn build(self) -> Kernel {
        let k = Kernel {
            body: self.body,
            carried: self.carried,
        };
        k.validate();
        k
    }
}

/// The JAFAR filter loop body (§2.2): load a 64-bit word, compare against
/// both range bounds in parallel (the two ALUs), AND the comparisons, and
/// OR the outcome into the output bitset at the tracked row offset. The
/// row-offset increment is loop bookkeeping (control/AGU logic, carried to
/// the next iteration); the bitmask insert depends on it.
pub fn jafar_filter_kernel() -> Kernel {
    let mut b = KernelBuilder::new();
    let inc = b.induction(OpKind::Add, &[]);
    let load = b.op(OpKind::Load, &[]);
    let cmp_lo = b.op(OpKind::ICmp, &[load]);
    let cmp_hi = b.op(OpKind::ICmp, &[load]);
    let and = b.op(OpKind::And, &[cmp_lo, cmp_hi]);
    let mask = b.op(OpKind::Shl, &[and, inc]);
    let _or = b.op(OpKind::Or, &[mask]);
    b.carry(inc, inc);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = KernelBuilder::new();
        let a = b.op(OpKind::Load, &[]);
        let c = b.op(OpKind::ICmp, &[a]);
        assert_eq!((a, c), (0, 1));
        let k = b.build();
        assert_eq!(k.body.len(), 2);
        assert_eq!(k.work_ops(), 2);
    }

    #[test]
    fn jafar_kernel_shape() {
        let k = jafar_filter_kernel();
        assert_eq!(k.body.len(), 7);
        assert_eq!(k.work_ops(), 6);
        assert_eq!(k.carried.len(), 1);
        // Both comparisons depend only on the load — they can issue in the
        // same cycle on the two parallel ALUs (§2.2, Figure 1(b)).
        assert_eq!(k.body[2].deps, vec![1]);
        assert_eq!(k.body[3].deps, vec![1]);
        // Exactly two ALU-class ops per iteration (the two compares).
        let alu_work = k
            .body
            .iter()
            .filter(|o| !o.induction && o.kind.fu_class() == FuClass::Alu)
            .count();
        assert_eq!(alu_work, 2);
    }

    #[test]
    fn fu_classes() {
        assert_eq!(OpKind::ICmp.fu_class(), FuClass::Alu);
        assert_eq!(OpKind::Or.fu_class(), FuClass::Bitwise);
        assert_eq!(OpKind::Load.fu_class(), FuClass::Memory);
        assert_eq!(OpKind::Hash.fu_class(), FuClass::Alu);
    }

    #[test]
    #[should_panic(expected = "non-earlier")]
    fn forward_dependence_rejected() {
        let k = Kernel {
            body: vec![Op {
                kind: OpKind::And,
                deps: vec![0],
                induction: false,
            }],
            carried: vec![],
        };
        k.validate();
    }

    #[test]
    fn op_latencies() {
        assert_eq!(OpKind::Mul.latency(), 3);
        assert_eq!(OpKind::Hash.latency(), 4);
        assert!(OpKind::Load.is_memory());
        assert!(!OpKind::ICmp.is_memory());
        assert_eq!(OpKind::Store.memory_bytes(), 8);
        assert_eq!(OpKind::And.memory_bytes(), 0);
    }
}
