//! # jafar-accel — an Aladdin-like accelerator modelling tool
//!
//! The paper evaluates JAFAR with **Aladdin** \[48\], a pre-RTL power/
//! performance model: the accelerated kernel is converted into a *dynamic
//! data dependence graph* (DDDG) capturing compute, memory and control
//! operations; the graph is optimised (loop unrolling, pipelining) and then
//! "executed cycle-by-cycle by a breadth-first traversal that also takes
//! into account constraints like memory bandwidth and available functional
//! units" (§3.1). No such tool exists in Rust, so this crate implements the
//! same methodology:
//!
//! - [`ir`]: a tiny operation IR for loop kernels, with per-op latencies
//!   and a builder for expressing a loop body plus loop-carried
//!   dependences;
//! - [`dddg`]: trace expansion of a kernel over N iterations into a DDDG,
//!   with loop unrolling (eliminating replicated induction overhead);
//! - [`schedule`]: resource-constrained list scheduling (breadth-first,
//!   cycle-by-cycle) under functional-unit counts and memory bandwidth,
//!   yielding total cycles and the steady-state initiation interval;
//! - [`power`]: per-op energy + static leakage, Aladdin's other output.
//!
//! `jafar-core` uses this tool to *derive* the JAFAR device's throughput
//! (one 64-bit word per 0.5 ns cycle with two ALUs — §2.2) rather than
//! hard-coding it.

pub mod dddg;
pub mod ir;
pub mod power;
pub mod schedule;

pub use dddg::Dddg;
pub use ir::{Kernel, KernelBuilder, Op, OpKind};
pub use power::{EnergyModel, EnergyReport};
pub use schedule::{Resources, Schedule};
