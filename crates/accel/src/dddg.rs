//! Dynamic data dependence graph construction (trace expansion).
//!
//! Aladdin builds its graph from a dynamic trace; for loop kernels that is
//! the body replicated once per iteration, with loop-carried edges linking
//! consecutive iterations. Unrolling by *U* replicates the body *U* times
//! per "super-iteration" while keeping a single copy of the loop
//! bookkeeping (induction/branch) ops — exactly the effect unrolling has on
//! a real datapath.

use crate::ir::{Kernel, OpKind};

/// One node of the expanded graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Operation class.
    pub kind: OpKind,
    /// Global indices of predecessor nodes.
    pub preds: Vec<u32>,
    /// Loop-bookkeeping node: handled by control/address-generation logic,
    /// occupies no scheduled functional unit.
    pub free: bool,
}

/// The expanded dependence graph.
#[derive(Clone, Debug)]
pub struct Dddg {
    /// Nodes in trace order (a topological order by construction).
    pub nodes: Vec<Node>,
    /// Iterations represented.
    pub iterations: u64,
}

impl Dddg {
    /// Expands `kernel` over `iterations` iterations with unroll factor
    /// `unroll` (≥ 1).
    ///
    /// # Panics
    /// Panics if `unroll` is zero.
    pub fn expand(kernel: &Kernel, iterations: u64, unroll: u64) -> Self {
        assert!(unroll >= 1, "unroll factor must be at least 1");
        kernel.validate();
        let mut nodes: Vec<Node> = Vec::new();
        // Maps body-op index -> global node index, for the previous
        // iteration (for carried edges) and the current one.
        let mut prev_iter: Vec<Option<u32>> = vec![None; kernel.body.len()];
        let mut done = 0u64;
        while done < iterations {
            let group = unroll.min(iterations - done);
            let mut group_last: Vec<Option<u32>> = prev_iter.clone();
            for u in 0..group {
                let mut this_iter: Vec<Option<u32>> = vec![None; kernel.body.len()];
                for (i, op) in kernel.body.iter().enumerate() {
                    // Induction ops appear once per unrolled group.
                    if op.induction && u != 0 {
                        // Later unrolled copies reuse the group's single
                        // induction node.
                        this_iter[i] = group_last[i];
                        continue;
                    }
                    let mut preds = Vec::with_capacity(op.deps.len() + 1);
                    for &d in &op.deps {
                        if let Some(p) = this_iter[d] {
                            preds.push(p);
                        }
                    }
                    // Loop-carried edges from the previous iteration.
                    for &(from, to) in &kernel.carried {
                        if to == i {
                            if let Some(p) = group_last[from] {
                                preds.push(p);
                            }
                        }
                    }
                    nodes.push(Node {
                        kind: op.kind,
                        preds,
                        free: op.induction,
                    });
                    this_iter[i] = Some((nodes.len() - 1) as u32);
                }
                for (i, v) in this_iter.iter().enumerate() {
                    if v.is_some() {
                        group_last[i] = *v;
                    }
                }
            }
            prev_iter = group_last;
            done += group;
        }
        Dddg { nodes, iterations }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The longest dependence chain (critical path) in *op latencies* —
    /// the unconstrained lower bound on schedule length.
    pub fn critical_path(&self) -> u64 {
        let mut finish = vec![0u64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let start = n
                .preds
                .iter()
                .map(|&p| finish[p as usize])
                .max()
                .unwrap_or(0);
            finish[i] = start + n.kind.latency();
        }
        finish.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{jafar_filter_kernel, KernelBuilder};

    #[test]
    fn expansion_counts() {
        let k = jafar_filter_kernel(); // 7 body ops, 1 induction
        let g = Dddg::expand(&k, 4, 1);
        assert_eq!(g.len(), 4 * 7);
        // Unroll 4: induction op shared — 4*6 work ops + 1 induction.
        let g4 = Dddg::expand(&k, 4, 4);
        assert_eq!(g4.len(), 4 * 6 + 1);
    }

    #[test]
    fn unroll_handles_remainder() {
        let k = jafar_filter_kernel();
        let g = Dddg::expand(&k, 10, 4); // groups of 4, 4, 2
        assert_eq!(g.len(), (4 * 6 + 1) + (4 * 6 + 1) + (2 * 6 + 1));
        assert_eq!(g.iterations, 10);
    }

    #[test]
    fn carried_dependence_serialises_without_unroll() {
        // A kernel that is *only* a carried chain: acc = acc + x.
        let mut b = KernelBuilder::new();
        let add = b.op(crate::ir::OpKind::Add, &[]);
        b.carry(add, add);
        let k = b.build();
        let g = Dddg::expand(&k, 8, 1);
        // Critical path = 8 chained adds.
        assert_eq!(g.critical_path(), 8);
    }

    #[test]
    fn independent_iterations_have_flat_critical_path() {
        // Load → cmp, no carried edges: iterations are fully parallel.
        let mut b = KernelBuilder::new();
        let l = b.op(crate::ir::OpKind::Load, &[]);
        b.op(crate::ir::OpKind::ICmp, &[l]);
        let k = b.build();
        let g = Dddg::expand(&k, 100, 1);
        assert_eq!(g.critical_path(), 2, "one load + one cmp, any iteration");
    }

    #[test]
    fn jafar_kernel_critical_path_per_iteration() {
        let k = jafar_filter_kernel();
        let g = Dddg::expand(&k, 1, 1);
        // load → cmp → and → shl → or = 5 single-cycle stages.
        assert_eq!(g.critical_path(), 5);
        // The induction chain, not the datapath, links iterations: the
        // last iteration's insert sits 2 stages after the 8-deep chain.
        let g8 = Dddg::expand(&k, 8, 1);
        assert_eq!(g8.critical_path(), 8 + 2, "8 inductions + shl + or");
        // Unrolling collapses the chain: one induction per group of 8.
        let g8u = Dddg::expand(&k, 8, 8);
        assert_eq!(g8u.critical_path(), 5);
    }

    #[test]
    fn empty_graph() {
        let k = jafar_filter_kernel();
        let g = Dddg::expand(&k, 0, 1);
        assert!(g.is_empty());
        assert_eq!(g.critical_path(), 0);
    }
}
