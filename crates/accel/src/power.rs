//! Energy modelling — Aladdin's second output.
//!
//! A coarse pre-RTL model in the Aladdin style: each issued operation costs
//! a per-class dynamic energy, and each provisioned functional unit leaks a
//! static power for the whole schedule. Constants are representative 40 nm
//! ASIC figures (order-of-magnitude; the reproduction uses them only for
//! relative comparisons such as JAFAR-vs-CPU energy per row).

use crate::schedule::{Resources, Schedule};

/// Per-class energy parameters.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Dynamic energy per ALU op, picojoules.
    pub alu_pj: f64,
    /// Dynamic energy per bitwise op, picojoules.
    pub bitwise_pj: f64,
    /// Dynamic energy per memory-port word transfer, picojoules.
    pub memory_pj: f64,
    /// Static leakage per provisioned functional unit per cycle, picojoules.
    pub leakage_pj_per_fu_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_pj: 0.5,
            bitwise_pj: 0.1,
            memory_pj: 2.0,
            leakage_pj_per_fu_cycle: 0.02,
        }
    }
}

/// Energy breakdown for one schedule.
#[derive(Clone, Copy, Debug)]
pub struct EnergyReport {
    /// Switching energy, picojoules.
    pub dynamic_pj: f64,
    /// Leakage energy, picojoules.
    pub static_pj: f64,
}

impl EnergyReport {
    /// Evaluates `model` over a computed schedule and its provisioning.
    pub fn evaluate(schedule: &Schedule, resources: &Resources, model: &EnergyModel) -> Self {
        let (alu, bitw, mem) = schedule.issued;
        let dynamic_pj = alu as f64 * model.alu_pj
            + bitw as f64 * model.bitwise_pj
            + mem as f64 * model.memory_pj;
        let fus = (resources.alus + resources.bitops + resources.mem_ports) as f64;
        let static_pj = fus * schedule.cycles as f64 * model.leakage_pj_per_fu_cycle;
        EnergyReport {
            dynamic_pj,
            static_pj,
        }
    }

    /// Total energy, picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.static_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dddg::Dddg;
    use crate::ir::jafar_filter_kernel;

    #[test]
    fn energy_scales_with_iterations() {
        let k = jafar_filter_kernel();
        let r = Resources::jafar_default();
        let m = EnergyModel::default();
        let e1 = {
            let s = Schedule::compute(&Dddg::expand(&k, 100, 8), &r);
            EnergyReport::evaluate(&s, &r, &m).total_pj()
        };
        let e2 = {
            let s = Schedule::compute(&Dddg::expand(&k, 200, 8), &r);
            EnergyReport::evaluate(&s, &r, &m).total_pj()
        };
        assert!(e2 > e1 * 1.8 && e2 < e1 * 2.2, "e1={e1} e2={e2}");
    }

    #[test]
    fn breakdown_components_positive() {
        let k = jafar_filter_kernel();
        let r = Resources::jafar_default();
        let s = Schedule::compute(&Dddg::expand(&k, 10, 1), &r);
        let e = EnergyReport::evaluate(&s, &r, &EnergyModel::default());
        assert!(e.dynamic_pj > 0.0);
        assert!(e.static_pj > 0.0);
        assert_eq!(e.total_pj(), e.dynamic_pj + e.static_pj);
        // Per-iteration dynamic energy: 2 alu (1.0) + 3 bitwise (0.3) +
        // 1 load (2.0) = 3.3 pJ.
        assert!((e.dynamic_pj - 33.0).abs() < 1e-9);
    }
}
