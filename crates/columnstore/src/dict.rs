//! Order-preserving dictionary encoding for string columns.
//!
//! §4 ("Data Types"): "many modern systems effectively handle string
//! columns as integers using dictionary compression (e.g., to handle
//! equality predicates)." The dictionary here is built over the column's
//! (static) domain and assigns codes in lexicographic order, so both
//! equality *and* range predicates over strings compile to the integer
//! range filters JAFAR evaluates natively.

use crate::error::PlanError;
use std::collections::HashMap;

/// An order-preserving string dictionary.
///
/// ```
/// use jafar_columnstore::Dictionary;
///
/// let dict = Dictionary::from_domain(&["SHIP", "AIR", "RAIL"]);
/// // Codes preserve lexicographic order, so string ranges become the
/// // integer ranges JAFAR filters natively.
/// assert!(dict.encode("AIR") < dict.encode("SHIP"));
/// let (lo, hi) = dict.code_range("A", "RZ").unwrap();
/// assert_eq!(dict.decode(lo), "AIR");
/// assert_eq!(dict.decode(hi), "RAIL");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    /// Sorted distinct values; index = code.
    values: Vec<String>,
    /// Reverse map.
    codes: HashMap<String, i64>,
}

impl Dictionary {
    /// Builds a dictionary over the given domain (duplicates allowed).
    pub fn from_domain<S: AsRef<str>>(domain: &[S]) -> Self {
        let mut values: Vec<String> = domain.iter().map(|s| s.as_ref().to_owned()).collect();
        values.sort_unstable();
        values.dedup();
        let codes = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as i64))
            .collect();
        Dictionary { values, codes }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The code of `value`, if in the domain.
    pub fn encode(&self, value: &str) -> Option<i64> {
        self.codes.get(value).copied()
    }

    /// The value of `code`.
    ///
    /// # Panics
    /// Panics for out-of-domain codes.
    pub fn decode(&self, code: i64) -> &str {
        &self.values[code as usize]
    }

    /// Encodes a whole column of values.
    ///
    /// # Errors
    /// [`PlanError::ValueNotInDictionary`] for the first value outside
    /// the domain.
    pub fn encode_column<S: AsRef<str>>(&self, values: &[S]) -> Result<Vec<i64>, PlanError> {
        values
            .iter()
            .map(|v| {
                self.encode(v.as_ref())
                    .ok_or_else(|| PlanError::ValueNotInDictionary {
                        value: v.as_ref().to_owned(),
                    })
            })
            .collect()
    }

    /// The inclusive code range equivalent to the string range
    /// `[lo, hi]` — meaningful because codes are order-preserving.
    /// Returns `None` when the range selects nothing.
    pub fn code_range(&self, lo: &str, hi: &str) -> Option<(i64, i64)> {
        let lo_code = self.values.partition_point(|v| v.as_str() < lo) as i64;
        let hi_code = self.values.partition_point(|v| v.as_str() <= hi) as i64 - 1;
        (lo_code <= hi_code).then_some((lo_code, hi_code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary {
        Dictionary::from_domain(&["MAIL", "SHIP", "AIR", "TRUCK", "RAIL", "AIR"])
    }

    #[test]
    fn codes_are_sorted_and_deduped() {
        let d = dict();
        assert_eq!(d.len(), 5);
        // Lexicographic: AIR < MAIL < RAIL < SHIP < TRUCK.
        assert_eq!(d.encode("AIR"), Some(0));
        assert_eq!(d.encode("MAIL"), Some(1));
        assert_eq!(d.encode("TRUCK"), Some(4));
        assert_eq!(d.encode("BARGE"), None);
        assert_eq!(d.decode(3), "SHIP");
    }

    #[test]
    fn order_preservation() {
        let d = dict();
        let a = d.encode("AIR").unwrap();
        let m = d.encode("MAIL").unwrap();
        assert!(a < m, "codes must preserve lexicographic order");
    }

    #[test]
    fn column_encode_decode_round_trip() {
        let d = dict();
        let col = d.encode_column(&["SHIP", "AIR", "SHIP"]).unwrap();
        let back: Vec<&str> = col.iter().map(|&c| d.decode(c)).collect();
        assert_eq!(back, vec!["SHIP", "AIR", "SHIP"]);
    }

    #[test]
    fn code_range_for_string_predicates() {
        let d = dict();
        // ["MAIL", "SHIP"] covers MAIL, RAIL, SHIP.
        let (lo, hi) = d.code_range("MAIL", "SHIP").unwrap();
        assert_eq!((lo, hi), (1, 3));
        // A range between values: ("N", "S") covers only RAIL ("SHIP" > "S").
        let (lo, hi) = d.code_range("N", "S").unwrap();
        assert_eq!(d.decode(lo), "RAIL");
        assert_eq!(lo, hi);
        // Empty range.
        assert!(d.code_range("X", "Z").is_none());
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::from_domain::<&str>(&[]);
        assert!(d.is_empty());
        assert_eq!(d.encode("A"), None);
    }
}
