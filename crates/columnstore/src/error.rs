//! Typed errors for plan and schema lookups.
//!
//! Unknown table, column, or dictionary-value references used to abort
//! with a panic deep inside the store. They are *plan* bugs, but a plan
//! may be assembled from user input or replayed from a recorded trace, so
//! the library surfaces them as [`PlanError`] and lets the embedding
//! decide — the hand-written TPC-H pipelines `expect` them away at their
//! static-schema boundary.

/// A name the plan referenced that the schema does not define.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The catalog has no table by this name.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// The table exists but has no such column.
    UnknownColumn {
        /// The table searched.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// An intermediate frame has no such column.
    UnknownFrameColumn {
        /// The missing column name.
        name: String,
    },
    /// A string value is outside a dictionary's domain.
    ValueNotInDictionary {
        /// The unencodable value.
        value: String,
    },
    /// A join input is longer than the `u32` position width addresses:
    /// emitting positions for it would silently alias rows (the wrap
    /// `BitSet::to_positions` guards against, surfaced as a typed error
    /// on the plan path instead of a truncated result).
    PositionOverflow {
        /// Which join input overflowed (`"build"` or `"probe"`).
        side: &'static str,
        /// The offending input length.
        rows: u64,
    },
}

impl From<crate::ops::JoinError> for PlanError {
    fn from(e: crate::ops::JoinError) -> Self {
        PlanError::PositionOverflow {
            side: e.side,
            rows: e.rows,
        }
    }
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanError::UnknownTable { name } => write!(f, "catalog has no table {name}"),
            PlanError::UnknownColumn { table, column } => {
                write!(f, "table {table} has no column {column}")
            }
            PlanError::UnknownFrameColumn { name } => write!(f, "frame has no column {name}"),
            PlanError::ValueNotInDictionary { value } => {
                write!(f, "value {value:?} not in dictionary")
            }
            PlanError::PositionOverflow { side, rows } => {
                write!(
                    f,
                    "join {side} side has {rows} rows, past the u32 position width"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_missing_item() {
        let e = PlanError::UnknownTable {
            name: "orders".into(),
        };
        assert_eq!(e.to_string(), "catalog has no table orders");
        let e = PlanError::UnknownColumn {
            table: "sales".into(),
            column: "x".into(),
        };
        assert_eq!(e.to_string(), "table sales has no column x");
        let e = PlanError::ValueNotInDictionary {
            value: "AIR".into(),
        };
        assert_eq!(e.to_string(), "value \"AIR\" not in dictionary");
    }
}
