//! Dense column storage.

use crate::dict::Dictionary;
use crate::error::PlanError;
use crate::value::{DataType, Date, Decimal};
use std::sync::Arc;

/// One column: a name, a logical type, and a dense `i64` vector (plus the
/// dictionary for string columns).
#[derive(Clone, Debug)]
pub struct Column {
    name: String,
    dtype: DataType,
    data: Vec<i64>,
    dict: Option<Arc<Dictionary>>,
}

impl Column {
    /// An integer column.
    pub fn int<S: Into<String>>(name: S, data: Vec<i64>) -> Self {
        Column {
            name: name.into(),
            dtype: DataType::Int,
            data,
            dict: None,
        }
    }

    /// A date column.
    pub fn date<S: Into<String>>(name: S, data: Vec<Date>) -> Self {
        Column {
            name: name.into(),
            dtype: DataType::Date,
            data: data.into_iter().map(Date::raw).collect(),
            dict: None,
        }
    }

    /// A decimal column.
    pub fn decimal<S: Into<String>>(name: S, data: Vec<Decimal>) -> Self {
        Column {
            name: name.into(),
            dtype: DataType::Decimal,
            data: data.into_iter().map(Decimal::raw).collect(),
            dict: None,
        }
    }

    /// A dictionary-encoded string column.
    ///
    /// # Panics
    /// Panics if a value is outside the dictionary's domain; use
    /// [`Column::try_strings`] to handle that as a typed error.
    pub fn strings<S: Into<String>, V: AsRef<str>>(
        name: S,
        values: &[V],
        dict: Arc<Dictionary>,
    ) -> Self {
        Column::try_strings(name, values, dict).expect("dictionary covers the column's values")
    }

    /// A dictionary-encoded string column, surfacing out-of-domain values
    /// as [`PlanError::ValueNotInDictionary`].
    ///
    /// # Errors
    /// [`PlanError::ValueNotInDictionary`] for the first value outside
    /// the dictionary's domain.
    pub fn try_strings<S: Into<String>, V: AsRef<str>>(
        name: S,
        values: &[V],
        dict: Arc<Dictionary>,
    ) -> Result<Self, PlanError> {
        let data = dict.encode_column(values)?;
        Ok(Column {
            name: name.into(),
            dtype: DataType::Str,
            data,
            dict: Some(dict),
        })
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw physical values.
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// The dictionary (string columns only).
    pub fn dict(&self) -> Option<&Dictionary> {
        self.dict.as_deref()
    }

    /// Physical value at `row`.
    pub fn get(&self, row: usize) -> i64 {
        self.data[row]
    }

    /// Value at `row` as a date.
    ///
    /// # Panics
    /// Panics if the column is not a date column.
    pub fn get_date(&self, row: usize) -> Date {
        assert_eq!(self.dtype, DataType::Date);
        Date(self.data[row])
    }

    /// Value at `row` as a decimal.
    ///
    /// # Panics
    /// Panics if the column is not a decimal column.
    pub fn get_decimal(&self, row: usize) -> Decimal {
        assert_eq!(self.dtype, DataType::Decimal);
        Decimal(self.data[row])
    }

    /// Value at `row` as a string.
    ///
    /// # Panics
    /// Panics if the column is not a string column.
    pub fn get_str(&self, row: usize) -> &str {
        self.dict
            .as_deref()
            .expect("not a string column")
            .decode(self.data[row])
    }

    /// Size of the physical data in bytes.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_constructors() {
        let c = Column::int("x", vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.bytes(), 24);

        let d = Column::date("d", vec![Date::from_ymd(1995, 6, 1)]);
        assert_eq!(d.get_date(0).to_string(), "1995-06-01");

        let m = Column::decimal("m", vec![Decimal::new(3, 50)]);
        assert_eq!(m.get_decimal(0).to_string(), "3.50");
    }

    #[test]
    fn string_column_round_trip() {
        let dict = Arc::new(Dictionary::from_domain(&["A", "N", "R"]));
        let c = Column::strings("flag", &["R", "A", "N", "A"], dict);
        assert_eq!(c.dtype(), DataType::Str);
        assert_eq!(c.get_str(0), "R");
        assert_eq!(c.get_str(3), "A");
        assert!(c.dict().is_some());
    }

    #[test]
    #[should_panic(expected = "not a string column")]
    fn wrong_type_access_panics() {
        Column::int("x", vec![1]).get_str(0);
    }
}
