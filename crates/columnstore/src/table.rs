//! Tables: named collections of equal-length columns.

use crate::column::Column;
use crate::error::PlanError;

/// A table.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Builds a table, checking column lengths agree.
    ///
    /// # Panics
    /// Panics on length mismatch or duplicate column names.
    pub fn new<S: Into<String>>(name: S, columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "column {} length differs from {}",
                    c.name(),
                    first.name()
                );
            }
        }
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name(), b.name(), "duplicate column {}", a.name());
            }
        }
        Table {
            name: name.into(),
            columns,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Looks up a column by name.
    ///
    /// # Errors
    /// [`PlanError::UnknownColumn`] if absent. Callers with a static
    /// schema (the hand-written TPC-H pipelines) `expect` this away at
    /// their boundary; plan-driven callers propagate it.
    pub fn column(&self, name: &str) -> Result<&Column, PlanError> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| PlanError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    /// True if the table has a column named `name`.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name() == name)
    }

    /// Total bytes across all columns.
    pub fn bytes(&self) -> u64 {
        self.columns.iter().map(Column::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_shape() {
        let t = Table::new(
            "t",
            vec![Column::int("a", vec![1, 2]), Column::int("b", vec![10, 20])],
        );
        assert_eq!(t.rows(), 2);
        assert_eq!(t.column("b").unwrap().get(1), 20);
        assert!(t.has_column("a"));
        assert!(!t.has_column("c"));
        assert_eq!(t.bytes(), 32);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("e", vec![]);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "length differs")]
    fn ragged_columns_rejected() {
        Table::new(
            "t",
            vec![Column::int("a", vec![1]), Column::int("b", vec![1, 2])],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        Table::new(
            "t",
            vec![Column::int("a", vec![1]), Column::int("a", vec![2])],
        );
    }

    #[test]
    fn missing_column_is_typed_error() {
        let err = Table::new("t", vec![]).column("x").unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownColumn {
                table: "t".into(),
                column: "x".into(),
            }
        );
    }
}
