//! Select pushdown planning.
//!
//! The planner decides, per full-column scan, whether the select runs as a
//! CPU kernel or is pushed down to JAFAR. The §2.2/§3.3 constraints shape
//! the decision:
//!
//! - JAFAR consumes *one complete column at a time*, so only full scans
//!   (not positional refinements) are candidates;
//! - the per-page invocation and rank-ownership handoff have fixed costs,
//!   so tiny columns are not worth pushing down;
//! - pushdown requires a device to be present and the column resident on
//!   a rank the query manager can grant.

use crate::ops::scan::ScanPredicate;

/// How a scan is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanImpl {
    /// Branchy CPU kernel (the paper's baseline).
    CpuBranching,
    /// Predicated (branch-free) CPU kernel.
    CpuPredicated,
    /// SIMD CPU kernel.
    CpuVectorized,
    /// Pushed down to the JAFAR device.
    Jafar,
}

/// The pushdown planner.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    /// Whether a JAFAR device is available to this query.
    pub jafar_available: bool,
    /// Minimum rows for pushdown to amortise invocation/ownership costs.
    pub min_rows_for_pushdown: u64,
    /// The CPU kernel used when not pushing down.
    pub cpu_kernel: ScanImpl,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            jafar_available: false,
            min_rows_for_pushdown: 4096,
            cpu_kernel: ScanImpl::CpuBranching,
        }
    }
}

impl Planner {
    /// A planner with JAFAR enabled.
    pub fn with_jafar() -> Self {
        Planner {
            jafar_available: true,
            ..Planner::default()
        }
    }

    /// Chooses the implementation for a full scan of `rows` rows.
    pub fn choose(&self, rows: u64, predicate: ScanPredicate) -> ScanImpl {
        let (lo, hi) = predicate.bounds();
        let nontrivial = lo <= hi;
        if self.jafar_available && nontrivial && rows >= self.min_rows_for_pushdown {
            ScanImpl::Jafar
        } else {
            self.cpu_kernel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cpu() {
        let p = Planner::default();
        assert_eq!(
            p.choose(1_000_000, ScanPredicate::Lt(5)),
            ScanImpl::CpuBranching
        );
    }

    #[test]
    fn pushdown_when_available_and_large() {
        let p = Planner::with_jafar();
        assert_eq!(p.choose(1_000_000, ScanPredicate::Lt(5)), ScanImpl::Jafar);
        assert_eq!(
            p.choose(100, ScanPredicate::Lt(5)),
            ScanImpl::CpuBranching,
            "too small to amortise invocation cost"
        );
    }

    #[test]
    fn empty_predicate_stays_on_cpu() {
        let p = Planner::with_jafar();
        // An always-false predicate needs no accelerator.
        assert_eq!(
            p.choose(1_000_000, ScanPredicate::Between(10, 5)),
            ScanImpl::CpuBranching
        );
    }

    #[test]
    fn kernel_override() {
        let p = Planner {
            cpu_kernel: ScanImpl::CpuVectorized,
            ..Planner::default()
        };
        assert_eq!(
            p.choose(10, ScanPredicate::Ge(0)),
            ScanImpl::CpuVectorized
        );
    }
}
