//! Select pushdown planning.
//!
//! The planner decides, per full-column scan, whether the select runs as a
//! CPU kernel or is pushed down to JAFAR. The §2.2/§3.3 constraints shape
//! the decision:
//!
//! - JAFAR consumes *one complete column at a time*, so only full scans
//!   (not positional refinements) are candidates;
//! - the per-page invocation and rank-ownership handoff have fixed costs,
//!   so tiny columns are not worth pushing down;
//! - pushdown requires a device to be present and the column resident on
//!   a rank the query manager can grant.

use crate::ops::scan::ScanPredicate;

/// How a scan is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanImpl {
    /// Branchy CPU kernel (the paper's baseline).
    CpuBranching,
    /// Predicated (branch-free) CPU kernel.
    CpuPredicated,
    /// SIMD CPU kernel.
    CpuVectorized,
    /// Pushed down to the JAFAR device.
    Jafar,
    /// Pushed down to K per-rank JAFAR devices over a rank-partitioned
    /// column (the discussion section's one-device-per-rank scaling).
    JafarParallel,
}

impl ScanImpl {
    /// True for either device pushdown flavour.
    pub fn is_pushdown(self) -> bool {
        matches!(self, ScanImpl::Jafar | ScanImpl::JafarParallel)
    }
}

/// The pushdown planner.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    /// Whether a JAFAR device is available to this query.
    pub jafar_available: bool,
    /// Ranks with their own device that a scan may be striped across.
    /// `<= 1` keeps pushdown on the single-device path; `>= 2` makes the
    /// planner choose [`ScanImpl::JafarParallel`] for eligible scans.
    pub parallel_ranks: u32,
    /// Minimum rows for pushdown to amortise invocation/ownership costs.
    pub min_rows_for_pushdown: u64,
    /// The CPU kernel used when not pushing down.
    pub cpu_kernel: ScanImpl,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            jafar_available: false,
            parallel_ranks: 1,
            min_rows_for_pushdown: 4096,
            cpu_kernel: ScanImpl::CpuBranching,
        }
    }
}

impl Planner {
    /// A planner with JAFAR enabled.
    pub fn with_jafar() -> Self {
        Planner {
            jafar_available: true,
            ..Planner::default()
        }
    }

    /// A planner with rank-parallel JAFAR enabled over `ranks` ranks.
    pub fn with_jafar_parallel(ranks: u32) -> Self {
        Planner {
            jafar_available: true,
            parallel_ranks: ranks,
            ..Planner::default()
        }
    }

    /// Chooses the implementation for a full scan of `rows` rows.
    pub fn choose(&self, rows: u64, predicate: ScanPredicate) -> ScanImpl {
        let (lo, hi) = predicate.bounds();
        let nontrivial = lo <= hi;
        if self.jafar_available && nontrivial && rows >= self.min_rows_for_pushdown {
            if self.parallel_ranks >= 2 {
                ScanImpl::JafarParallel
            } else {
                ScanImpl::Jafar
            }
        } else {
            self.cpu_kernel
        }
    }
}

/// Health of the pushdown path, as a classic three-state circuit breaker.
///
/// The execution layer records the outcome of each pushed-down scan (did
/// the resilient driver finish it on the device, or did it fall back?).
/// After `threshold` consecutive failures the breaker *opens* and the
/// planner routes scans to the CPU kernel for the next `cooldown` scans;
/// then one probe scan is allowed through (*half-open*): success closes
/// the breaker, failure re-opens it for another cooldown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerState {
    Closed { failures: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

/// See [`CircuitBreaker`]'s type-level docs.
#[derive(Clone, Copy, Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Consecutive failures before opening.
    pub threshold: u32,
    /// Scans routed to the CPU while open, before the half-open probe.
    pub cooldown: u32,
    trips: u64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(2, 8)
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given policy.
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed { failures: 0 },
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
            trips: 0,
        }
    }

    /// Asks whether the next scan may use the device. Advances the
    /// open-state cooldown; when it runs out, admits one half-open probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { remaining } => {
                if remaining <= 1 {
                    self.state = BreakerState::HalfOpen;
                } else {
                    self.state = BreakerState::Open {
                        remaining: remaining - 1,
                    };
                }
                false
            }
        }
    }

    /// Records a device-path scan that completed without falling back.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed { failures: 0 };
    }

    /// Records a device-path scan that failed (fell back to the CPU).
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    self.trip();
                } else {
                    self.state = BreakerState::Closed { failures };
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open {
            remaining: self.cooldown,
        };
        self.trips += 1;
    }

    /// True while scans are being routed away from the device.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cpu() {
        let p = Planner::default();
        assert_eq!(
            p.choose(1_000_000, ScanPredicate::Lt(5)),
            ScanImpl::CpuBranching
        );
    }

    #[test]
    fn pushdown_when_available_and_large() {
        let p = Planner::with_jafar();
        assert_eq!(p.choose(1_000_000, ScanPredicate::Lt(5)), ScanImpl::Jafar);
        assert_eq!(
            p.choose(100, ScanPredicate::Lt(5)),
            ScanImpl::CpuBranching,
            "too small to amortise invocation cost"
        );
    }

    #[test]
    fn parallel_pushdown_when_ranks_available() {
        let p = Planner::with_jafar_parallel(4);
        assert_eq!(
            p.choose(1_000_000, ScanPredicate::Lt(5)),
            ScanImpl::JafarParallel
        );
        assert!(ScanImpl::JafarParallel.is_pushdown());
        assert_eq!(
            p.choose(100, ScanPredicate::Lt(5)),
            ScanImpl::CpuBranching,
            "size threshold applies to the parallel flavour too"
        );
        // One rank degenerates to the single-device plan.
        let single = Planner::with_jafar_parallel(1);
        assert_eq!(
            single.choose(1_000_000, ScanPredicate::Lt(5)),
            ScanImpl::Jafar
        );
    }

    #[test]
    fn empty_predicate_stays_on_cpu() {
        let p = Planner::with_jafar();
        // An always-false predicate needs no accelerator.
        assert_eq!(
            p.choose(1_000_000, ScanPredicate::Between(10, 5)),
            ScanImpl::CpuBranching
        );
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_via_half_open() {
        let mut b = CircuitBreaker::new(2, 3);
        assert!(b.allow());
        b.record_failure();
        assert!(!b.is_open(), "one failure below threshold");
        b.record_failure();
        assert!(b.is_open(), "second consecutive failure trips it");
        assert_eq!(b.trips(), 1);
        // Cooldown: three scans denied, then the half-open probe.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "half-open probe admitted");
        b.record_success();
        assert!(!b.is_open());
        assert!(b.allow(), "closed again after a good probe");
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(1, 1);
        b.record_failure();
        assert!(b.is_open());
        assert!(!b.allow()); // consumes the cooldown → half-open
        assert!(b.allow(), "probe");
        b.record_failure();
        assert!(b.is_open(), "probe failure re-opens");
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, 4);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert!(!b.is_open(), "non-consecutive failures never trip");
    }

    #[test]
    fn kernel_override() {
        let p = Planner {
            cpu_kernel: ScanImpl::CpuVectorized,
            ..Planner::default()
        };
        assert_eq!(p.choose(10, ScanPredicate::Ge(0)), ScanImpl::CpuVectorized);
    }
}
