//! Logical types over the physical `i64` representation.
//!
//! Every column is physically a dense `i64` vector — the representation
//! JAFAR filters natively ("integers are sufficient to capture most
//! datatypes in modern data systems", §2.2). Logical types define how
//! those integers are produced and formatted: calendar dates as day
//! numbers, fixed-point decimals as scaled integers, strings as dictionary
//! codes.

use std::fmt;

/// Logical column types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataType {
    /// Plain 64-bit integer.
    Int,
    /// Calendar date stored as days since 1970-01-01.
    Date,
    /// Fixed-point decimal with two fractional digits, stored ×100.
    Decimal,
    /// Dictionary-encoded string (code into the column's [`crate::dict::Dictionary`]).
    Str,
}

/// A calendar date (proleptic Gregorian), physically a day number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date(pub i64);

impl Date {
    /// Builds a date from year/month/day.
    ///
    /// # Panics
    /// Panics on out-of-range month/day.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month}");
        assert!((1..=31).contains(&day), "day {day}");
        // Howard Hinnant's days_from_civil algorithm.
        let y = year as i64 - i64::from(month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date(era * 146_097 + doe - 719_468)
    }

    /// Decomposes into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = doy - (153 * mp + 2) / 5 + 1;
        let m = if mp < 10 { mp + 3 } else { mp - 9 };
        ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
    }

    /// The date `days` later.
    pub fn plus_days(self, days: i64) -> Date {
        Date(self.0 + days)
    }

    /// The raw day number (the column value).
    pub fn raw(self) -> i64 {
        self.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A two-fractional-digit fixed-point decimal, physically the value ×100.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Decimal(pub i64);

impl Decimal {
    /// Builds from whole and hundredth parts, e.g. `(12, 34)` = 12.34 and
    /// `(-12, 34)` = −12.34.
    pub fn new(whole: i64, cents: u32) -> Self {
        assert!(cents < 100);
        let magnitude = (whole.unsigned_abs() * 100 + cents as u64) as i64;
        Decimal(if whole < 0 { -magnitude } else { magnitude })
    }

    /// From a raw scaled value.
    pub fn from_raw(raw: i64) -> Self {
        Decimal(raw)
    }

    /// The raw scaled value (the column value).
    pub fn raw(self) -> i64 {
        self.0
    }

    /// As `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / 100.0
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let a = self.0.abs();
        write!(f, "{sign}{}.{:02}", a / 100, a % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_round_trip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1992, 2, 29),
            (1998, 12, 1),
            (1995, 3, 15),
            (2000, 1, 1),
            (1900, 3, 1),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.to_ymd(), (y, m, d));
        }
        assert_eq!(Date::from_ymd(1970, 1, 1).raw(), 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).raw(), 1);
    }

    #[test]
    fn date_ordering_matches_chronology() {
        let a = Date::from_ymd(1994, 1, 1);
        let b = Date::from_ymd(1994, 12, 31);
        let c = Date::from_ymd(1995, 1, 1);
        assert!(a < b && b < c);
        assert_eq!(a.plus_days(364), b);
        assert_eq!(b.plus_days(1), c);
    }

    #[test]
    fn date_display() {
        assert_eq!(Date::from_ymd(1998, 9, 2).to_string(), "1998-09-02");
    }

    #[test]
    fn tpch_interval_arithmetic() {
        // Q1's `l_shipdate <= date '1998-12-01' - interval '90' day`.
        let cutoff = Date::from_ymd(1998, 12, 1).plus_days(-90);
        assert_eq!(cutoff.to_string(), "1998-09-02");
    }

    #[test]
    fn decimal_round_trip() {
        let d = Decimal::new(12, 34);
        assert_eq!(d.raw(), 1234);
        assert_eq!(d.to_string(), "12.34");
        assert_eq!(d.to_f64(), 12.34);
        assert_eq!(Decimal::new(0, 5).to_string(), "0.05");
        assert_eq!(Decimal::from_raw(-1234).to_string(), "-12.34");
    }

    #[test]
    fn decimal_ordering() {
        assert!(Decimal::new(1, 99) < Decimal::new(2, 0));
    }
}
