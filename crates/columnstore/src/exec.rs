//! The bulk-processing execution context.
//!
//! `ExecContext` wraps the functional operators with (a) the pushdown
//! planner annotation and (b) operator-trace recording, so a query written
//! as a sequence of bulk operator calls is simultaneously *executed* (for
//! results) and *traced* (for the simulator's timing replay). This is the
//! operator-at-a-time, full-column style of the paper's in-house prototype.

use crate::error::PlanError;
use crate::ops::agg::{hash_group_by, AggSpec, GroupedResult};
use crate::ops::join::{anti_join, hash_join, semi_join};
use crate::ops::project::gather;
use crate::ops::scan::{scan, scan_at, ScanPredicate};
use crate::ops::sort::{sort_rows_by, Dir};
use crate::positions::PositionList;
use crate::pushdown::{CircuitBreaker, Planner};
use crate::table::Table;
use crate::trace::{OpTrace, TraceEvent};

/// A query execution context: planner + pushdown health + trace.
pub struct ExecContext {
    planner: Planner,
    breaker: CircuitBreaker,
    fallback_scans: u64,
    trace: OpTrace,
}

impl ExecContext {
    /// A context with the given planner and a closed circuit breaker.
    pub fn new(planner: Planner) -> Self {
        ExecContext {
            planner,
            breaker: CircuitBreaker::default(),
            fallback_scans: 0,
            trace: OpTrace::new(),
        }
    }

    /// The accumulated trace.
    pub fn trace(&self) -> &OpTrace {
        &self.trace
    }

    /// Consumes the context, returning the trace.
    pub fn into_trace(self) -> OpTrace {
        self.trace
    }

    /// The pushdown circuit breaker. The driving layer reports device-path
    /// outcomes here ([`CircuitBreaker::record_success`] /
    /// [`CircuitBreaker::record_failure`]); while it is open, scans the
    /// planner would push down run on the CPU kernel instead.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Mutable breaker access for outcome reporting.
    pub fn breaker_mut(&mut self) -> &mut CircuitBreaker {
        &mut self.breaker
    }

    /// Scans the planner wanted on the device but the breaker sent to the
    /// CPU.
    pub fn fallback_scans(&self) -> u64 {
        self.fallback_scans
    }

    /// Full-column select on `table.column`.
    ///
    /// # Errors
    /// [`PlanError::UnknownColumn`] if the table has no such column.
    pub fn select(
        &mut self,
        table: &Table,
        column: &str,
        predicate: ScanPredicate,
    ) -> Result<PositionList, PlanError> {
        let col = table.column(column)?;
        let out = scan(col, predicate);
        let mut implementation = self.planner.choose(col.len() as u64, predicate);
        if implementation.is_pushdown() && !self.breaker.allow() {
            implementation = self.planner.cpu_kernel;
            self.fallback_scans += 1;
        }
        self.trace.push(TraceEvent::Scan {
            table: table.name().to_owned(),
            column: column.to_owned(),
            rows: col.len() as u64,
            matches: out.len() as u64,
            bounds: predicate.bounds(),
            implementation,
        });
        Ok(out)
    }

    /// Conjunctive refinement: apply `predicate` to `column` only at
    /// `positions`.
    ///
    /// # Errors
    /// [`PlanError::UnknownColumn`] if the table has no such column.
    pub fn select_at(
        &mut self,
        table: &Table,
        column: &str,
        positions: &PositionList,
        predicate: ScanPredicate,
    ) -> Result<PositionList, PlanError> {
        let col = table.column(column)?;
        let out = scan_at(col, positions, predicate);
        self.trace.push(TraceEvent::ScanAt {
            table: table.name().to_owned(),
            column: column.to_owned(),
            positions: positions.len() as u64,
            matches: out.len() as u64,
        });
        Ok(out)
    }

    /// Project: gather `table.column` values at `positions`.
    ///
    /// # Errors
    /// [`PlanError::UnknownColumn`] if the table has no such column.
    pub fn project(
        &mut self,
        table: &Table,
        column: &str,
        positions: &PositionList,
    ) -> Result<Vec<i64>, PlanError> {
        let col = table.column(column)?;
        let out = gather(col, positions);
        self.trace.push(TraceEvent::Gather {
            table: table.name().to_owned(),
            column: column.to_owned(),
            positions: positions.len() as u64,
        });
        Ok(out)
    }

    /// Hash join of pre-gathered key vectors; returns `(build, probe)`
    /// index pairs into the inputs.
    ///
    /// # Errors
    /// [`PlanError::PositionOverflow`] when an input outgrows the `u32`
    /// position width.
    pub fn join(
        &mut self,
        build_keys: &[i64],
        probe_keys: &[i64],
    ) -> Result<Vec<(u32, u32)>, PlanError> {
        let out = hash_join(build_keys, probe_keys)?;
        self.trace.push(TraceEvent::HashBuild {
            rows: build_keys.len() as u64,
        });
        self.trace.push(TraceEvent::HashProbe {
            rows: probe_keys.len() as u64,
            matches: out.len() as u64,
        });
        Ok(out)
    }

    /// Semi-join (`EXISTS`): probe indices with a build match.
    ///
    /// # Errors
    /// [`PlanError::PositionOverflow`] when the probe input outgrows the
    /// `u32` position width.
    pub fn semi_join(
        &mut self,
        build_keys: &[i64],
        probe_keys: &[i64],
    ) -> Result<Vec<u32>, PlanError> {
        let out = semi_join(build_keys, probe_keys)?;
        self.trace.push(TraceEvent::HashBuild {
            rows: build_keys.len() as u64,
        });
        self.trace.push(TraceEvent::HashProbe {
            rows: probe_keys.len() as u64,
            matches: out.len() as u64,
        });
        Ok(out)
    }

    /// Anti-join (`NOT EXISTS`): probe indices without a build match.
    ///
    /// # Errors
    /// [`PlanError::PositionOverflow`] when the probe input outgrows the
    /// `u32` position width.
    pub fn anti_join(
        &mut self,
        build_keys: &[i64],
        probe_keys: &[i64],
    ) -> Result<Vec<u32>, PlanError> {
        let out = anti_join(build_keys, probe_keys)?;
        self.trace.push(TraceEvent::HashBuild {
            rows: build_keys.len() as u64,
        });
        self.trace.push(TraceEvent::HashProbe {
            rows: probe_keys.len() as u64,
            matches: out.len() as u64,
        });
        Ok(out)
    }

    /// Grouped aggregation.
    pub fn group_by(&mut self, group_cols: &[&[i64]], aggs: &[AggSpec<'_>]) -> GroupedResult {
        let rows = group_cols
            .first()
            .map(|c| c.len())
            .or_else(|| aggs.iter().map(|a| a.input.len()).max())
            .unwrap_or(0);
        let out = hash_group_by(group_cols, aggs);
        self.trace.push(TraceEvent::Aggregate {
            rows: rows as u64,
            groups: out.len() as u64,
            aggregates: aggs.len() as u64,
        });
        out
    }

    /// Sort: row order by keys.
    pub fn sort(&mut self, keys: &[(&[i64], Dir)]) -> Vec<u32> {
        let out = sort_rows_by(keys);
        self.trace.push(TraceEvent::Sort {
            rows: out.len() as u64,
        });
        out
    }

    /// Records a result materialization of `rows` × `columns`.
    pub fn materialize(&mut self, rows: u64, columns: u64) {
        self.trace.push(TraceEvent::Materialize { rows, columns });
    }

    /// Reusable helper: late-materialized select-project — select on one
    /// column, project others at the survivors.
    ///
    /// # Errors
    /// [`PlanError::UnknownColumn`] if any named column is absent.
    pub fn select_project(
        &mut self,
        table: &Table,
        select_col: &str,
        predicate: ScanPredicate,
        project_cols: &[&str],
    ) -> Result<(PositionList, Vec<Vec<i64>>), PlanError> {
        let positions = self.select(table, select_col, predicate)?;
        let projected = project_cols
            .iter()
            .map(|c| self.project(table, c, &positions))
            .collect::<Result<_, _>>()?;
        Ok((positions, projected))
    }
}

/// Re-export for query authors.
pub use crate::ops::scan::ScanPredicate as Pred;
/// Re-export for query authors.
pub use crate::ops::sort::Dir as SortDir;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::ops::agg::AggKind;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::int("k", vec![1, 2, 3, 4, 5, 6]),
                Column::int("v", vec![10, 20, 30, 40, 50, 60]),
                Column::int("g", vec![0, 1, 0, 1, 0, 1]),
            ],
        )
    }

    #[test]
    fn select_project_pipeline() {
        let t = table();
        let mut cx = ExecContext::new(Planner::default());
        let (pos, cols) = cx
            .select_project(&t, "k", Pred::Ge(4), &["v", "g"])
            .unwrap();
        assert_eq!(pos.as_slice(), &[3, 4, 5]);
        assert_eq!(cols[0], vec![40, 50, 60]);
        assert_eq!(cols[1], vec![1, 0, 1]);
        assert_eq!(cx.trace().len(), 3, "1 scan + 2 gathers");
    }

    #[test]
    fn select_at_refinement_traced() {
        let t = table();
        let mut cx = ExecContext::new(Planner::default());
        let first = cx.select(&t, "k", Pred::Ge(2)).unwrap();
        let refined = cx.select_at(&t, "g", &first, Pred::Eq(1)).unwrap();
        assert_eq!(refined.as_slice(), &[1, 3, 5]);
        assert_eq!(cx.trace().rows_scanned(), 6 + 5);
    }

    #[test]
    fn join_and_group_traced() {
        let t = table();
        let mut cx = ExecContext::new(Planner::default());
        let all: PositionList = (0..6u32).collect();
        let k = cx.project(&t, "k", &all).unwrap();
        let pairs = cx.join(&k, &[2, 4, 9]).unwrap();
        assert_eq!(pairs.len(), 2);
        let g = cx.project(&t, "g", &all).unwrap();
        let v = cx.project(&t, "v", &all).unwrap();
        let grouped = cx.group_by(
            &[&g],
            &[AggSpec {
                kind: AggKind::Sum,
                input: &v,
            }],
        );
        assert_eq!(grouped.len(), 2);
        let events = cx.trace().events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::HashProbe { matches: 2, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Aggregate { groups: 2, .. })));
    }

    #[test]
    fn pushdown_annotation_in_trace() {
        let t = Table::new("big", vec![Column::int("x", (0..10_000).collect())]);
        let mut cx = ExecContext::new(Planner::with_jafar());
        let pos = cx.select(&t, "x", Pred::Lt(100)).unwrap();
        assert_eq!(pos.len(), 100);
        assert_eq!(cx.trace().jafar_scans(), 1);
    }

    #[test]
    fn open_breaker_routes_pushdown_scans_to_cpu() {
        let t = Table::new("big", vec![Column::int("x", (0..10_000).collect())]);
        let mut cx = ExecContext::new(Planner::with_jafar());
        // Two consecutive device failures (reported by the driving layer)
        // trip the default breaker.
        cx.breaker_mut().record_failure();
        cx.breaker_mut().record_failure();
        assert!(cx.breaker().is_open());
        let pos = cx.select(&t, "x", Pred::Lt(100)).unwrap();
        assert_eq!(pos.len(), 100, "results identical on the CPU path");
        assert_eq!(cx.trace().jafar_scans(), 0, "scan was rerouted");
        assert_eq!(cx.fallback_scans(), 1);
        // A healthy report closes it again and pushdown resumes.
        while !cx.breaker_mut().allow() {}
        cx.breaker_mut().record_success();
        cx.select(&t, "x", Pred::Lt(100)).unwrap();
        assert_eq!(cx.trace().jafar_scans(), 1);
    }

    #[test]
    fn open_breaker_also_reroutes_parallel_pushdown() {
        let t = Table::new("big", vec![Column::int("x", (0..10_000).collect())]);
        let mut cx = ExecContext::new(Planner::with_jafar_parallel(4));
        cx.select(&t, "x", Pred::Lt(100)).unwrap();
        assert_eq!(
            cx.trace().jafar_scans(),
            1,
            "parallel scans count as pushdown"
        );
        cx.breaker_mut().record_failure();
        cx.breaker_mut().record_failure();
        assert!(cx.breaker().is_open());
        let pos = cx.select(&t, "x", Pred::Lt(100)).unwrap();
        assert_eq!(pos.len(), 100);
        assert_eq!(cx.trace().jafar_scans(), 1, "second scan rerouted to CPU");
        assert_eq!(cx.fallback_scans(), 1);
    }

    #[test]
    fn sort_traced() {
        let t = table();
        let mut cx = ExecContext::new(Planner::default());
        let all: PositionList = (0..6u32).collect();
        let v = cx.project(&t, "v", &all).unwrap();
        let order = cx.sort(&[(&v, SortDir::Desc)]);
        assert_eq!(order[0], 5);
        assert!(matches!(
            cx.trace().events().last(),
            Some(TraceEvent::Sort { rows: 6 })
        ));
    }
}
