//! Operator traces: what a query execution *did*, for the simulator to
//! time.
//!
//! Functional query processing (this crate) and performance modelling
//! (`jafar-sim`) are decoupled through a trace of operator events. Each
//! event names the data touched (table/column, row counts, output
//! cardinality) and, for scans, the chosen implementation; the simulator
//! replays events against the memory hierarchy to obtain timing and the
//! memory-controller counters of Figure 4.

use crate::pushdown::ScanImpl;

/// One operator event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A full-column select.
    Scan {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Input rows.
        rows: u64,
        /// Qualifying rows.
        matches: u64,
        /// Inclusive predicate bounds (for replaying the exact filter).
        bounds: (i64, i64),
        /// Chosen implementation.
        implementation: ScanImpl,
    },
    /// A positional refinement scan (reads only `positions` rows).
    ScanAt {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Positions examined.
        positions: u64,
        /// Qualifying rows.
        matches: u64,
    },
    /// A gather (project) of `positions` values from a column.
    Gather {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Values gathered.
        positions: u64,
    },
    /// Hash-table build over `rows` keys.
    HashBuild {
        /// Build-side rows.
        rows: u64,
    },
    /// Hash-table probe with `rows` keys producing `matches` pairs.
    HashProbe {
        /// Probe-side rows.
        rows: u64,
        /// Output pairs.
        matches: u64,
    },
    /// Group-by aggregation over `rows` input rows into `groups` groups
    /// with `aggregates` aggregate columns.
    Aggregate {
        /// Input rows.
        rows: u64,
        /// Output groups.
        groups: u64,
        /// Aggregate count.
        aggregates: u64,
    },
    /// Sort of `rows` rows.
    Sort {
        /// Rows sorted.
        rows: u64,
    },
    /// Result materialization of `rows` × `columns` values.
    Materialize {
        /// Result rows.
        rows: u64,
        /// Result columns.
        columns: u64,
    },
}

/// A query's operator trace.
#[derive(Clone, Debug, Default)]
pub struct OpTrace {
    events: Vec<TraceEvent>,
}

impl OpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        OpTrace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total rows read by scans (full + positional).
    pub fn rows_scanned(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Scan { rows, .. } => *rows,
                TraceEvent::ScanAt { positions, .. } => *positions,
                _ => 0,
            })
            .sum()
    }

    /// Scans annotated for JAFAR pushdown (single-device or rank-parallel).
    pub fn jafar_scans(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Scan { implementation, .. } if implementation.is_pushdown()
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = OpTrace::new();
        t.push(TraceEvent::Scan {
            table: "l".into(),
            column: "a".into(),
            rows: 100,
            matches: 10,
            bounds: (0, 5),
            implementation: ScanImpl::Jafar,
        });
        t.push(TraceEvent::Gather {
            table: "l".into(),
            column: "b".into(),
            positions: 10,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows_scanned(), 100);
        assert_eq!(t.jafar_scans(), 1);
        assert!(matches!(t.events()[1], TraceEvent::Gather { .. }));
    }

    #[test]
    fn scan_at_counts_positions() {
        let mut t = OpTrace::new();
        t.push(TraceEvent::ScanAt {
            table: "l".into(),
            column: "c".into(),
            positions: 42,
            matches: 7,
        });
        assert_eq!(t.rows_scanned(), 42);
        assert_eq!(t.jafar_scans(), 0);
    }
}
