//! Position lists — the currency of late materialization.
//!
//! A select produces *positions* (qualifying row indices); projects gather
//! values at those positions; the final materialization happens as late as
//! possible (§2.2: "to fit column-stores with a late materialization
//! execution engine, JAFAR is designed to consume one complete column at a
//! time" — its bitset output converts to a position list).

use jafar_common::bitset::BitSet;

/// A sorted list of qualifying row indices.
///
/// ```
/// use jafar_columnstore::PositionList;
///
/// // Conjunctive selects intersect their position lists.
/// let by_date = PositionList::from_sorted(vec![1, 4, 7, 9]);
/// let by_qty = PositionList::from_sorted(vec![4, 5, 9]);
/// assert_eq!(by_date.intersect(&by_qty).as_slice(), &[4, 9]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PositionList(pub Vec<u32>);

impl PositionList {
    /// An empty list.
    pub fn new() -> Self {
        PositionList(Vec::new())
    }

    /// From a raw (sorted) vector.
    ///
    /// # Panics
    /// Panics (in debug builds) if not strictly ascending.
    pub fn from_sorted(v: Vec<u32>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "positions not sorted");
        PositionList(v)
    }

    /// From a selection bitmap.
    pub fn from_bitset(b: &BitSet) -> Self {
        PositionList(b.to_positions())
    }

    /// To a selection bitmap over `len` rows.
    ///
    /// # Panics
    /// Panics if a position is out of range.
    pub fn to_bitset(&self, len: usize) -> BitSet {
        let mut b = BitSet::new(len);
        for &p in &self.0 {
            b.set(p as usize);
        }
        b
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The positions.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Intersection with another sorted list (conjunctive selects).
    pub fn intersect(&self, other: &PositionList) -> PositionList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PositionList(out)
    }

    /// Union with another sorted list (disjunctive selects).
    pub fn union(&self, other: &PositionList) -> PositionList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len() + other.len());
        while i < self.0.len() || j < other.0.len() {
            let take_left = match (self.0.get(i), other.0.get(j)) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop condition"),
            };
            if take_left {
                let v = self.0[i];
                if out.last() != Some(&v) {
                    out.push(v);
                }
                i += 1;
            } else {
                let v = other.0[j];
                if out.last() != Some(&v) {
                    out.push(v);
                }
                j += 1;
            }
        }
        PositionList(out)
    }

    /// Selectivity relative to `total` rows.
    pub fn selectivity(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.len() as f64 / total as f64
        }
    }
}

impl FromIterator<u32> for PositionList {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        PositionList(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_common::check::forall;
    use jafar_common::rng::SplitMix64;

    fn random_set(
        rng: &mut SplitMix64,
        bound: u32,
        max_len: u64,
    ) -> std::collections::BTreeSet<u32> {
        let len = rng.next_below(max_len + 1);
        (0..len)
            .map(|_| rng.next_below(bound as u64) as u32)
            .collect()
    }

    #[test]
    fn bitset_round_trip() {
        let p = PositionList::from_sorted(vec![0, 5, 63, 64, 99]);
        let b = p.to_bitset(100);
        assert_eq!(PositionList::from_bitset(&b), p);
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn intersect_union_basics() {
        let a = PositionList::from_sorted(vec![1, 3, 5, 7]);
        let b = PositionList::from_sorted(vec![3, 4, 5, 8]);
        assert_eq!(a.intersect(&b).as_slice(), &[3, 5]);
        assert_eq!(a.union(&b).as_slice(), &[1, 3, 4, 5, 7, 8]);
        assert_eq!(a.intersect(&PositionList::new()).len(), 0);
        assert_eq!(a.union(&PositionList::new()), a);
    }

    #[test]
    fn selectivity() {
        let p = PositionList::from_sorted(vec![0, 1, 2]);
        assert_eq!(p.selectivity(12), 0.25);
        assert_eq!(PositionList::new().selectivity(0), 0.0);
    }

    #[test]
    fn intersect_union_agree_with_sets() {
        forall("intersect_union_agree_with_sets", 64, |rng| {
            let a = random_set(rng, 200, 49);
            let b = random_set(rng, 200, 49);
            let pa = PositionList::from_sorted(a.iter().copied().collect());
            let pb = PositionList::from_sorted(b.iter().copied().collect());
            let want_i: Vec<u32> = a.intersection(&b).copied().collect();
            let want_u: Vec<u32> = a.union(&b).copied().collect();
            assert_eq!(pa.intersect(&pb).as_slice(), &want_i[..]);
            assert_eq!(pa.union(&pb).as_slice(), &want_u[..]);
        });
    }

    #[test]
    fn bitset_round_trip_prop() {
        forall("bitset_round_trip_prop", 64, |rng| {
            let set = random_set(rng, 500, 99);
            let p = PositionList::from_sorted(set.iter().copied().collect());
            let b = p.to_bitset(500);
            assert_eq!(PositionList::from_bitset(&b), p);
        });
    }
}
