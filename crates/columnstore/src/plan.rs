//! Declarative query plans over the bulk operators.
//!
//! The hand-written TPC-H pipelines in `jafar-tpch` show the
//! operator-at-a-time style directly; this module adds the declarative
//! layer a downstream user composes instead: a [`Plan`] tree of
//! select-project-join-aggregate-sort-limit nodes, evaluated by
//! [`execute`] against a [`Catalog`] through an [`ExecContext`] — so every
//! plan automatically records the operator trace the simulator times, and
//! every leading full-column filter goes through the pushdown planner.
//!
//! Data flows between nodes as a [`Frame`]: named, equal-length `i64`
//! columns (the physical currency of the whole store).

use crate::error::PlanError;
use crate::exec::ExecContext;
use crate::ops::agg::{AggKind, AggSpec};
use crate::ops::scan::ScanPredicate;
use crate::ops::sort::Dir;
use crate::positions::PositionList;
use crate::table::Table;
use std::collections::HashMap;

/// Named tables a plan can reference.
#[derive(Default)]
pub struct Catalog<'a> {
    tables: HashMap<String, &'a Table>,
}

impl<'a> Catalog<'a> {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table under its own name.
    #[allow(clippy::should_implement_trait)] // builder-style `add`, not arithmetic
    pub fn add(mut self, table: &'a Table) -> Self {
        self.tables.insert(table.name().to_owned(), table);
        self
    }

    /// Looks a table up.
    ///
    /// # Errors
    /// [`PlanError::UnknownTable`] if absent — unknown table names are
    /// plan bugs, surfaced as typed errors so the embedding can report
    /// them instead of aborting.
    pub fn table(&self, name: &str) -> Result<&'a Table, PlanError> {
        self.tables
            .get(name)
            .copied()
            .ok_or_else(|| PlanError::UnknownTable {
                name: name.to_owned(),
            })
    }
}

/// An intermediate result: named, equal-length columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Frame {
    columns: Vec<(String, Vec<i64>)>,
}

impl Frame {
    /// An empty frame.
    pub fn new() -> Self {
        Frame::default()
    }

    /// Adds a column.
    ///
    /// # Panics
    /// Panics on length mismatch or duplicate name.
    pub fn with(mut self, name: impl Into<String>, data: Vec<i64>) -> Self {
        let name = name.into();
        if let Some((_, first)) = self.columns.first() {
            assert_eq!(first.len(), data.len(), "frame column length mismatch");
        }
        assert!(
            self.columns.iter().all(|(n, _)| *n != name),
            "duplicate frame column {name}"
        );
        self.columns.push((name, data));
        self
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// A column by name.
    ///
    /// # Errors
    /// [`PlanError::UnknownFrameColumn`] if absent.
    pub fn column(&self, name: &str) -> Result<&[i64], PlanError> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
            .ok_or_else(|| PlanError::UnknownFrameColumn {
                name: name.to_owned(),
            })
    }

    /// Keeps only the rows at `idx`, in that order.
    fn take(&self, idx: &[u32]) -> Frame {
        Frame {
            columns: self
                .columns
                .iter()
                .map(|(n, c)| {
                    (
                        n.clone(),
                        idx.iter().map(|&i| c[i as usize]).collect::<Vec<i64>>(),
                    )
                })
                .collect(),
        }
    }
}

/// A plan node.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Filter `table` by the conjunction of predicates (the first runs as
    /// a full-column scan — the pushdown candidate — the rest as
    /// positional refinements), then project `columns` into a frame.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Conjunctive predicates, applied in order.
        filters: Vec<(String, ScanPredicate)>,
        /// Columns to project for downstream nodes.
        columns: Vec<String>,
    },
    /// Inner equi-join of two frames on one key column each; output
    /// carries all columns of both inputs (right side wins name clashes
    /// being forbidden — qualify names upstream).
    Join {
        /// Build side (usually the smaller input).
        build: Box<Plan>,
        /// Probe side.
        probe: Box<Plan>,
        /// Key column in the build frame.
        build_key: String,
        /// Key column in the probe frame.
        probe_key: String,
    },
    /// Hash group-by: `keys` ⟶ one row per distinct tuple, with aggregate
    /// outputs named `out`.
    GroupBy {
        /// Input.
        input: Box<Plan>,
        /// Grouping key columns.
        keys: Vec<String>,
        /// `(input column, function, output name)` triples. For
        /// `AggKind::Count` the input column is ignored (use any key).
        aggs: Vec<(String, AggKind, String)>,
    },
    /// Order by the given `(column, direction)` keys.
    Sort {
        /// Input.
        input: Box<Plan>,
        /// Most-significant key first.
        keys: Vec<(String, Dir)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input.
        input: Box<Plan>,
        /// Row cap.
        n: usize,
    },
}

/// Evaluates `plan` against `catalog`, recording the operator trace in
/// `cx`.
///
/// # Errors
/// [`PlanError`] on plan bugs (unknown tables or columns). Name clashes
/// in frame assembly still panic — plans are code, not user input, in
/// this prototype, but *lookups* are surfaced as typed errors because a
/// plan may be deserialized or replayed.
pub fn execute(
    plan: &Plan,
    catalog: &Catalog<'_>,
    cx: &mut ExecContext,
) -> Result<Frame, PlanError> {
    match plan {
        Plan::Scan {
            table,
            filters,
            columns,
        } => {
            let t = catalog.table(table)?;
            let mut positions: Option<PositionList> = None;
            for (col, pred) in filters {
                positions = Some(match positions {
                    None => cx.select(t, col, *pred)?,
                    Some(p) => cx.select_at(t, col, &p, *pred)?,
                });
            }
            let positions =
                positions.unwrap_or_else(|| (0..t.rows() as u32).collect::<PositionList>());
            let mut frame = Frame::new();
            for col in columns {
                frame = frame.with(col.clone(), cx.project(t, col, &positions)?);
            }
            Ok(frame)
        }
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
        } => {
            let b = execute(build, catalog, cx)?;
            let p = execute(probe, catalog, cx)?;
            let pairs = cx.join(b.column(build_key)?, p.column(probe_key)?)?;
            let b_idx: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
            let p_idx: Vec<u32> = pairs.iter().map(|&(_, j)| j).collect();
            let mut out = b.take(&b_idx);
            for (name, col) in p.take(&p_idx).columns {
                out = out.with(name, col);
            }
            Ok(out)
        }
        Plan::GroupBy { input, keys, aggs } => {
            let f = execute(input, catalog, cx)?;
            let key_cols: Vec<&[i64]> =
                keys.iter().map(|k| f.column(k)).collect::<Result<_, _>>()?;
            let specs: Vec<AggSpec<'_>> = aggs
                .iter()
                .map(|(col, kind, _)| {
                    Ok(AggSpec {
                        kind: *kind,
                        input: f.column(col)?,
                    })
                })
                .collect::<Result<_, PlanError>>()?;
            let grouped = cx.group_by(&key_cols, &specs);
            let mut out = Frame::new();
            for (k, name) in keys.iter().enumerate() {
                out = out.with(name.clone(), grouped.keys[k].clone());
            }
            for (a, (_, kind, out_name)) in aggs.iter().enumerate() {
                let col = if *kind == AggKind::Count {
                    grouped.counts.iter().map(|&c| c as i64).collect()
                } else {
                    grouped.aggs[a].clone()
                };
                out = out.with(out_name.clone(), col);
            }
            Ok(out)
        }
        Plan::Sort { input, keys } => {
            let f = execute(input, catalog, cx)?;
            let key_cols: Vec<(&[i64], Dir)> = keys
                .iter()
                .map(|(k, d)| Ok((f.column(k)?, *d)))
                .collect::<Result<_, PlanError>>()?;
            let order = cx.sort(&key_cols);
            Ok(f.take(&order))
        }
        Plan::Limit { input, n } => {
            let f = execute(input, catalog, cx)?;
            let take: Vec<u32> = (0..f.rows().min(*n) as u32).collect();
            cx.materialize(take.len() as u64, f.names().len() as u64);
            Ok(f.take(&take))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::pushdown::Planner;

    fn sales() -> Table {
        Table::new(
            "sales",
            vec![
                Column::int("region", vec![0, 1, 0, 1, 2, 0, 2, 1]),
                Column::int("amount", vec![10, 20, 30, 40, 50, 60, 70, 80]),
                Column::int("year", vec![94, 94, 95, 95, 94, 95, 95, 94]),
            ],
        )
    }

    fn regions() -> Table {
        Table::new(
            "regions",
            vec![
                Column::int("r_id", vec![0, 1, 2]),
                Column::int("r_zone", vec![100, 200, 100]),
            ],
        )
    }

    #[test]
    fn scan_with_conjunction_and_projection() {
        let t = sales();
        let catalog = Catalog::new().add(&t);
        let mut cx = ExecContext::new(Planner::default());
        let plan = Plan::Scan {
            table: "sales".into(),
            filters: vec![
                ("year".into(), ScanPredicate::Eq(95)),
                ("amount".into(), ScanPredicate::Ge(40)),
            ],
            columns: vec!["region".into(), "amount".into()],
        };
        let f = execute(&plan, &catalog, &mut cx).unwrap();
        assert_eq!(f.column("amount").unwrap(), &[40, 60, 70]);
        assert_eq!(f.column("region").unwrap(), &[1, 0, 2]);
        // Trace: 1 full scan, 1 refine, 2 gathers.
        assert_eq!(cx.trace().len(), 4);
    }

    #[test]
    fn group_by_sort_limit_pipeline() {
        // SELECT region, SUM(amount), COUNT(*) FROM sales
        // GROUP BY region ORDER BY sum DESC LIMIT 2
        let t = sales();
        let catalog = Catalog::new().add(&t);
        let mut cx = ExecContext::new(Planner::default());
        let plan = Plan::Limit {
            n: 2,
            input: Box::new(Plan::Sort {
                keys: vec![("total".into(), Dir::Desc)],
                input: Box::new(Plan::GroupBy {
                    input: Box::new(Plan::Scan {
                        table: "sales".into(),
                        filters: vec![],
                        columns: vec!["region".into(), "amount".into()],
                    }),
                    keys: vec!["region".into()],
                    aggs: vec![
                        ("amount".into(), AggKind::Sum, "total".into()),
                        ("region".into(), AggKind::Count, "n".into()),
                    ],
                }),
            }),
        };
        let f = execute(&plan, &catalog, &mut cx).unwrap();
        assert_eq!(f.rows(), 2);
        // Totals: region 0 → 100, region 1 → 140, region 2 → 120.
        assert_eq!(f.column("region").unwrap(), &[1, 2]);
        assert_eq!(f.column("total").unwrap(), &[140, 120]);
        assert_eq!(f.column("n").unwrap(), &[3, 2]);
    }

    #[test]
    fn join_combines_frames() {
        // SELECT r_zone, SUM(amount) FROM sales JOIN regions ON region = r_id
        // GROUP BY r_zone
        let s = sales();
        let r = regions();
        let catalog = Catalog::new().add(&s).add(&r);
        let mut cx = ExecContext::new(Planner::default());
        let plan = Plan::GroupBy {
            keys: vec!["r_zone".into()],
            aggs: vec![("amount".into(), AggKind::Sum, "total".into())],
            input: Box::new(Plan::Join {
                build: Box::new(Plan::Scan {
                    table: "regions".into(),
                    filters: vec![],
                    columns: vec!["r_id".into(), "r_zone".into()],
                }),
                probe: Box::new(Plan::Scan {
                    table: "sales".into(),
                    filters: vec![],
                    columns: vec!["region".into(), "amount".into()],
                }),
                build_key: "r_id".into(),
                probe_key: "region".into(),
            }),
        };
        let mut f = execute(&plan, &catalog, &mut cx).unwrap();
        // Normalise group order for comparison.
        let order = crate::ops::sort::sort_rows_by(&[(f.column("r_zone").unwrap(), Dir::Asc)]);
        f = f.take(&order);
        // Zone 100 = regions 0 and 2 → 100 + 120 = 220; zone 200 → 140.
        assert_eq!(f.column("r_zone").unwrap(), &[100, 200]);
        assert_eq!(f.column("total").unwrap(), &[220, 140]);
    }

    #[test]
    fn q6_as_a_plan_matches_handwritten() {
        use crate::exec::Pred;
        use jafar_common::rng::SplitMix64;
        // A Q6-shaped query on synthetic data: the plan result must equal
        // the hand-written bulk pipeline.
        let mut rng = SplitMix64::new(66);
        let n = 5000;
        let shipdate: Vec<i64> = (0..n).map(|_| rng.next_range_inclusive(0, 365)).collect();
        let discount: Vec<i64> = (0..n).map(|_| rng.next_range_inclusive(0, 10)).collect();
        let price: Vec<i64> = (0..n)
            .map(|_| rng.next_range_inclusive(100, 10_000))
            .collect();
        let t = Table::new(
            "li",
            vec![
                Column::int("shipdate", shipdate.clone()),
                Column::int("discount", discount.clone()),
                Column::int("price", price.clone()),
            ],
        );
        let catalog = Catalog::new().add(&t);
        let mut cx = ExecContext::new(Planner::default());
        let plan = Plan::Scan {
            table: "li".into(),
            filters: vec![
                ("shipdate".into(), ScanPredicate::Between(100, 199)),
                ("discount".into(), ScanPredicate::Between(5, 7)),
            ],
            columns: vec!["price".into(), "discount".into()],
        };
        let f = execute(&plan, &catalog, &mut cx).unwrap();
        let plan_revenue: i64 = f
            .column("price")
            .unwrap()
            .iter()
            .zip(f.column("discount").unwrap())
            .map(|(&p, &d)| p * d / 100)
            .sum();

        let mut cx2 = ExecContext::new(Planner::default());
        let by_date = cx2.select(&t, "shipdate", Pred::Between(100, 199)).unwrap();
        let by_disc = cx2
            .select_at(&t, "discount", &by_date, Pred::Between(5, 7))
            .unwrap();
        let p = cx2.project(&t, "price", &by_disc).unwrap();
        let d = cx2.project(&t, "discount", &by_disc).unwrap();
        let hand_revenue: i64 = p.iter().zip(&d).map(|(&p, &d)| p * d / 100).sum();
        assert_eq!(plan_revenue, hand_revenue);
    }

    #[test]
    fn unknown_table_is_typed_error() {
        let catalog = Catalog::new();
        let mut cx = ExecContext::new(Planner::default());
        let err = execute(
            &Plan::Scan {
                table: "ghost".into(),
                filters: vec![],
                columns: vec![],
            },
            &catalog,
            &mut cx,
        )
        .unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownTable {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn unknown_plan_column_is_typed_error() {
        let t = sales();
        let catalog = Catalog::new().add(&t);
        let mut cx = ExecContext::new(Planner::default());
        let err = execute(
            &Plan::Scan {
                table: "sales".into(),
                filters: vec![("ghost_col".into(), ScanPredicate::Eq(1))],
                columns: vec![],
            },
            &catalog,
            &mut cx,
        )
        .unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownColumn {
                table: "sales".into(),
                column: "ghost_col".into(),
            }
        );
    }

    #[test]
    #[should_panic(expected = "duplicate frame column")]
    fn join_name_clash_rejected() {
        let s = sales();
        let catalog = Catalog::new().add(&s);
        let mut cx = ExecContext::new(Planner::default());
        // Joining a frame with itself clashes on every column name.
        let scan = Plan::Scan {
            table: "sales".into(),
            filters: vec![],
            columns: vec!["region".into()],
        };
        execute(
            &Plan::Join {
                build: Box::new(scan.clone()),
                probe: Box::new(scan),
                build_key: "region".into(),
                probe_key: "region".into(),
            },
            &catalog,
            &mut cx,
        )
        .ok();
    }
}
