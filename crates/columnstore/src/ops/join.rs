//! Hash join over position-pruned inputs.
//!
//! Bulk processing style: build a hash table over the (already selected)
//! build-side keys, probe with the (already selected) probe-side keys,
//! emit matching position pairs. §4 notes joins "may produce more tuples
//! than \[their\] input", which is why they stay on the CPU in this design.

use std::collections::HashMap;

/// Joins `build_keys[i]` with `probe_keys[j]`, returning `(i, j)` index
/// pairs (indices into the *input slices*, which the caller maps back to
/// table positions). Handles duplicate keys on both sides (full cross
/// products per key).
pub fn hash_join(build_keys: &[i64], probe_keys: &[i64]) -> Vec<(u32, u32)> {
    let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(build_keys.len());
    for (i, &k) in build_keys.iter().enumerate() {
        table.entry(k).or_default().push(i as u32);
    }
    let mut out = Vec::new();
    for (j, &k) in probe_keys.iter().enumerate() {
        if let Some(is) = table.get(&k) {
            for &i in is {
                out.push((i, j as u32));
            }
        }
    }
    out
}

/// Semi-join: probe-side indices with at least one build-side match
/// (used for `IN` / `EXISTS` subqueries).
pub fn semi_join(build_keys: &[i64], probe_keys: &[i64]) -> Vec<u32> {
    let set: std::collections::HashSet<i64> = build_keys.iter().copied().collect();
    probe_keys
        .iter()
        .enumerate()
        .filter(|(_, k)| set.contains(k))
        .map(|(j, _)| j as u32)
        .collect()
}

/// Anti-join: probe-side indices with *no* build-side match
/// (used for `NOT EXISTS`, e.g. TPC-H Q22's customers without orders).
pub fn anti_join(build_keys: &[i64], probe_keys: &[i64]) -> Vec<u32> {
    let set: std::collections::HashSet<i64> = build_keys.iter().copied().collect();
    probe_keys
        .iter()
        .enumerate()
        .filter(|(_, k)| !set.contains(k))
        .map(|(j, _)| j as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_join_pairs() {
        let build = [1i64, 2, 3];
        let probe = [3i64, 1, 4, 1];
        let mut pairs = hash_join(&build, &probe);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 3), (2, 0)]);
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let build = [7i64, 7];
        let probe = [7i64, 7, 8];
        let pairs = hash_join(&build, &probe);
        assert_eq!(pairs.len(), 4, "2 build × 2 probe matches");
    }

    #[test]
    fn join_can_amplify_output() {
        // The §4 caveat: output larger than either input.
        let build = vec![1i64; 10];
        let probe = vec![1i64; 10];
        assert_eq!(hash_join(&build, &probe).len(), 100);
    }

    #[test]
    fn semi_and_anti_partition_probe() {
        let build = [2i64, 4];
        let probe = [1i64, 2, 3, 4, 5];
        assert_eq!(semi_join(&build, &probe), vec![1, 3]);
        assert_eq!(anti_join(&build, &probe), vec![0, 2, 4]);
    }

    #[test]
    fn empty_sides() {
        assert!(hash_join(&[], &[1, 2]).is_empty());
        assert!(hash_join(&[1, 2], &[]).is_empty());
        assert_eq!(anti_join(&[], &[1]), vec![0]);
    }
}
