//! Hash join over position-pruned inputs.
//!
//! Bulk processing style: build a hash table over the (already selected)
//! build-side keys, probe with the (already selected) probe-side keys,
//! emit matching position pairs. §4 notes joins "may produce more tuples
//! than \[their\] input", which is why they stay on the CPU in this design.
//!
//! Positions are `u32` (the store-wide position width). Inputs longer
//! than the addressable range used to wrap silently through `as u32` —
//! the same truncation class `BitSet::to_positions` guards against — so
//! every entry point now checks its input lengths up front and returns a
//! typed [`JoinError`] instead of emitting aliased positions.

use std::collections::HashMap;

/// Position indices in a join output would not fit the `u32` position
/// width — the input slice is longer than `u32::MAX + 1` rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinError {
    /// Which input overflowed (`"build"` or `"probe"`).
    pub side: &'static str,
    /// The offending input length.
    pub rows: u64,
}

impl core::fmt::Display for JoinError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} side has {} rows; u32 join positions address at most {} — \
             positions would alias",
            self.side,
            self.rows,
            u64::from(u32::MAX) + 1,
        )
    }
}

impl std::error::Error for JoinError {}

/// Checks that every index `0..len` fits a `u32` position. Extracted so
/// the overflow boundary is unit-testable without allocating 32 GiB of
/// keys: the guard sees only the length.
pub(crate) fn check_side(side: &'static str, len: usize) -> Result<(), JoinError> {
    if len as u64 > u64::from(u32::MAX) + 1 {
        Err(JoinError {
            side,
            rows: len as u64,
        })
    } else {
        Ok(())
    }
}

/// Joins `build_keys[i]` with `probe_keys[j]`, returning `(i, j)` index
/// pairs (indices into the *input slices*, which the caller maps back to
/// table positions). Handles duplicate keys on both sides (full cross
/// products per key).
///
/// # Errors
/// [`JoinError`] when either input is too long for `u32` positions.
pub fn hash_join(build_keys: &[i64], probe_keys: &[i64]) -> Result<Vec<(u32, u32)>, JoinError> {
    check_side("build", build_keys.len())?;
    check_side("probe", probe_keys.len())?;
    let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(build_keys.len());
    for (i, &k) in build_keys.iter().enumerate() {
        table.entry(k).or_default().push(i as u32);
    }
    let mut out = Vec::new();
    for (j, &k) in probe_keys.iter().enumerate() {
        if let Some(is) = table.get(&k) {
            for &i in is {
                out.push((i, j as u32));
            }
        }
    }
    Ok(out)
}

/// Semi-join: probe-side indices with at least one build-side match
/// (used for `IN` / `EXISTS` subqueries).
///
/// # Errors
/// [`JoinError`] when the probe input is too long for `u32` positions.
pub fn semi_join(build_keys: &[i64], probe_keys: &[i64]) -> Result<Vec<u32>, JoinError> {
    check_side("probe", probe_keys.len())?;
    let set: std::collections::HashSet<i64> = build_keys.iter().copied().collect();
    Ok(probe_keys
        .iter()
        .enumerate()
        .filter(|(_, k)| set.contains(k))
        .map(|(j, _)| j as u32)
        .collect())
}

/// Anti-join: probe-side indices with *no* build-side match
/// (used for `NOT EXISTS`, e.g. TPC-H Q22's customers without orders).
///
/// # Errors
/// [`JoinError`] when the probe input is too long for `u32` positions.
pub fn anti_join(build_keys: &[i64], probe_keys: &[i64]) -> Result<Vec<u32>, JoinError> {
    check_side("probe", probe_keys.len())?;
    let set: std::collections::HashSet<i64> = build_keys.iter().copied().collect();
    Ok(probe_keys
        .iter()
        .enumerate()
        .filter(|(_, k)| !set.contains(k))
        .map(|(j, _)| j as u32)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_join_pairs() {
        let build = [1i64, 2, 3];
        let probe = [3i64, 1, 4, 1];
        let mut pairs = hash_join(&build, &probe).expect("in range");
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 3), (2, 0)]);
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let build = [7i64, 7];
        let probe = [7i64, 7, 8];
        let pairs = hash_join(&build, &probe).expect("in range");
        assert_eq!(pairs.len(), 4, "2 build × 2 probe matches");
    }

    #[test]
    fn join_can_amplify_output() {
        // The §4 caveat: output larger than either input.
        let build = vec![1i64; 10];
        let probe = vec![1i64; 10];
        assert_eq!(hash_join(&build, &probe).expect("in range").len(), 100);
    }

    #[test]
    fn semi_and_anti_partition_probe() {
        let build = [2i64, 4];
        let probe = [1i64, 2, 3, 4, 5];
        assert_eq!(semi_join(&build, &probe).expect("in range"), vec![1, 3]);
        assert_eq!(anti_join(&build, &probe).expect("in range"), vec![0, 2, 4]);
    }

    #[test]
    fn empty_sides() {
        assert!(hash_join(&[], &[1, 2]).expect("in range").is_empty());
        assert!(hash_join(&[1, 2], &[]).expect("in range").is_empty());
        assert_eq!(anti_join(&[], &[1]).expect("in range"), vec![0]);
    }

    /// The pre-fix behaviour wrapped position `2^32` to `0`, silently
    /// aliasing rows; the guard now rejects the length outright. Checked
    /// at the extracted guard (allocating 2^32 keys is not testable) and
    /// pinned exactly at the boundary `BitSet::to_positions` uses.
    #[test]
    fn positions_past_u32_are_a_typed_error_not_a_wrap() {
        let max = u64::from(u32::MAX) + 1;
        assert_eq!(check_side("probe", max as usize), Ok(()));
        let err = check_side("probe", max as usize + 1).expect_err("must overflow");
        assert_eq!(err.rows, max + 1);
        assert_eq!(err.side, "probe");
        assert!(err.to_string().contains("alias"));
    }
}
