//! The project (tuple reconstruction) operator: gather values at
//! positions. "Every query plan has at least N − 1 project operators where
//! N is the number of columns referenced in the query" (§4).

use crate::column::Column;
use crate::positions::PositionList;

/// Gathers `column[p]` for each position `p`.
///
/// # Panics
/// Panics if a position is out of range.
pub fn gather(column: &Column, positions: &PositionList) -> Vec<i64> {
    positions
        .as_slice()
        .iter()
        .map(|&p| column.get(p as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gathers_in_position_order() {
        let c = Column::int("v", vec![10, 20, 30, 40]);
        let p = PositionList::from_sorted(vec![0, 2, 3]);
        assert_eq!(gather(&c, &p), vec![10, 30, 40]);
    }

    #[test]
    fn empty_positions() {
        let c = Column::int("v", vec![1, 2]);
        assert!(gather(&c, &PositionList::new()).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_position_panics() {
        let c = Column::int("v", vec![1]);
        gather(&c, &PositionList::from_sorted(vec![5]));
    }
}
