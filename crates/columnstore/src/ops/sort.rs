//! Order-by support: sort row indices by key columns.

/// Sort direction per key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// Returns the row indices `0..n` ordered by the given `(column, dir)`
/// keys, most-significant first. Stable, so ties preserve input order.
///
/// # Panics
/// Panics if key columns have differing lengths, or if they are longer
/// than the `u32` position width addresses — `n as u32` would silently
/// truncate the index range to a prefix otherwise (the same wrap class
/// `BitSet::to_positions` guards against).
pub fn sort_rows_by(keys: &[(&[i64], Dir)]) -> Vec<u32> {
    let n = keys.first().map_or(0, |(c, _)| c.len());
    for (c, _) in keys {
        assert_eq!(c.len(), n, "key column length mismatch");
    }
    assert!(
        n as u64 <= u64::from(u32::MAX),
        "{n} rows overflow u32 sort positions",
    );
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by(|&a, &b| {
        for (col, dir) in keys {
            let (x, y) = (col[a as usize], col[b as usize]);
            let ord = match dir {
                Dir::Asc => x.cmp(&y),
                Dir::Desc => y.cmp(&x),
            };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_asc_desc() {
        let v = [3i64, 1, 2];
        assert_eq!(sort_rows_by(&[(&v, Dir::Asc)]), vec![1, 2, 0]);
        assert_eq!(sort_rows_by(&[(&v, Dir::Desc)]), vec![0, 2, 1]);
    }

    #[test]
    fn compound_keys_with_ties() {
        // The Q3 shape: ORDER BY revenue DESC, orderdate ASC.
        let revenue = [10i64, 30, 10, 30];
        let date = [5i64, 9, 2, 1];
        let order = sort_rows_by(&[(&revenue, Dir::Desc), (&date, Dir::Asc)]);
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn stability_on_full_ties() {
        let v = [7i64, 7, 7];
        assert_eq!(sort_rows_by(&[(&v, Dir::Asc)]), vec![0, 1, 2]);
    }

    #[test]
    fn empty() {
        assert!(sort_rows_by(&[]).is_empty());
        assert!(sort_rows_by(&[(&[], Dir::Asc)]).is_empty());
    }
}
