//! The select operator (functional reference).
//!
//! The functional scan produces the qualifying positions; *how long* it
//! takes — CPU branching/predicated/vectorized kernel or JAFAR pushdown —
//! is decided by the planner annotation and timed by the simulator
//! replaying the operator trace.

use crate::column::Column;
use crate::positions::PositionList;

/// A scan predicate over the physical `i64` values (dates, decimals and
/// dictionary codes all compare as integers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanPredicate {
    /// `v = x`
    Eq(i64),
    /// `v < x`
    Lt(i64),
    /// `v > x`
    Gt(i64),
    /// `v ≤ x`
    Le(i64),
    /// `v ≥ x`
    Ge(i64),
    /// `lo ≤ v ≤ hi`
    Between(i64, i64),
}

impl ScanPredicate {
    /// Inclusive bounds form (the JAFAR-compatible compilation); empty
    /// predicates yield `(MAX, MIN)`.
    pub fn bounds(self) -> (i64, i64) {
        match self {
            ScanPredicate::Eq(x) => (x, x),
            ScanPredicate::Lt(i64::MIN) => (i64::MAX, i64::MIN),
            ScanPredicate::Lt(x) => (i64::MIN, x - 1),
            ScanPredicate::Gt(i64::MAX) => (i64::MAX, i64::MIN),
            ScanPredicate::Gt(x) => (x + 1, i64::MAX),
            ScanPredicate::Le(x) => (i64::MIN, x),
            ScanPredicate::Ge(x) => (x, i64::MAX),
            ScanPredicate::Between(lo, hi) => (lo, hi),
        }
    }

    /// Evaluates the predicate.
    pub fn eval(self, v: i64) -> bool {
        let (lo, hi) = self.bounds();
        lo <= v && v <= hi
    }
}

/// Scans `column`, returning qualifying positions.
///
/// # Panics
/// Panics when the column is longer than the `u32` position width
/// addresses — positions past `2^32` would wrap silently otherwise (the
/// same truncation class `BitSet::to_positions` guards against).
pub fn scan(column: &Column, predicate: ScanPredicate) -> PositionList {
    assert!(
        column.data().len() as u64 <= u64::from(u32::MAX) + 1,
        "column of {} rows overflows u32 scan positions",
        column.data().len(),
    );
    let (lo, hi) = predicate.bounds();
    column
        .data()
        .iter()
        .enumerate()
        .filter(|(_, &v)| lo <= v && v <= hi)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Scans only at the given positions (a conjunctive refinement: apply a
/// second predicate to the survivors of a first).
pub fn scan_at(
    column: &Column,
    positions: &PositionList,
    predicate: ScanPredicate,
) -> PositionList {
    let (lo, hi) = predicate.bounds();
    positions
        .as_slice()
        .iter()
        .copied()
        .filter(|&p| {
            let v = column.get(p as usize);
            lo <= v && v <= hi
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> Column {
        Column::int("v", vec![5, 1, 9, 3, 7, 3, 0, 10])
    }

    #[test]
    fn full_scan_forms() {
        let c = col();
        assert_eq!(scan(&c, ScanPredicate::Eq(3)).as_slice(), &[3, 5]);
        assert_eq!(scan(&c, ScanPredicate::Lt(3)).as_slice(), &[1, 6]);
        assert_eq!(scan(&c, ScanPredicate::Ge(9)).as_slice(), &[2, 7]);
        assert_eq!(
            scan(&c, ScanPredicate::Between(3, 5)).as_slice(),
            &[0, 3, 5]
        );
        assert_eq!(scan(&c, ScanPredicate::Between(100, 200)).len(), 0);
    }

    #[test]
    fn refinement_scan() {
        let a = col();
        let b = Column::int("w", vec![0, 0, 1, 1, 1, 0, 0, 1]);
        let first = scan(&a, ScanPredicate::Ge(3)); // 0,2,3,4,5,7
        let refined = scan_at(&b, &first, ScanPredicate::Eq(1));
        assert_eq!(refined.as_slice(), &[2, 3, 4, 7]);
        // Equivalent to intersecting independent scans.
        let second = scan(&b, ScanPredicate::Eq(1));
        assert_eq!(refined, first.intersect(&second));
    }

    #[test]
    fn predicate_bounds_match_eval() {
        for v in -5..15i64 {
            for p in [
                ScanPredicate::Eq(7),
                ScanPredicate::Lt(7),
                ScanPredicate::Gt(7),
                ScanPredicate::Le(7),
                ScanPredicate::Ge(7),
                ScanPredicate::Between(2, 11),
            ] {
                let naive = match p {
                    ScanPredicate::Eq(x) => v == x,
                    ScanPredicate::Lt(x) => v < x,
                    ScanPredicate::Gt(x) => v > x,
                    ScanPredicate::Le(x) => v <= x,
                    ScanPredicate::Ge(x) => v >= x,
                    ScanPredicate::Between(lo, hi) => lo <= v && v <= hi,
                };
                assert_eq!(p.eval(v), naive, "{p:?} on {v}");
            }
        }
    }

    #[test]
    fn empty_column() {
        let c = Column::int("e", vec![]);
        assert!(scan(&c, ScanPredicate::Ge(0)).is_empty());
    }
}
