//! Hash group-by aggregation.

use std::collections::HashMap;

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    /// Sum of the input expression.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Row count (input expression ignored).
    Count,
    /// Average, reported as (sum, count) → f64 via [`GroupedResult::avg`].
    Avg,
}

/// One aggregate: a function over an input vector.
#[derive(Clone, Debug)]
pub struct AggSpec<'a> {
    /// The function.
    pub kind: AggKind,
    /// The input values, one per (selected) row. For `Count` an empty
    /// slice is allowed.
    pub input: &'a [i64],
}

/// Grouped aggregation output.
#[derive(Clone, Debug)]
pub struct GroupedResult {
    /// One key tuple per group (column-major: `keys[k][g]` is key column
    /// `k` of group `g`).
    pub keys: Vec<Vec<i64>>,
    /// One vector per aggregate (column-major): `aggs[a][g]`.
    pub aggs: Vec<Vec<i64>>,
    /// Row count per group.
    pub counts: Vec<u64>,
}

impl GroupedResult {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Average for aggregate `a` in group `g` (sum stored ÷ count).
    pub fn avg(&self, a: usize, g: usize) -> f64 {
        self.aggs[a][g] as f64 / self.counts[g] as f64
    }

    /// Sorts groups by their key tuple, ascending (canonical output
    /// order for result comparison).
    pub fn sorted_by_keys(mut self) -> GroupedResult {
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.keys
                .iter()
                .map(|k| k[a].cmp(&k[b]))
                .find(|o| !o.is_eq())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let permute = |v: &mut Vec<i64>| {
            let old = std::mem::take(v);
            *v = order.iter().map(|&i| old[i]).collect();
        };
        for k in &mut self.keys {
            permute(k);
        }
        for a in &mut self.aggs {
            permute(a);
        }
        let old_counts = std::mem::take(&mut self.counts);
        self.counts = order.iter().map(|&i| old_counts[i]).collect();
        self
    }
}

/// Groups rows by the tuple of `group_cols` values and evaluates `aggs`
/// per group. All input slices must have equal length (= selected rows).
///
/// # Panics
/// Panics on input length mismatches.
pub fn hash_group_by(group_cols: &[&[i64]], aggs: &[AggSpec<'_>]) -> GroupedResult {
    let rows = group_cols.first().map_or_else(
        || aggs.iter().map(|a| a.input.len()).max().unwrap_or(0),
        |c| c.len(),
    );
    for c in group_cols {
        assert_eq!(c.len(), rows, "group column length mismatch");
    }
    for a in aggs {
        assert!(
            a.kind == AggKind::Count || a.input.len() == rows,
            "aggregate input length mismatch"
        );
    }
    let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut keys: Vec<Vec<i64>> = vec![Vec::new(); group_cols.len()];
    let mut acc: Vec<Vec<i64>> = vec![Vec::new(); aggs.len()];
    let mut counts: Vec<u64> = Vec::new();

    for r in 0..rows {
        let key: Vec<i64> = group_cols.iter().map(|c| c[r]).collect();
        let g = *index.entry(key.clone()).or_insert_with(|| {
            for (k, col) in keys.iter_mut().enumerate() {
                col.push(key[k]);
            }
            for (a, spec) in aggs.iter().enumerate() {
                acc[a].push(match spec.kind {
                    AggKind::Sum | AggKind::Avg | AggKind::Count => 0,
                    AggKind::Min => i64::MAX,
                    AggKind::Max => i64::MIN,
                });
            }
            counts.push(0);
            counts.len() - 1
        });
        counts[g] += 1;
        for (a, spec) in aggs.iter().enumerate() {
            let slot = &mut acc[a][g];
            match spec.kind {
                AggKind::Sum | AggKind::Avg => *slot += spec.input[r],
                AggKind::Min => *slot = (*slot).min(spec.input[r]),
                AggKind::Max => *slot = (*slot).max(spec.input[r]),
                AggKind::Count => *slot += 1,
            }
        }
    }

    GroupedResult {
        keys,
        aggs: acc,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_sum_and_count() {
        let keys = [1i64, 2, 1, 2, 1];
        let vals = [10i64, 20, 30, 40, 50];
        let g = hash_group_by(
            &[&keys],
            &[
                AggSpec {
                    kind: AggKind::Sum,
                    input: &vals,
                },
                AggSpec {
                    kind: AggKind::Count,
                    input: &[],
                },
            ],
        )
        .sorted_by_keys();
        assert_eq!(g.len(), 2);
        assert_eq!(g.keys[0], vec![1, 2]);
        assert_eq!(g.aggs[0], vec![90, 60]);
        assert_eq!(g.aggs[1], vec![3, 2]);
        assert_eq!(g.counts, vec![3, 2]);
    }

    #[test]
    fn compound_keys() {
        // The Q1 shape: group by (returnflag, linestatus).
        let k1 = [0i64, 0, 1, 1, 0];
        let k2 = [0i64, 1, 0, 0, 0];
        let v = [1i64, 2, 3, 4, 5];
        let g = hash_group_by(
            &[&k1, &k2],
            &[AggSpec {
                kind: AggKind::Sum,
                input: &v,
            }],
        )
        .sorted_by_keys();
        assert_eq!(g.len(), 3);
        assert_eq!(g.keys[0], vec![0, 0, 1]);
        assert_eq!(g.keys[1], vec![0, 1, 0]);
        assert_eq!(g.aggs[0], vec![6, 2, 7]);
    }

    #[test]
    fn min_max_avg() {
        let keys = [5i64, 5, 5];
        let vals = [3i64, 9, 6];
        let g = hash_group_by(
            &[&keys],
            &[
                AggSpec {
                    kind: AggKind::Min,
                    input: &vals,
                },
                AggSpec {
                    kind: AggKind::Max,
                    input: &vals,
                },
                AggSpec {
                    kind: AggKind::Avg,
                    input: &vals,
                },
            ],
        );
        assert_eq!(g.aggs[0], vec![3]);
        assert_eq!(g.aggs[1], vec![9]);
        assert_eq!(g.avg(2, 0), 6.0);
    }

    #[test]
    fn global_aggregate_without_keys() {
        // No group columns → one implicit group (the Q6 shape).
        let vals = [2i64, 3, 4];
        let g = hash_group_by(
            &[],
            &[AggSpec {
                kind: AggKind::Sum,
                input: &vals,
            }],
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g.aggs[0], vec![9]);
    }

    #[test]
    fn empty_input() {
        let g = hash_group_by(&[&[]], &[]);
        assert!(g.is_empty());
    }
}
