//! Bulk (column-at-a-time) operators.

pub mod agg;
pub mod join;
pub mod project;
pub mod scan;
pub mod sort;

pub use agg::{AggKind, AggSpec, GroupedResult};
pub use join::{hash_join, JoinError};
pub use project::gather;
pub use scan::{scan, ScanPredicate};
pub use sort::sort_rows_by;
