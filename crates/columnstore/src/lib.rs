//! # jafar-columnstore — the prototype main-memory column-store
//!
//! §3.1: "To integrate JAFAR with a database system, we use an in-house
//! prototype column-store that is capable of performing select-project-join
//! queries using bulk processing and can invoke JAFAR to push down
//! selections to the accelerator." This crate is that prototype:
//!
//! - [`value`] / [`dict`]: integer-centric physical types — §4 notes that
//!   "many modern systems effectively handle string columns as integers
//!   using dictionary compression", which is exactly how strings are stored
//!   here (order-preserving dictionary codes, so range predicates work);
//! - [`column`](mod@column) / [`table`]: plain dense `i64` column storage;
//! - [`positions`]: position lists and selection bitmaps, the currency of
//!   late materialization;
//! - [`ops`]: bulk operators — scan (select), gather (project), hash join,
//!   hash group-by aggregation, sort;
//! - [`exec`]: the bulk-processing execution context: each operator call is
//!   recorded in an **operator trace** ([`trace`]) that the full-system
//!   simulator replays against the memory hierarchy for timing, keeping
//!   functional query processing and performance modelling decoupled;
//! - [`pushdown`]: the planner knob choosing, per scan, a CPU kernel or
//!   JAFAR pushdown.

pub mod column;
pub mod dict;
pub mod error;
pub mod exec;
pub mod ops;
pub mod plan;
pub mod positions;
pub mod pushdown;
pub mod table;
pub mod trace;
pub mod value;

pub use column::Column;
pub use dict::Dictionary;
pub use error::PlanError;
pub use exec::ExecContext;
pub use plan::{execute, Catalog, Frame, Plan};
pub use positions::PositionList;
pub use pushdown::{CircuitBreaker, Planner, ScanImpl};
pub use table::Table;
pub use trace::{OpTrace, TraceEvent};
pub use value::{DataType, Date, Decimal};
