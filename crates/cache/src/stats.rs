//! Cache statistics.

use jafar_common::stats::Counter;

/// Hit/miss/traffic counters for one cache level.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Read (load) hits.
    pub read_hits: Counter,
    /// Read misses.
    pub read_misses: Counter,
    /// Write (store) hits.
    pub write_hits: Counter,
    /// Write misses.
    pub write_misses: Counter,
    /// Valid lines evicted by fills.
    pub evictions: Counter,
    /// Dirty lines written back to the next level.
    pub writebacks: Counter,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits.get()
            + self.read_misses.get()
            + self.write_hits.get()
            + self.write_misses.get()
    }

    /// Overall hit rate, or `None` with no accesses.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.accesses();
        (total > 0).then(|| (self.read_hits.get() + self.write_hits.get()) as f64 / total as f64)
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses.get() + self.write_misses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), None);
        s.read_hits.add(3);
        s.read_misses.add(1);
        s.write_hits.add(1);
        s.write_misses.add(0);
        assert_eq!(s.accesses(), 5);
        assert_eq!(s.hit_rate(), Some(0.8));
        assert_eq!(s.misses(), 1);
    }
}
