//! The multi-level hierarchy: L1 → L2 → optional L3 → memory.
//!
//! An access walks down until it hits; misses at a level are filled on the
//! way back (all levels allocate). Dirty victims at any level are collected
//! as writeback addresses the caller forwards to the memory controller —
//! except L1/L2 victims, which write back into the next cache level (only
//! last-level victims leave the hierarchy).

use crate::cache::{Addr, CacheConfig, Lookup, SetAssocCache};
use crate::stats::CacheStats;

/// Where an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Third-level cache.
    L3,
    /// Missed everywhere; a memory fetch is required.
    Memory,
}

/// Result of one hierarchy access.
#[derive(Clone, Debug)]
pub struct AccessOutcome {
    /// Deepest level consulted.
    pub level: HitLevel,
    /// CPU cycles spent in the cache traversal (memory latency, if any, is
    /// added by the caller once the controller reports the fill time).
    pub latency: u64,
    /// Dirty last-level victims that must be written back to memory.
    pub writebacks: Vec<Addr>,
}

/// Hierarchy configuration.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Optional shared L3.
    pub l3: Option<CacheConfig>,
}

impl HierarchyConfig {
    /// Table 1 (gem5 column): 64 kB L1, 128 kB L2, no L3.
    pub fn gem5_like() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                associativity: 8,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 128 * 1024,
                associativity: 8,
                hit_latency: 12,
            },
            l3: None,
        }
    }

    /// Table 1 (Xeon column, per-core slice): 256 kB L1*, 2 MB L2, 16 MB L3.
    /// (*Table 1 reports aggregate per-socket figures; we model one core's
    /// effective share.)
    pub fn xeon_like() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                associativity: 8,
                hit_latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                associativity: 8,
                hit_latency: 12,
            },
            l3: Some(CacheConfig {
                // One core's effective share of the 16 MB shared L3.
                size_bytes: 2 * 1024 * 1024,
                associativity: 16,
                hit_latency: 40,
            }),
        }
    }

    /// Total capacity over all levels — the bound the paper's 4 M-row
    /// dataset must exceed ("larger than the total cache capacity of the
    /// simulated CPU").
    pub fn total_capacity(&self) -> u64 {
        self.l1.size_bytes + self.l2.size_bytes + self.l3.map_or(0, |c| c.size_bytes)
    }
}

/// The cache hierarchy.
pub struct Hierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: Option<SetAssocCache>,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: config.l3.map(SetAssocCache::new),
        }
    }

    /// Performs one load (`is_write = false`) or store (`true`) and updates
    /// all tag state (misses are filled immediately; the *timing* of the
    /// memory fetch is the caller's job when `level == Memory`).
    pub fn access(&mut self, addr: Addr, is_write: bool) -> AccessOutcome {
        let mut latency = self.l1.config().hit_latency;
        if self.l1.access(addr, is_write) == Lookup::Hit {
            return AccessOutcome {
                level: HitLevel::L1,
                latency,
                writebacks: Vec::new(),
            };
        }
        latency += self.l2.config().hit_latency;
        if self.l2.access(addr, is_write) == Lookup::Hit {
            let wb = self.fill_l1(addr, is_write);
            return AccessOutcome {
                level: HitLevel::L2,
                latency,
                writebacks: wb,
            };
        }
        if let Some(l3) = &mut self.l3 {
            latency += l3.config().hit_latency;
            if l3.access(addr, is_write) == Lookup::Hit {
                let mut wb = self.fill_l2(addr);
                wb.extend(self.fill_l1(addr, is_write));
                return AccessOutcome {
                    level: HitLevel::L3,
                    latency,
                    writebacks: wb,
                };
            }
        }
        // Full miss: fill every level on the way back.
        let mut writebacks = Vec::new();
        if self.l3.is_some() {
            writebacks.extend(self.fill_l3(addr));
        }
        writebacks.extend(self.fill_l2(addr));
        writebacks.extend(self.fill_l1(addr, is_write));
        AccessOutcome {
            level: HitLevel::Memory,
            latency,
            writebacks,
        }
    }

    /// Installs a prefetched line into the last-level cache only (a common
    /// conservative prefetch placement). Returns writeback addresses.
    pub fn install_prefetch(&mut self, addr: Addr) -> Vec<Addr> {
        match &mut self.l3 {
            Some(_) => self.fill_l3(addr),
            None => self.fill_l2(addr),
        }
    }

    fn fill_l1(&mut self, addr: Addr, dirty: bool) -> Vec<Addr> {
        let mut out = Vec::new();
        if let Some(v) = self.l1.fill(addr, dirty) {
            if v.dirty {
                // L1 victim writes back into L2.
                if self.l2.access(v.addr, true) == Lookup::Miss {
                    out.extend(self.fill_l2_dirty(v.addr));
                }
            }
        }
        out
    }

    fn fill_l2(&mut self, addr: Addr) -> Vec<Addr> {
        self.fill_l2_inner(addr, false)
    }

    fn fill_l2_dirty(&mut self, addr: Addr) -> Vec<Addr> {
        self.fill_l2_inner(addr, true)
    }

    fn fill_l2_inner(&mut self, addr: Addr, dirty: bool) -> Vec<Addr> {
        let mut out = Vec::new();
        if let Some(v) = self.l2.fill(addr, dirty) {
            if v.dirty {
                match &mut self.l3 {
                    Some(l3) => {
                        if l3.access(v.addr, true) == Lookup::Miss {
                            if let Some(v3) = l3.fill(v.addr, true) {
                                if v3.dirty {
                                    out.push(v3.addr);
                                }
                            }
                        }
                    }
                    None => out.push(v.addr),
                }
            }
        }
        out
    }

    fn fill_l3(&mut self, addr: Addr) -> Vec<Addr> {
        let mut out = Vec::new();
        if let Some(l3) = &mut self.l3 {
            if let Some(v) = l3.fill(addr, false) {
                if v.dirty {
                    out.push(v.addr);
                }
            }
        }
        out
    }

    /// Per-level statistics `(l1, l2, l3)`.
    pub fn stats(&self) -> (&CacheStats, &CacheStats, Option<&CacheStats>) {
        (
            self.l1.stats(),
            self.l2.stats(),
            self.l3.as_ref().map(|c| c.stats()),
        )
    }

    /// L1 accessor for targeted tests.
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// L2 accessor for targeted tests.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_hierarchy() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 256, // 2 sets x 2 ways
                associativity: 2,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 1024, // 8 sets x 2 ways
                associativity: 2,
                hit_latency: 10,
            },
            l3: None,
        })
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut h = tiny_hierarchy();
        let a = h.access(0x0, false);
        assert_eq!(a.level, HitLevel::Memory);
        assert_eq!(a.latency, 12, "L1 + L2 traversal");
        assert!(a.writebacks.is_empty());
        let b = h.access(0x0, false);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(b.latency, 2);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2_hit() {
        let mut h = tiny_hierarchy();
        // L1 set 0 holds 2 of these 3 lines (stride 2 lines = 128 B).
        h.access(0, false);
        h.access(128, false);
        h.access(2 * 128, false); // evicts line 0 from L1
        let a = h.access(0, false);
        assert_eq!(a.level, HitLevel::L2, "still resident in larger L2");
    }

    #[test]
    fn dirty_l1_victim_writes_into_l2_not_memory() {
        let mut h = tiny_hierarchy();
        h.access(0, true); // dirty in L1
        h.access(128, false);
        let a = h.access(2 * 128, false); // evicts dirty line 0 from L1
        assert!(a.writebacks.is_empty(), "dirty L1 victim is absorbed by L2");
        // Line 0 is dirty in L2 now; push it out of L2 with set-conflicting
        // fills (L2 set = line & 7; lines 0, 8, 16 share set 0).
        h.access(8 * 64, false);
        let out = h.access(16 * 64, false);
        // One of these fills evicted dirty line 0 from L2 → memory writeback.
        let all_wb: Vec<u64> = out.writebacks;
        assert!(
            all_wb.contains(&0),
            "dirty line 0 leaves the hierarchy: {all_wb:?}"
        );
    }

    #[test]
    fn streaming_scan_touches_each_line_once() {
        let mut h = Hierarchy::new(HierarchyConfig::gem5_like());
        let lines = 10_000u64;
        let mut mem_fetches = 0;
        for i in 0..lines {
            for word in 0..8u64 {
                let outcome = h.access(i * 64 + word * 8, false);
                if outcome.level == HitLevel::Memory {
                    mem_fetches += 1;
                }
            }
        }
        assert_eq!(mem_fetches, lines, "exactly one memory fetch per line");
        let (l1, _, _) = h.stats();
        assert_eq!(l1.read_hits.get(), lines * 7);
    }

    #[test]
    fn l3_hierarchy_path() {
        let mut h = Hierarchy::new(HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 128,
                associativity: 1,
                hit_latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 256,
                associativity: 1,
                hit_latency: 10,
            },
            l3: Some(CacheConfig {
                size_bytes: 4096,
                associativity: 4,
                hit_latency: 30,
            }),
        });
        let a = h.access(0, false);
        assert_eq!(a.level, HitLevel::Memory);
        assert_eq!(a.latency, 42);
        // Push line 0 out of L1 (1 way, 2 sets: stride 128 B) and L2
        // (1 way, 4 sets: stride 256 B): lines 0 and 16 conflict in both.
        h.access(16 * 64, false);
        let back = h.access(0, false);
        assert_eq!(back.level, HitLevel::L3);
    }

    #[test]
    fn table1_capacity_bound() {
        // §3.1: 4 M rows of 8 B = 32 MB exceed the simulated CPU's total
        // cache capacity.
        let cfg = HierarchyConfig::gem5_like();
        assert!(cfg.total_capacity() < 4_000_000 * 8);
        assert_eq!(cfg.total_capacity(), (64 + 128) * 1024);
    }

    #[test]
    fn prefetch_installs_in_last_level() {
        let mut h = tiny_hierarchy();
        h.install_prefetch(0x40);
        let a = h.access(0x40, false);
        assert_eq!(a.level, HitLevel::L2, "prefetch landed in L2, not L1");
    }
}
