//! A single set-associative, write-back, write-allocate cache level.

use crate::stats::CacheStats;
use jafar_common::size::{is_pow2, CACHE_LINE};

/// Physical address alias (the cache crate avoids a dependency on
/// `jafar-dram`; addresses are plain block-aligned `u64`s here).
pub type Addr = u64;

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Hit latency in CPU cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the configuration.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / CACHE_LINE / self.associativity as u64
    }

    /// Checks the configuration is realisable.
    ///
    /// # Panics
    /// Panics on a zero or non-power-of-two set count.
    pub fn validate(&self) {
        assert!(self.associativity > 0, "associativity must be positive");
        assert!(
            self.size_bytes
                .is_multiple_of(CACHE_LINE * self.associativity as u64),
            "size must be a whole number of sets"
        );
        assert!(
            is_pow2(self.num_sets()),
            "set count must be a power of two, got {}",
            self.num_sets()
        );
    }
}

/// Result of a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent; the caller must fetch it and call
    /// [`SetAssocCache::fill`].
    Miss,
}

/// A line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// Base address of the evicted line.
    pub addr: Addr,
    /// Whether it must be written back to the next level.
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// One cache level: tags, LRU state, and statistics.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Way>,
    set_mask: u64,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let num_sets = config.num_sets();
        SetAssocCache {
            config,
            sets: vec![Way::default(); (num_sets * config.associativity as u64) as usize],
            set_mask: num_sets - 1,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The level's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_index(addr: Addr) -> u64 {
        addr / CACHE_LINE
    }

    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = (Self::line_index(addr) & self.set_mask) as usize;
        let ways = self.config.associativity as usize;
        set * ways..(set + 1) * ways
    }

    /// Looks up the line containing `addr`; a write hit marks it dirty.
    /// On a miss, the cache is *not* modified — fetch the line and
    /// [`SetAssocCache::fill`] it.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> Lookup {
        self.clock += 1;
        let tag = Self::line_index(addr);
        let range = self.set_range(addr);
        for way in &mut self.sets[range] {
            if way.valid && way.tag == tag {
                way.last_use = self.clock;
                if is_write {
                    way.dirty = true;
                    self.stats.write_hits.inc();
                } else {
                    self.stats.read_hits.inc();
                }
                return Lookup::Hit;
            }
        }
        if is_write {
            self.stats.write_misses.inc();
        } else {
            self.stats.read_misses.inc();
        }
        Lookup::Miss
    }

    /// True if the line containing `addr` is present (no LRU/stat update).
    pub fn probe(&self, addr: Addr) -> bool {
        let tag = Self::line_index(addr);
        self.sets[self.set_range(addr)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Installs the line containing `addr` (write-allocate passes
    /// `dirty = true` for a store miss). Returns the victim if a valid line
    /// was evicted.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<Victim> {
        self.clock += 1;
        let tag = Self::line_index(addr);
        let range = self.set_range(addr);
        // Already present (e.g. prefetch raced a demand fill): update flags.
        if let Some(way) = self.sets[range.clone()]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.dirty |= dirty;
            way.last_use = self.clock;
            return None;
        }
        let clock = self.clock;
        // Choose an invalid way, else the LRU way.
        let slot = {
            let set = &mut self.sets[range];
            let idx = set.iter().position(|w| !w.valid).unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .expect("associativity > 0")
                    .0
            });
            &mut set[idx]
        };
        let victim = slot.valid.then(|| Victim {
            addr: slot.tag * CACHE_LINE,
            dirty: slot.dirty,
        });
        if let Some(v) = &victim {
            self.stats.evictions.inc();
            if v.dirty {
                self.stats.writebacks.inc();
            }
        }
        *slot = Way {
            tag,
            valid: true,
            dirty,
            last_use: clock,
        };
        victim
    }

    /// Invalidates the line containing `addr`, returning it as a victim if
    /// it was present and dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Victim> {
        let tag = Self::line_index(addr);
        let range = self.set_range(addr);
        for way in &mut self.sets[range] {
            if way.valid && way.tag == tag {
                let dirty = way.dirty;
                way.valid = false;
                way.dirty = false;
                return dirty.then_some(Victim {
                    addr: tag * CACHE_LINE,
                    dirty: true,
                });
            }
        }
        None
    }

    /// Number of valid lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B = 512 B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            associativity: 2,
            hit_latency: 2,
        })
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            associativity: 8,
            hit_latency: 2,
        };
        c.validate();
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x100, false), Lookup::Miss);
        assert_eq!(c.fill(0x100, false), None);
        assert_eq!(c.access(0x100, false), Lookup::Hit);
        assert_eq!(c.access(0x13F, false), Lookup::Hit, "same line");
        assert_eq!(c.stats().read_hits.get(), 2);
        assert_eq!(c.stats().read_misses.get(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set index = (addr/64) & 3. Lines 0, 4, 8 all map to set 0.
        let line = |i: u64| i * 4 * 64; // stride of 4 lines keeps set 0
        c.fill(line(0), false);
        c.fill(line(1), false);
        // Touch line 0 so line 1 becomes LRU.
        assert_eq!(c.access(line(0), false), Lookup::Hit);
        let victim = c.fill(line(2), false).expect("set is full");
        assert_eq!(victim.addr, line(1));
        assert!(!victim.dirty);
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(1)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let line = |i: u64| i * 4 * 64;
        c.fill(line(0), true); // dirty fill (store miss, write-allocate)
        c.fill(line(1), false);
        let victim = c.fill(line(2), false).expect("evicts LRU = line 0");
        assert_eq!(victim.addr, line(0));
        assert!(victim.dirty);
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(0x0, false);
        assert_eq!(c.access(0x0, true), Lookup::Hit);
        let v = c.invalidate(0x0).expect("was dirty");
        assert!(v.dirty);
    }

    #[test]
    fn fill_existing_line_merges_dirty() {
        let mut c = small();
        c.fill(0x0, false);
        assert_eq!(c.fill(0x0, true), None, "no eviction re-filling");
        assert!(c.invalidate(0x0).is_some(), "dirty was merged in");
    }

    #[test]
    fn invalidate_clean_line_returns_none() {
        let mut c = small();
        c.fill(0x40, false);
        assert_eq!(c.invalidate(0x40), None);
        assert!(!c.probe(0x40));
        assert_eq!(c.invalidate(0x40), None, "already gone");
    }

    #[test]
    fn resident_line_count() {
        let mut c = small();
        for i in 0..8u64 {
            c.fill(i * 64, false);
        }
        assert_eq!(c.resident_lines(), 8, "fills exactly fit 512 B");
        c.fill(8 * 64, false);
        assert_eq!(c.resident_lines(), 8, "capacity bounded");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        SetAssocCache::new(CacheConfig {
            size_bytes: 192,
            associativity: 1,
            hit_latency: 1,
        });
    }
}
