//! A tagged next-N-line stream prefetcher.
//!
//! A streaming column scan on a modern core is covered almost entirely by
//! hardware prefetching; omitting it would make the CPU baseline
//! unrealistically slow and inflate JAFAR's speedup. The model is the
//! classic stream table: each entry tracks a miss address; a second miss to
//! the next sequential line confirms a stream and triggers prefetches of
//! the following `degree` lines, advancing as demand accesses catch up.

use crate::cache::Addr;
use jafar_common::size::CACHE_LINE;

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Next line index expected by this stream.
    next_line: u64,
    /// Lines prefetched up to (exclusive).
    issued_until: u64,
    /// Confirmed (two sequential misses observed).
    confirmed: bool,
    /// LRU stamp.
    last_use: u64,
}

/// The prefetcher.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    capacity: usize,
    degree: u64,
    clock: u64,
    issued: u64,
    useful_hint: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with `capacity` concurrent streams issuing
    /// `degree` lines ahead.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(capacity: usize, degree: u64) -> Self {
        assert!(capacity > 0 && degree > 0);
        StreamPrefetcher {
            streams: Vec::with_capacity(capacity),
            capacity,
            degree,
            clock: 0,
            issued: 0,
            useful_hint: 0,
        }
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand access to `addr`; returns the line base addresses
    /// to prefetch (possibly empty).
    pub fn observe(&mut self, addr: Addr) -> Vec<Addr> {
        self.clock += 1;
        let line = addr / CACHE_LINE;
        // Existing stream expecting this line?
        if let Some(s) = self.streams.iter_mut().find(|s| s.next_line == line) {
            s.last_use = self.clock;
            s.next_line = line + 1;
            if !s.confirmed {
                s.confirmed = true;
                s.issued_until = line + 1;
            }
            self.useful_hint += 1;
            // Keep the prefetch window `degree` ahead of demand.
            let target = line + 1 + self.degree;
            let from = s.issued_until.max(line + 1);
            let to = target;
            s.issued_until = s.issued_until.max(to);
            let out: Vec<Addr> = (from..to).map(|l| l * CACHE_LINE).collect();
            self.issued += out.len() as u64;
            return out;
        }
        // New potential stream starting at the *next* line.
        if self.streams.len() == self.capacity {
            let lru = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .expect("nonempty")
                .0;
            self.streams.swap_remove(lru);
        }
        self.streams.push(Stream {
            next_line: line + 1,
            issued_until: line + 1,
            confirmed: false,
            last_use: self.clock,
        });
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_confirms_and_runs_ahead() {
        let mut p = StreamPrefetcher::new(4, 4);
        assert!(p.observe(0).is_empty(), "first touch only allocates");
        let pf = p.observe(64);
        // Confirmed: prefetch lines 2..6.
        assert_eq!(pf, vec![128, 192, 256, 320]);
        // Demand catches up one line: window slides by one.
        let pf = p.observe(128);
        assert_eq!(pf, vec![384]);
        assert_eq!(p.issued(), 5);
    }

    #[test]
    fn random_accesses_never_trigger() {
        let mut p = StreamPrefetcher::new(4, 4);
        let mut total = 0;
        for addr in [0u64, 4096, 64 * 77, 64 * 3, 64 * 1000] {
            total += p.observe(addr).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn stream_table_capacity_lru() {
        let mut p = StreamPrefetcher::new(2, 2);
        p.observe(0); // stream A expects line 1
        p.observe(64 * 100); // stream B expects line 101
        p.observe(64 * 200); // stream C evicts A (LRU)
                             // Line 1 no longer triggers (A evicted); this allocates stream D,
                             // evicting B which is now the LRU.
        assert!(p.observe(64).is_empty());
        // C is still live and confirms here.
        assert!(!p.observe(64 * 201).is_empty());
        // B was evicted: line 101 allocates afresh, no prefetch.
        assert!(p.observe(64 * 101).is_empty());
    }

    #[test]
    fn interleaved_streams_tracked_independently() {
        let mut p = StreamPrefetcher::new(4, 2);
        let base_a = 0u64;
        let base_b = 1 << 20;
        p.observe(base_a);
        p.observe(base_b);
        let a = p.observe(base_a + 64);
        let b = p.observe(base_b + 64);
        assert_eq!(a, vec![base_a + 128, base_a + 192]);
        assert_eq!(b, vec![base_b + 128, base_b + 192]);
    }
}
