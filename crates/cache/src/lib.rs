//! # jafar-cache — the host cache hierarchy
//!
//! The CPU-only select baseline of Figure 3 is a streaming scan whose
//! performance is set by how the cache hierarchy turns per-row loads into
//! per-line memory traffic (one 64-byte line per eight 8-byte values), how
//! much latency cache hits cost, and how dirty result lines flow back to
//! memory as writebacks. One of the paper's motivating observations is
//! **cache pollution**: a scan streams the entire column through L1/L2 and
//! evicts everything else, while JAFAR leaves the caches untouched.
//!
//! The model is a classic tags-only set-associative hierarchy:
//!
//! - [`cache::SetAssocCache`]: LRU, write-back, write-allocate, with
//!   configurable size/associativity/latency;
//! - [`hierarchy::Hierarchy`]: L1 → L2 → optional L3, with a combined
//!   access returning the hit level, the latency of the cache traversal,
//!   and any dirty victims that must be written back to memory;
//! - [`prefetch::StreamPrefetcher`]: a tagged next-N-line prefetcher, since
//!   a streaming scan on a modern core is heavily prefetched;
//! - [`stats`]: per-level hit/miss/writeback counters.
//!
//! Caches are *timing + tag state* only. Functional data lives in the DRAM
//! backing store; the simulation layer applies stores synchronously. This
//! is the standard decoupling for trace-driven memory-system models.

pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod stats;

pub use cache::{CacheConfig, Lookup, SetAssocCache, Victim};
pub use hierarchy::{AccessOutcome, Hierarchy, HierarchyConfig, HitLevel};
pub use prefetch::StreamPrefetcher;
pub use stats::CacheStats;
