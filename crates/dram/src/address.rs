//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The memory controller decodes a physical address into (rank, bank, row,
//! column) coordinates — the RAS/CAS decomposition of paper §2.1. The order
//! in which address bits are assigned to those fields is a policy decision
//! with large performance consequences:
//!
//! - [`AddressMapping::RowBankRankBlock`] keeps consecutive addresses inside
//!   one row buffer (maximum row-hit locality for streaming scans — what a
//!   column-store wants and what JAFAR's §2.2 sequential consumption model
//!   assumes);
//! - [`AddressMapping::BankInterleavedBlock`] spreads consecutive 64-byte
//!   blocks across banks (classic bank interleaving: more bank-level
//!   parallelism for random traffic, fewer row hits for streams).
//!
//! Addresses are decomposed at 64-byte **block** granularity, the burst
//! transfer size; the low 6 bits are the byte offset within a burst.

use crate::geometry::DramGeometry;
use jafar_common::size::log2_exact;
use std::fmt;

/// A physical memory address (byte-granular).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The 64-byte-aligned block base containing this address.
    pub fn block_base(self) -> PhysAddr {
        PhysAddr(self.0 & !63)
    }

    /// Byte offset within the 64-byte block.
    pub fn block_offset(self) -> u32 {
        (self.0 & 63) as u32
    }

    /// Block index (address divided by the burst size).
    pub fn block_index(self) -> u64 {
        self.0 >> 6
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// DRAM coordinates of one 64-byte block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Rank on the module.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Block (burst-sized column group) within the row.
    pub block: u32,
}

/// Bit-assignment policy for decoding physical addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AddressMapping {
    /// `row : bank : rank : block` (MSB → LSB). Consecutive addresses walk
    /// through a whole row in one bank, then the same row index in the next
    /// rank/bank. Streaming-friendly; the default.
    #[default]
    RowBankRankBlock,
    /// `row : block : bank : rank` (MSB → LSB). Consecutive 64-byte blocks
    /// alternate ranks, then banks — classic fine-grained interleaving.
    BankInterleavedBlock,
    /// `rank : row : bank : block` (MSB → LSB). Each rank owns one
    /// contiguous half of the address space; within a rank, consecutive
    /// addresses fill a row, then the same row of the next bank. This is
    /// the placement §2.2 assumes for JAFAR: "the database storage engine
    /// can explicitly shuffle column data so that the physical layout is
    /// contiguous" within the rank the accelerator owns.
    RankRowBankBlock,
}

/// Decoder bound to a geometry: slices addresses into coordinate fields.
#[derive(Clone, Copy, Debug)]
pub struct AddressDecoder {
    mapping: AddressMapping,
    block_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    row_bits: u32,
}

impl AddressDecoder {
    /// Creates a decoder for `geometry` under `mapping`.
    pub fn new(geometry: DramGeometry, mapping: AddressMapping) -> Self {
        geometry.validate();
        AddressDecoder {
            mapping,
            block_bits: log2_exact(geometry.bursts_per_row() as u64),
            bank_bits: log2_exact(geometry.banks_per_rank as u64),
            rank_bits: log2_exact(geometry.ranks as u64),
            row_bits: log2_exact(geometry.rows_per_bank as u64),
        }
    }

    /// The mapping policy this decoder implements.
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Number of addressable bytes.
    pub fn capacity(&self) -> u64 {
        1u64 << (6 + self.block_bits + self.bank_bits + self.rank_bits + self.row_bits)
    }

    /// Decodes an address into DRAM coordinates.
    ///
    /// # Panics
    /// Panics if the address is beyond the module capacity.
    pub fn decode(&self, addr: PhysAddr) -> Coord {
        assert!(
            addr.0 < self.capacity(),
            "address {addr} beyond module capacity {:#x}",
            self.capacity()
        );
        let mut bits = addr.block_index();
        let mut take = |n: u32| {
            let v = (bits & ((1u64 << n) - 1)) as u32;
            bits >>= n;
            v
        };
        match self.mapping {
            AddressMapping::RowBankRankBlock => {
                let block = take(self.block_bits);
                let rank = take(self.rank_bits);
                let bank = take(self.bank_bits);
                let row = take(self.row_bits);
                Coord {
                    rank,
                    bank,
                    row,
                    block,
                }
            }
            AddressMapping::BankInterleavedBlock => {
                let rank = take(self.rank_bits);
                let bank = take(self.bank_bits);
                let block = take(self.block_bits);
                let row = take(self.row_bits);
                Coord {
                    rank,
                    bank,
                    row,
                    block,
                }
            }
            AddressMapping::RankRowBankBlock => {
                let block = take(self.block_bits);
                let bank = take(self.bank_bits);
                let row = take(self.row_bits);
                let rank = take(self.rank_bits);
                Coord {
                    rank,
                    bank,
                    row,
                    block,
                }
            }
        }
    }

    /// Encodes DRAM coordinates back into the base address of the block.
    ///
    /// # Panics
    /// Panics if any coordinate exceeds its field width.
    pub fn encode(&self, coord: Coord) -> PhysAddr {
        assert!(coord.block < 1 << self.block_bits, "block out of range");
        assert!(coord.bank < 1 << self.bank_bits, "bank out of range");
        assert!(coord.rank < 1 << self.rank_bits, "rank out of range");
        assert!(coord.row < 1 << self.row_bits, "row out of range");
        let mut bits: u64 = 0;
        let mut shift = 0u32;
        let mut put = |v: u32, n: u32| {
            bits |= (v as u64) << shift;
            shift += n;
        };
        match self.mapping {
            AddressMapping::RowBankRankBlock => {
                put(coord.block, self.block_bits);
                put(coord.rank, self.rank_bits);
                put(coord.bank, self.bank_bits);
                put(coord.row, self.row_bits);
            }
            AddressMapping::BankInterleavedBlock => {
                put(coord.rank, self.rank_bits);
                put(coord.bank, self.bank_bits);
                put(coord.block, self.block_bits);
                put(coord.row, self.row_bits);
            }
            AddressMapping::RankRowBankBlock => {
                put(coord.block, self.block_bits);
                put(coord.bank, self.bank_bits);
                put(coord.row, self.row_bits);
                put(coord.rank, self.rank_bits);
            }
        }
        PhysAddr(bits << 6)
    }

    /// The contiguous byte range owned by `rank` under the
    /// rank-contiguous mapping.
    ///
    /// # Panics
    /// Panics for mappings where ranks are not contiguous.
    pub fn rank_range(&self, rank: u32) -> std::ops::Range<u64> {
        assert_eq!(
            self.mapping,
            AddressMapping::RankRowBankBlock,
            "ranks are only contiguous under RankRowBankBlock"
        );
        let rank_bytes = self.capacity() >> self.rank_bits;
        let start = rank as u64 * rank_bytes;
        start..start + rank_bytes
    }

    /// The byte range of `rank` under this decoder, if ranks occupy
    /// contiguous address sub-ranges — they do **not** in general (rank bits
    /// sit below row bits), so this returns the rank of a specific address
    /// instead; use [`AddressDecoder::decode`].
    pub fn rank_of(&self, addr: PhysAddr) -> u32 {
        self.decode(addr).rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_common::check::forall;

    fn decoder(mapping: AddressMapping) -> AddressDecoder {
        AddressDecoder::new(DramGeometry::tiny(), mapping)
    }

    #[test]
    fn phys_addr_block_math() {
        let a = PhysAddr(0x1234);
        assert_eq!(a.block_base(), PhysAddr(0x1200));
        assert_eq!(a.block_offset(), 0x34);
        assert_eq!(a.block_index(), 0x48);
        assert_eq!(format!("{a}"), "0x1234");
    }

    #[test]
    fn capacity_matches_geometry() {
        let g = DramGeometry::tiny();
        let d = AddressDecoder::new(g, AddressMapping::RowBankRankBlock);
        assert_eq!(d.capacity(), g.capacity_bytes());
        let g2 = DramGeometry::gem5_2gb();
        let d2 = AddressDecoder::new(g2, AddressMapping::RowBankRankBlock);
        assert_eq!(d2.capacity(), g2.capacity_bytes());
    }

    #[test]
    fn streaming_mapping_stays_in_row() {
        // tiny(): 1 KB rows = 16 blocks. The first 16 consecutive blocks must
        // share (rank, bank, row) under the streaming mapping.
        let d = decoder(AddressMapping::RowBankRankBlock);
        let first = d.decode(PhysAddr(0));
        for blk in 0..16u64 {
            let c = d.decode(PhysAddr(blk * 64));
            assert_eq!((c.rank, c.bank, c.row), (first.rank, first.bank, first.row));
            assert_eq!(c.block, blk as u32);
        }
        // Block 16 moves to the next rank (rank bits sit directly above
        // block bits in this mapping).
        let c = d.decode(PhysAddr(16 * 64));
        assert_eq!(c.rank, 1);
        assert_eq!(c.block, 0);
    }

    #[test]
    fn interleaved_mapping_alternates_ranks_then_banks() {
        let d = decoder(AddressMapping::BankInterleavedBlock);
        let c0 = d.decode(PhysAddr(0));
        let c1 = d.decode(PhysAddr(64));
        let c2 = d.decode(PhysAddr(128));
        assert_eq!(c0.rank, 0);
        assert_eq!(c1.rank, 1);
        assert_eq!((c0.bank, c1.bank), (0, 0));
        assert_eq!(c2.rank, 0);
        assert_eq!(c2.bank, 1);
    }

    #[test]
    fn row_walk_order_differs_between_mappings() {
        // Under streaming mapping, one row's worth of consecutive addresses
        // produces 1 distinct (rank,bank); under interleaving, several.
        let count_distinct = |m: AddressMapping| {
            let d = decoder(m);
            let mut set = std::collections::HashSet::new();
            for blk in 0..16u64 {
                let c = d.decode(PhysAddr(blk * 64));
                set.insert((c.rank, c.bank));
            }
            set.len()
        };
        assert_eq!(count_distinct(AddressMapping::RowBankRankBlock), 1);
        assert_eq!(count_distinct(AddressMapping::BankInterleavedBlock), 8);
    }

    #[test]
    fn rank_contiguous_mapping() {
        let g = DramGeometry::tiny(); // 2 ranks x 4 banks x 64 rows x 1 KB
        let d = AddressDecoder::new(g, AddressMapping::RankRowBankBlock);
        let half = g.capacity_bytes() / 2;
        assert_eq!(d.rank_range(0), 0..half);
        assert_eq!(d.rank_range(1), half..g.capacity_bytes());
        // Everything below `half` decodes to rank 0, above to rank 1.
        for probe in [0, 64, half - 64, half, g.capacity_bytes() - 64] {
            let c = d.decode(PhysAddr(probe));
            assert_eq!(c.rank, u32::from(probe >= half), "probe={probe:#x}");
        }
        // Within a rank, one row's worth of blocks shares (bank, row), then
        // the next row's worth moves to the next bank.
        let first = d.decode(PhysAddr(0));
        for blk in 0..16u64 {
            let c = d.decode(PhysAddr(blk * 64));
            assert_eq!((c.bank, c.row), (first.bank, first.row));
        }
        let next = d.decode(PhysAddr(16 * 64));
        assert_eq!(next.bank, first.bank + 1);
        assert_eq!(next.row, first.row);
    }

    #[test]
    fn rank_contiguous_round_trip() {
        let d = decoder(AddressMapping::RankRowBankBlock);
        for addr in (0..DramGeometry::tiny().capacity_bytes()).step_by(4096 + 64) {
            let a = PhysAddr(addr);
            assert_eq!(d.encode(d.decode(a)), a.block_base());
        }
    }

    #[test]
    #[should_panic(expected = "only contiguous")]
    fn rank_range_requires_contiguous_mapping() {
        decoder(AddressMapping::RowBankRankBlock).rank_range(0);
    }

    #[test]
    #[should_panic(expected = "beyond module capacity")]
    fn out_of_range_decode_panics() {
        let d = decoder(AddressMapping::RowBankRankBlock);
        d.decode(PhysAddr(DramGeometry::tiny().capacity_bytes()));
    }

    #[test]
    fn decode_encode_round_trip() {
        forall("decode_encode_round_trip", 256, |rng| {
            let addr = rng.next_below(DramGeometry::tiny().capacity_bytes());
            let m = if rng.next_bool(0.5) {
                AddressMapping::BankInterleavedBlock
            } else {
                AddressMapping::RowBankRankBlock
            };
            let d = decoder(m);
            let a = PhysAddr(addr);
            let coord = d.decode(a);
            assert_eq!(d.encode(coord), a.block_base());
        });
    }

    #[test]
    fn decode_is_injective_on_blocks() {
        forall("decode_is_injective_on_blocks", 256, |rng| {
            let a = rng.next_below(8192);
            let b = rng.next_below(8192);
            let d = decoder(AddressMapping::RowBankRankBlock);
            let ca = d.decode(PhysAddr(a * 64));
            let cb = d.decode(PhysAddr(b * 64));
            assert_eq!(ca == cb, a == b);
        });
    }

    #[test]
    fn coordinates_in_bounds() {
        forall("coordinates_in_bounds", 256, |rng| {
            let addr = rng.next_below(DramGeometry::tiny().capacity_bytes());
            let g = DramGeometry::tiny();
            let d = decoder(AddressMapping::BankInterleavedBlock);
            let c = d.decode(PhysAddr(addr));
            assert!(c.rank < g.ranks);
            assert!(c.bank < g.banks_per_rank);
            assert!(c.row < g.rows_per_bank);
            assert!(c.block < g.bursts_per_row());
        });
    }
}
