//! # jafar-dram — a functional + timing model of DDR3 SDRAM
//!
//! JAFAR (DaMoN'15) is an accelerator mounted *on the DIMM*, reading data out
//! of the DRAM module's IO buffer. Reproducing its evaluation therefore
//! requires a DRAM model that captures the structures and timing rules the
//! paper reasons about in §2.1:
//!
//! - the **geometry**: ranks of separately packaged chips, banks of arrays,
//!   8 KB rows loaded into per-bank row buffers ([`geometry`]);
//! - the **timing parameters** the paper names — `CL`, `tRCD`, `tRP`, `tRAS` —
//!   plus the rest of the DDR3 rulebook needed for a legal command stream
//!   (`tRC`, `tCCD`, `tRTP`, `tWR`, `tWTR`, `tRRD`, `tFAW`, refresh)
//!   ([`timing`]);
//! - the **8n-prefetch / dual-data-rate** transfer model: one CAS moves a
//!   512-bit burst through the IO buffer over four data-bus cycles
//!   ([`module`]);
//! - the **mode registers**, including the MR3/MPR mechanism §2.2 proposes to
//!   repurpose for granting JAFAR exclusive rank ownership ([`mode`]);
//! - a **functional backing store** so reads return real bytes and the
//!   accelerator's outputs can be checked against software references
//!   ([`data`]);
//! - a **deterministic fault-injection layer** — seeded bit flips filtered
//!   through a SECDED ECC model, completion stalls/drops, transient MRS
//!   glitches, refresh storms — so the host driver's recovery paths can be
//!   exercised reproducibly ([`fault`]).
//!
//! The model is *reservation-based*: each bank tracks the earliest tick at
//! which each command class may legally issue, and [`DramModule::earliest_issue`]
//! / [`DramModule::issue`] expose a checked command interface to the memory
//! controller (`jafar-memctl`) and to the JAFAR device (`jafar-core`), which
//! both act as command agents.
//!
//! [`DramModule::earliest_issue`]: module::DramModule::earliest_issue
//! [`DramModule::issue`]: module::DramModule::issue

pub mod address;
pub mod bank;
pub mod command;
pub mod data;
pub mod fault;
pub mod geometry;
pub mod mode;
pub mod module;
pub mod stats;
pub mod timing;

pub use address::{AddressDecoder, AddressMapping, Coord, PhysAddr};
pub use bank::{Bank, BankState};
pub use command::{DramCommand, Requester};
pub use data::DramData;
pub use fault::{FaultInjector, FaultPlan, FaultStats, ReadDisturbance};
pub use geometry::DramGeometry;
pub use mode::ModeRegs;
pub use module::{BlockAccess, DramModule, IssueError, ReadResult, RowOutcome};
pub use stats::{BankStats, DramStats};
pub use timing::DramTiming;

/// Bytes transferred by one burst (8n-prefetch of 64-bit words = 64 bytes).
pub const BURST_BYTES: u64 = 64;
