//! DRAM module geometry.
//!
//! Paper §2.1: "A DIMM is composed of one or two *ranks*, which are
//! collections of separately packaged SDRAM chips. Each chip is comprised of
//! multiple independently addressable *banks*, where each bank is a
//! collection of *arrays*." Data is interleaved across the arrays of a bank,
//! so from a timing perspective the unit of row-buffer state is the
//! (rank, bank) pair, and a "row" spans all chips of the rank — 8 KB in the
//! Micron parts the paper cites \[34\].

use jafar_common::size::{fmt_bytes, is_pow2};

/// Static geometry of one DRAM module (one DIMM on one channel).
///
/// All dimensions must be powers of two so physical addresses can be sliced
/// into coordinate fields without division.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramGeometry {
    /// Ranks on the DIMM (1 or 2 for DDR3 DIMMs).
    pub ranks: u32,
    /// Banks per rank (8 for DDR3).
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Bytes per row across the whole rank (the row-buffer size; 8 KB in the
    /// Micron 1 Gb parts the paper cites).
    pub row_bytes: u32,
}

impl DramGeometry {
    /// The configuration used throughout the paper's analysis: 2 GB of DDR3
    /// (Table 1, gem5 column) as one dual-rank DIMM with 8 banks per rank
    /// and 8 KB rows.
    ///
    /// 2 ranks × 8 banks × 16384 rows × 8 KB = 2 GiB.
    pub fn gem5_2gb() -> Self {
        let g = DramGeometry {
            ranks: 2,
            banks_per_rank: 8,
            rows_per_bank: 16_384,
            row_bytes: 8 * 1024,
        };
        g.validate();
        g
    }

    /// A small geometry for fast unit tests: 2 ranks × 4 banks × 64 rows ×
    /// 1 KB = 512 KiB.
    pub fn tiny() -> Self {
        let g = DramGeometry {
            ranks: 2,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 1024,
        };
        g.validate();
        g
    }

    /// Checks all dimensions are nonzero powers of two.
    ///
    /// # Panics
    /// Panics if any dimension is invalid.
    pub fn validate(&self) {
        assert!(is_pow2(self.ranks as u64), "ranks must be a power of two");
        assert!(
            is_pow2(self.banks_per_rank as u64),
            "banks_per_rank must be a power of two"
        );
        assert!(
            is_pow2(self.rows_per_bank as u64),
            "rows_per_bank must be a power of two"
        );
        assert!(
            is_pow2(self.row_bytes as u64) && self.row_bytes >= 64,
            "row_bytes must be a power of two and hold at least one burst"
        );
    }

    /// Total capacity of the module in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.ranks as u64
            * self.banks_per_rank as u64
            * self.rows_per_bank as u64
            * self.row_bytes as u64
    }

    /// Capacity of a single rank in bytes.
    pub fn rank_bytes(&self) -> u64 {
        self.capacity_bytes() / self.ranks as u64
    }

    /// 64-byte bursts per row (the paper's "32-byte data blocks" arithmetic
    /// uses half-bursts; we count full 8-word bursts).
    pub fn bursts_per_row(&self) -> u32 {
        self.row_bytes / super::BURST_BYTES as u32
    }

    /// Total number of banks across all ranks.
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.banks_per_rank
    }

    /// Human-readable description, e.g. `2 ranks x 8 banks x 16384 rows x 8KiB = 2GiB`.
    pub fn describe(&self) -> String {
        format!(
            "{} ranks x {} banks x {} rows x {} = {}",
            self.ranks,
            self.banks_per_rank,
            self.rows_per_bank,
            fmt_bytes(self.row_bytes as u64),
            fmt_bytes(self.capacity_bytes())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gem5_geometry_is_2gib() {
        let g = DramGeometry::gem5_2gb();
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024);
        assert_eq!(g.rank_bytes(), 1024 * 1024 * 1024);
        assert_eq!(g.total_banks(), 16);
        // Paper §3.3: "commercial DDR3 chips whose banks store 8KB of data
        // per row" — 128 bursts of 64 B.
        assert_eq!(g.bursts_per_row(), 128);
        assert_eq!(g.describe(), "2 ranks x 8 banks x 16384 rows x 8KiB = 2GiB");
    }

    #[test]
    fn tiny_geometry() {
        let g = DramGeometry::tiny();
        assert_eq!(g.capacity_bytes(), 512 * 1024);
        assert_eq!(g.bursts_per_row(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        DramGeometry {
            ranks: 3,
            banks_per_rank: 8,
            rows_per_bank: 64,
            row_bytes: 1024,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one burst")]
    fn tiny_rows_rejected() {
        DramGeometry {
            ranks: 1,
            banks_per_rank: 8,
            rows_per_bank: 64,
            row_bytes: 32,
        }
        .validate();
    }
}
