//! The DRAM module: banks + ranks + shared data bus + mode registers +
//! functional storage, behind a checked command interface.
//!
//! Two agents drive commands at this interface: the host memory controller
//! (`jafar-memctl`) and the JAFAR device (`jafar-core`), which §2.2 describes
//! as "request\[ing\] data from DRAM in the same way that a CPU would". The
//! module enforces:
//!
//! - per-bank timing reservations ([`crate::bank`]);
//! - rank-level constraints: tRRD and the four-activate window tFAW,
//!   write-to-read turnaround tWTR, periodic refresh;
//! - the data buses: host traffic shares the single channel bus (one burst
//!   at a time, with direction/rank turnaround gaps), while each rank's
//!   NDP device streams over that rank's local IO path — JAFAR sits in the
//!   DIMM's buffer chip, so its bursts never cross the memory channel
//!   (§2.2), and devices on *different* ranks do not serialise against
//!   each other or against host traffic to other ranks;
//! - MPR-based rank ownership: while a rank's MR3 MPR bit is set, *host*
//!   READ/WRITE commands are rejected ([`IssueError::RankOwnedByNdp`]) and
//!   *NDP* data commands are only accepted on owned ranks
//!   ([`IssueError::NdpWithoutOwnership`]) — the contract §2.2 builds the
//!   ownership handoff on.
//!
//! Command-bus contention is not modelled (commands are assumed to find a
//! free command slot); for the workloads studied here the data bus and bank
//! timing dominate, which is the standard simplification in trace-driven
//! DRAM models.

use crate::address::{AddressDecoder, AddressMapping, Coord, PhysAddr};
use crate::bank::{Bank, BankState};
use crate::command::{DramCommand, Requester};
use crate::data::DramData;
use crate::fault::{FaultInjector, FaultStats};
use crate::geometry::DramGeometry;
use crate::mode::ModeRegs;
use crate::stats::DramStats;
use crate::timing::DramTiming;
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::time::Tick;
use std::collections::VecDeque;

/// Why a command could not issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IssueError {
    /// A host data command targeted a rank whose MPR is enabled (owned by
    /// the NDP device).
    RankOwnedByNdp,
    /// An NDP data command targeted a rank it does not own.
    NdpWithoutOwnership,
    /// The command is illegal in the bank's current state (e.g. READ on an
    /// idle bank, ACTIVATE with a row already open). The payload names the
    /// violated expectation.
    WrongState(&'static str),
    /// The command is legal but not yet: it may issue at the contained tick.
    TooEarly(Tick),
    /// REFRESH/MRS targeted a rank with open rows.
    RanksNotQuiesced,
    /// The SECDED ECC model detected a double-bit error in the read burst
    /// (injected by [`crate::fault::FaultInjector`]). The transfer happened
    /// — bank and bus state advanced — but the data must not be consumed.
    Uncorrectable,
    /// A ModeRegisterSet was transiently ignored by the rank (injected
    /// fault). The command had no effect and may simply be retried.
    MrsGlitch,
}

/// Result of a successfully issued READ.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// The 64 bytes of the burst.
    pub data: [u8; 64],
    /// When the first beat appears on the data bus (CAS + CL).
    pub bus_start: Tick,
    /// When the last beat has transferred (burst complete).
    pub data_ready: Tick,
}

/// Row-buffer outcome of a block-level access (for locality statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row was already open.
    Hit,
    /// The bank was idle; one ACTIVATE was needed.
    Miss,
    /// A different row was open; PRECHARGE + ACTIVATE were needed.
    Conflict,
}

/// Result of a block-level access performed by [`DramModule::serve_block`].
#[derive(Clone, Debug)]
pub struct BlockAccess {
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
    /// When the burst completed on the data bus.
    pub data_ready: Tick,
    /// The bytes read (reads only).
    pub data: Option<[u8; 64]>,
}

#[derive(Clone, Copy, Debug)]
struct BusOp {
    is_write: bool,
    rank: u32,
    end: Tick,
}

#[derive(Clone, Debug)]
struct RankState {
    mode: ModeRegs,
    /// Issue ticks of recent ACTIVATEs (pruned to the tFAW window).
    act_history: VecDeque<Tick>,
    /// Earliest next ACTIVATE anywhere in the rank (tRRD).
    rrd_allowed: Tick,
    /// Earliest next READ CAS in the rank after a write burst (tWTR).
    wtr_until: Tick,
    /// Next scheduled refresh deadline.
    next_refresh: Tick,
    /// Deadline of the current NDP ownership lease (`Tick::MAX` when the
    /// lease is unbounded or the rank is host-owned). The module records
    /// it; admission control against it happens at job-issue time in the
    /// device (§2.2's contract is that granted work finishes within the
    /// allotted window, so per-command policing would be too strict).
    ndp_deadline: Tick,
}

impl RankState {
    fn new(t: &DramTiming) -> Self {
        RankState {
            mode: ModeRegs::new(),
            act_history: VecDeque::with_capacity(8),
            rrd_allowed: Tick::ZERO,
            wtr_until: Tick::ZERO,
            next_refresh: t.t_refi,
            ndp_deadline: Tick::MAX,
        }
    }
}

/// One DRAM module (DIMM) on a memory channel.
///
/// ```
/// use jafar_common::time::Tick;
/// use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr, Requester};
///
/// let mut module = DramModule::new(
///     DramGeometry::tiny(),
///     DramTiming::ddr3_paper().without_refresh(),
///     AddressMapping::RankRowBankBlock,
/// );
/// module.data_mut().write_i64(PhysAddr(0), 42);
///
/// // A closed-row read pays ACT + tRCD + CL + burst = 30 ns.
/// let access = module
///     .serve_addr(PhysAddr(0), false, Requester::Host, Tick::ZERO, None)
///     .unwrap();
/// assert_eq!(access.data_ready, Tick::from_ns(30));
/// let data = access.data.unwrap();
/// assert_eq!(i64::from_le_bytes(data[..8].try_into().unwrap()), 42);
/// ```
pub struct DramModule {
    geometry: DramGeometry,
    timing: DramTiming,
    decoder: AddressDecoder,
    banks: Vec<Bank>,
    ranks: Vec<RankState>,
    /// The shared memory-channel data bus (host traffic).
    host_bus: Option<BusOp>,
    /// Per-rank local IO paths (NDP traffic): the device's bursts stay
    /// inside the DIMM, one stream per rank.
    ndp_bus: Vec<Option<BusOp>>,
    data: DramData,
    stats: DramStats,
    fault: Option<FaultInjector>,
    tracer: SharedTracer,
}

impl Requester {
    fn label(self) -> &'static str {
        match self {
            Requester::Host => "host",
            Requester::Ndp => "ndp",
        }
    }
}

impl DramModule {
    /// Builds a module with the given geometry, timing, and address mapping.
    pub fn new(geometry: DramGeometry, timing: DramTiming, mapping: AddressMapping) -> Self {
        geometry.validate();
        timing.validate();
        DramModule {
            geometry,
            timing,
            decoder: AddressDecoder::new(geometry, mapping),
            banks: (0..geometry.total_banks()).map(|_| Bank::new()).collect(),
            ranks: (0..geometry.ranks)
                .map(|_| RankState::new(&timing))
                .collect(),
            host_bus: None,
            ndp_bus: vec![None; geometry.ranks as usize],
            data: DramData::new(geometry.capacity_bytes()),
            stats: DramStats::default(),
            fault: None,
            tracer: SharedTracer::disabled(),
        }
    }

    /// Attaches an event tracer. All DRAM commands, row-buffer outcomes and
    /// fault injections are emitted into it. Tracing is observational only:
    /// it never changes any simulated timing.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = tracer;
    }

    /// The attached tracer handle (disabled by default).
    pub fn tracer(&self) -> &SharedTracer {
        &self.tracer
    }

    /// Installs (or removes) a fault injector on this module's data and
    /// command paths. Passing `None` restores fault-free operation.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.fault = injector;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// What the installed injector has done so far (`None` if fault-free).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_ref().map(FaultInjector::stats)
    }

    /// Records the expiry deadline of the current NDP lease on `rank`.
    /// `Tick::MAX` means unbounded. Enforced at job admission by the
    /// device, not per command (see `RankState`'s field docs).
    pub fn set_ndp_deadline(&mut self, rank: u32, deadline: Tick) {
        self.ranks[rank as usize].ndp_deadline = deadline;
    }

    /// The NDP lease deadline of `rank` (`Tick::MAX` if unbounded).
    pub fn ndp_deadline(&self, rank: u32) -> Tick {
        self.ranks[rank as usize].ndp_deadline
    }

    /// Module geometry.
    pub fn geometry(&self) -> DramGeometry {
        self.geometry
    }

    /// Timing rulebook.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Address decoder (shared with the memory controller).
    pub fn decoder(&self) -> &AddressDecoder {
        &self.decoder
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Per-bank state (for inspection/tests).
    pub fn bank(&self, rank: u32, bank: u32) -> &Bank {
        &self.banks[self.bank_index(rank, bank)]
    }

    /// Functional backing store (read-only).
    pub fn data(&self) -> &DramData {
        &self.data
    }

    /// Functional backing store (mutable, for zero-time initialisation of
    /// workload data — the simulation-setup equivalent of data already being
    /// resident in memory).
    pub fn data_mut(&mut self) -> &mut DramData {
        &mut self.data
    }

    /// Mode registers of `rank`.
    pub fn mode_regs(&self, rank: u32) -> &ModeRegs {
        &self.ranks[rank as usize].mode
    }

    /// True if `rank` is currently owned by the NDP device (MPR enabled).
    pub fn rank_owned_by_ndp(&self, rank: u32) -> bool {
        self.ranks[rank as usize].mode.mpr_enabled()
    }

    /// True if `rank` has a refresh deadline at or before `now`.
    pub fn refresh_due(&self, rank: u32, now: Tick) -> bool {
        self.timing.refresh_enabled && now >= self.ranks[rank as usize].next_refresh
    }

    /// The next refresh deadline of `rank` (`Tick::MAX` if refresh disabled).
    pub fn refresh_deadline(&self, rank: u32) -> Tick {
        if self.timing.refresh_enabled {
            self.ranks[rank as usize].next_refresh
        } else {
            Tick::MAX
        }
    }

    fn bank_index(&self, rank: u32, bank: u32) -> usize {
        debug_assert!(rank < self.geometry.ranks && bank < self.geometry.banks_per_rank);
        (rank * self.geometry.banks_per_rank + bank) as usize
    }

    /// The data-bus slot `requester`'s burst on `rank` occupies: the shared
    /// channel bus for the host, the rank's local IO path for the NDP
    /// device.
    fn bus_slot(&self, requester: Requester, rank: u32) -> &Option<BusOp> {
        match requester {
            Requester::Host => &self.host_bus,
            Requester::Ndp => &self.ndp_bus[rank as usize],
        }
    }

    fn bus_slot_mut(&mut self, requester: Requester, rank: u32) -> &mut Option<BusOp> {
        match requester {
            Requester::Host => &mut self.host_bus,
            Requester::Ndp => &mut self.ndp_bus[rank as usize],
        }
    }

    /// Bus-availability constraint for a burst whose data phase starts
    /// `lead` after the command: earliest command tick ≥ `now`. The same
    /// turnaround rules apply on every bus; which bus the burst occupies
    /// depends on the requester (see [`DramModule::bus_slot`]).
    fn bus_constraint(
        &self,
        now: Tick,
        lead: Tick,
        is_write: bool,
        rank: u32,
        requester: Requester,
    ) -> Tick {
        match *self.bus_slot(requester, rank) {
            None => now,
            Some(op) => {
                // Direction or rank switches need a turnaround bubble.
                let gap = if op.is_write != is_write || op.rank != rank {
                    Tick::from_ps(2 * self.timing.bus_clock.period().as_ps())
                } else {
                    Tick::ZERO
                };
                let earliest_data = op.end + gap;
                if earliest_data <= now + lead {
                    now
                } else {
                    earliest_data - lead
                }
            }
        }
    }

    fn check_ownership(&self, cmd: &DramCommand, requester: Requester) -> Result<(), IssueError> {
        if !cmd.is_data_command() {
            return Ok(());
        }
        let owned = self.rank_owned_by_ndp(cmd.rank());
        match (requester, owned) {
            (Requester::Host, true) => Err(IssueError::RankOwnedByNdp),
            (Requester::Ndp, false) => Err(IssueError::NdpWithoutOwnership),
            _ => Ok(()),
        }
    }

    /// The earliest tick ≥ `now` at which `cmd` may legally issue, or why it
    /// cannot.
    pub fn earliest_issue(
        &self,
        cmd: DramCommand,
        requester: Requester,
        now: Tick,
    ) -> Result<Tick, IssueError> {
        self.check_ownership(&cmd, requester)?;
        let t = &self.timing;
        match cmd {
            DramCommand::Activate { rank, bank, .. } => {
                let b = &self.banks[self.bank_index(rank, bank)];
                let base = b
                    .earliest_activate(now)
                    .ok_or(IssueError::WrongState("ACTIVATE requires an idle bank"))?;
                let rs = &self.ranks[rank as usize];
                let mut earliest = base.max(rs.rrd_allowed);
                if rs.act_history.len() >= 4 {
                    let fourth_back = rs.act_history[rs.act_history.len() - 4];
                    earliest = earliest.max(fourth_back + t.t_faw);
                }
                Ok(earliest.max(now))
            }
            DramCommand::Read { rank, bank, .. } => {
                let b = &self.banks[self.bank_index(rank, bank)];
                let row = b
                    .open_row()
                    .ok_or(IssueError::WrongState("READ requires an open row"))?;
                let base = b.earliest_read(row, now).expect("row is open");
                let rs = &self.ranks[rank as usize];
                // tWTR: reads must wait after a write burst to the rank.
                let wtr = rs.wtr_until;
                let cas = base.max(wtr).max(now);
                Ok(self.bus_constraint(cas, t.cl, false, rank, requester))
            }
            DramCommand::Write { rank, bank, .. } => {
                let b = &self.banks[self.bank_index(rank, bank)];
                let row = b
                    .open_row()
                    .ok_or(IssueError::WrongState("WRITE requires an open row"))?;
                let base = b.earliest_write(row, now).expect("row is open");
                Ok(self.bus_constraint(base.max(now), t.cwl, true, rank, requester))
            }
            DramCommand::Precharge { rank, bank } => {
                let b = &self.banks[self.bank_index(rank, bank)];
                Ok(b.earliest_precharge(now))
            }
            DramCommand::PrechargeAll { rank } => {
                let mut earliest = now;
                for bank in 0..self.geometry.banks_per_rank {
                    earliest = earliest
                        .max(self.banks[self.bank_index(rank, bank)].earliest_precharge(now));
                }
                Ok(earliest)
            }
            DramCommand::Refresh { rank } | DramCommand::ModeRegisterSet { rank, .. } => {
                let mut earliest = now;
                for bank in 0..self.geometry.banks_per_rank {
                    let b = &self.banks[self.bank_index(rank, bank)];
                    match b.refresh_ready(now) {
                        Some(ready) => earliest = earliest.max(ready),
                        None => return Err(IssueError::RanksNotQuiesced),
                    }
                }
                Ok(earliest)
            }
        }
    }

    /// Issues `cmd` at tick `at`. For WRITE commands, `write_data` is the
    /// burst payload; pass `None` for a *timing-only* write (the functional
    /// store was applied synchronously by a higher layer, e.g. the cache
    /// hierarchy's write-through-at-store-time model). Non-write commands
    /// must pass `None`. Returns the read burst for READ commands.
    ///
    /// # Errors
    /// Propagates [`IssueError`], including [`IssueError::TooEarly`] when
    /// `at` violates a timing reservation.
    ///
    /// # Panics
    /// Panics if `write_data` is supplied for a non-write command.
    pub fn issue(
        &mut self,
        cmd: DramCommand,
        requester: Requester,
        at: Tick,
        write_data: Option<&[u8; 64]>,
    ) -> Result<Option<ReadResult>, IssueError> {
        assert!(
            write_data.is_none() || matches!(cmd, DramCommand::Write { .. }),
            "write payload supplied for a non-write command"
        );
        let earliest = match self.earliest_issue(cmd, requester, at) {
            Ok(e) => e,
            Err(e) => {
                if matches!(e, IssueError::RankOwnedByNdp) {
                    self.stats.ownership_rejections.inc();
                }
                return Err(e);
            }
        };
        if at < earliest {
            return Err(IssueError::TooEarly(earliest));
        }
        if self.tracer.is_enabled() {
            let (name, rank, bank) = match cmd {
                DramCommand::Activate { rank, bank, .. } => ("ACT", rank, bank),
                DramCommand::Read { rank, bank, .. } => ("RD", rank, bank),
                DramCommand::Write { rank, bank, .. } => ("WR", rank, bank),
                DramCommand::Precharge { rank, bank } => ("PRE", rank, bank),
                DramCommand::PrechargeAll { rank } => ("PREA", rank, 0),
                DramCommand::Refresh { rank } => ("REF", rank, 0),
                DramCommand::ModeRegisterSet { rank, .. } => ("MRS", rank, 0),
            };
            self.tracer.emit(
                at,
                EventKind::DramCmd {
                    cmd: name,
                    rank,
                    bank,
                    requester: requester.label(),
                },
            );
        }
        let t = self.timing;
        match cmd {
            DramCommand::Activate { rank, bank, row } => {
                let idx = self.bank_index(rank, bank);
                self.banks[idx].activate(row, at, &t);
                let rs = &mut self.ranks[rank as usize];
                rs.rrd_allowed = rs.rrd_allowed.max(at + t.t_rrd);
                rs.act_history.push_back(at);
                while let Some(&front) = rs.act_history.front() {
                    if rs.act_history.len() > 4 && front + t.t_faw <= at {
                        rs.act_history.pop_front();
                    } else {
                        break;
                    }
                }
                Ok(None)
            }
            DramCommand::Read { rank, bank, block } => {
                let idx = self.bank_index(rank, bank);
                let row = self.banks[idx].open_row().expect("checked");
                let (bus_start, mut data_ready) = self.banks[idx].read(at, &t);
                *self.bus_slot_mut(requester, rank) = Some(BusOp {
                    is_write: false,
                    rank,
                    end: data_ready,
                });
                let addr = self.decoder.encode(Coord {
                    rank,
                    bank,
                    row,
                    block,
                });
                let mut data = self.data.read_burst(addr);
                self.stats.read_bursts.inc();
                if let Some(fault) = self.fault.as_mut() {
                    // Faults perturb only the returned copy and the
                    // requester-observed completion time; bank/bus
                    // reservations stay normal so retries can recover.
                    let dark = fault.rank_dark(rank, at);
                    let disturbance = fault.on_read_burst(&mut data, rank, at);
                    data_ready = data_ready
                        .checked_add(disturbance.extra_delay)
                        .unwrap_or(Tick::MAX);
                    if disturbance.extra_delay > Tick::ZERO {
                        self.tracer.emit(
                            at,
                            EventKind::FaultInjected {
                                kind: if dark { "outage" } else { "stall" },
                            },
                        );
                    }
                    if disturbance.uncorrectable {
                        self.tracer.emit(
                            at,
                            EventKind::FaultInjected {
                                kind: "uncorrectable",
                            },
                        );
                        return Err(IssueError::Uncorrectable);
                    }
                }
                Ok(Some(ReadResult {
                    data,
                    bus_start,
                    data_ready,
                }))
            }
            DramCommand::Write { rank, bank, block } => {
                let idx = self.bank_index(rank, bank);
                let row = self.banks[idx].open_row().expect("checked");
                let (_, data_end) = self.banks[idx].write(at, &t);
                *self.bus_slot_mut(requester, rank) = Some(BusOp {
                    is_write: true,
                    rank,
                    end: data_end,
                });
                let rs = &mut self.ranks[rank as usize];
                rs.wtr_until = rs.wtr_until.max(data_end + t.t_wtr);
                if let Some(payload) = write_data {
                    let addr = self.decoder.encode(Coord {
                        rank,
                        bank,
                        row,
                        block,
                    });
                    self.data.write_burst(addr, payload);
                }
                self.stats.write_bursts.inc();
                Ok(None)
            }
            DramCommand::Precharge { rank, bank } => {
                let idx = self.bank_index(rank, bank);
                self.banks[idx].precharge(at, &t);
                Ok(None)
            }
            DramCommand::PrechargeAll { rank } => {
                for bank in 0..self.geometry.banks_per_rank {
                    let idx = self.bank_index(rank, bank);
                    self.banks[idx].precharge(at, &t);
                }
                Ok(None)
            }
            DramCommand::Refresh { rank } => {
                let until = at + t.t_rfc;
                for bank in 0..self.geometry.banks_per_rank {
                    let idx = self.bank_index(rank, bank);
                    self.banks[idx].block_until(until);
                }
                let rs = &mut self.ranks[rank as usize];
                rs.next_refresh = (rs.next_refresh + t.t_refi).max(at);
                self.stats.refreshes.inc();
                Ok(None)
            }
            DramCommand::ModeRegisterSet { rank, mr, value } => {
                if let Some(fault) = self.fault.as_mut() {
                    let dark = fault.rank_dark(rank, at);
                    if fault.on_mode_register_set(rank, at) {
                        // Transient glitch (or a dark rank): the rank
                        // ignored the command. No state changed; the
                        // caller may retry.
                        self.tracer.emit(
                            at,
                            EventKind::FaultInjected {
                                kind: if dark { "outage" } else { "mrs-glitch" },
                            },
                        );
                        return Err(IssueError::MrsGlitch);
                    }
                }
                let until = at + t.t_mod;
                for bank in 0..self.geometry.banks_per_rank {
                    let idx = self.bank_index(rank, bank);
                    self.banks[idx].block_until(until);
                }
                let was_ndp = self.rank_owned_by_ndp(rank);
                self.ranks[rank as usize].mode.set(mr, value);
                self.stats.mode_sets.inc();
                let now_ndp = self.rank_owned_by_ndp(rank);
                if now_ndp != was_ndp {
                    self.tracer.emit(
                        until,
                        EventKind::OwnershipChange {
                            rank,
                            to_ndp: now_ndp,
                        },
                    );
                }
                Ok(None)
            }
        }
    }

    /// Closes any open rows on `rank` (precharge-all) and applies an
    /// injected refresh storm of `n` back-to-back refreshes starting at
    /// `cursor`. Returns the tick at which the rank is available again.
    ///
    /// # Errors
    /// Propagates [`IssueError`] from the quiescing precharge (e.g. an
    /// ownership rejection).
    fn apply_refresh_storm(
        &mut self,
        rank: u32,
        requester: Requester,
        mut cursor: Tick,
        n: u32,
    ) -> Result<Tick, IssueError> {
        let needs_close = (0..self.geometry.banks_per_rank).any(|b| {
            matches!(
                self.banks[self.bank_index(rank, b)].state(),
                BankState::Active { .. }
            )
        });
        if needs_close {
            let pre = DramCommand::PrechargeAll { rank };
            let at = self.earliest_issue(pre, requester, cursor)?;
            self.issue(pre, requester, at, None)?;
            cursor = at;
        }
        let until = cursor + self.timing.t_rfc * n as u64;
        for bank in 0..self.geometry.banks_per_rank {
            let idx = self.bank_index(rank, bank);
            self.banks[idx].block_until(until);
        }
        self.stats.refreshes.add(n as u64);
        if self.timing.refresh_enabled {
            // The storm's refreshes count toward the schedule: the rank
            // was just fully refreshed, so the next regular refresh is due
            // one tREFI after the storm drains. Without this, a retry at
            // `until` would find the same refresh still due and livelock.
            let rs = &mut self.ranks[rank as usize];
            rs.next_refresh = rs.next_refresh.max(until + self.timing.t_refi);
        }
        self.tracer.emit(
            cursor,
            EventKind::FaultInjected {
                kind: "refresh-storm",
            },
        );
        Ok(until)
    }

    /// Performs any overdue refreshes on `rank`, closing open rows as
    /// needed. Returns the tick at which the rank is available again (≥
    /// `now`). Idempotent when no refresh is due.
    ///
    /// # Errors
    /// Returns [`IssueError::TooEarly`] when an injected refresh storm
    /// preempts a *due* scheduled refresh: the storm seizes the rank for
    /// `n × tRFC` and the caller's transaction cannot proceed this attempt.
    /// The storm is consumed here, so retrying at the returned tick
    /// succeeds. Other scheduling failures (e.g. ownership rejections) are
    /// propagated instead of panicking.
    pub fn maintain_refresh(
        &mut self,
        rank: u32,
        now: Tick,
        requester: Requester,
    ) -> Result<Tick, IssueError> {
        let mut cursor = now;
        while self.refresh_due(rank, cursor) {
            // An injected refresh storm colliding with a due scheduled
            // refresh preempts it: surface a recoverable error instead of
            // silently stretching the transaction.
            if let Some(n) = self.fault.as_mut().and_then(|f| f.refresh_storm(rank)) {
                let until = self.apply_refresh_storm(rank, requester, cursor, n)?;
                self.tracer.emit(
                    cursor,
                    EventKind::ErrorSurfaced {
                        site: "refresh",
                        detail: "storm-preempted",
                    },
                );
                return Err(IssueError::TooEarly(until));
            }
            // Quiesce: close all open rows first.
            let needs_close = (0..self.geometry.banks_per_rank).any(|b| {
                matches!(
                    self.banks[self.bank_index(rank, b)].state(),
                    BankState::Active { .. }
                )
            });
            if needs_close {
                let at =
                    self.earliest_issue(DramCommand::PrechargeAll { rank }, requester, cursor)?;
                self.issue(DramCommand::PrechargeAll { rank }, requester, at, None)?;
                cursor = at;
            }
            let at = match self.earliest_issue(DramCommand::Refresh { rank }, requester, cursor) {
                Ok(at) => at,
                Err(e) => {
                    self.tracer.emit(
                        cursor,
                        EventKind::ErrorSurfaced {
                            site: "refresh",
                            detail: "schedule-failed",
                        },
                    );
                    return Err(e);
                }
            };
            self.issue(DramCommand::Refresh { rank }, requester, at, None)?;
            cursor = at + self.timing.t_rfc;
        }
        Ok(cursor)
    }

    /// Serves one 64-byte block access as an atomic transaction under an
    /// open-page policy: precharge/activate as needed, then CAS — each step
    /// at its earliest legal tick ≥ `now`. This is the transaction-level
    /// interface the memory controller and the JAFAR device both use.
    ///
    /// For writes, `write_data` of `None` performs a timing-only write (see
    /// [`DramModule::issue`]).
    ///
    /// # Errors
    /// Propagates ownership errors.
    ///
    /// # Panics
    /// Panics if `write_data` is supplied for a read.
    pub fn serve_block(
        &mut self,
        coord: Coord,
        is_write: bool,
        requester: Requester,
        now: Tick,
        write_data: Option<&[u8; 64]>,
    ) -> Result<BlockAccess, IssueError> {
        assert!(
            write_data.is_none() || is_write,
            "payload supplied for a read"
        );
        // Fast ownership check before mutating anything.
        let probe = if is_write {
            DramCommand::write(coord)
        } else {
            DramCommand::read(coord)
        };
        self.check_ownership(&probe, requester).inspect_err(|e| {
            if matches!(e, IssueError::RankOwnedByNdp) {
                self.stats.ownership_rejections.inc();
            }
        })?;

        let mut cursor = if self.timing.refresh_enabled {
            self.maintain_refresh(coord.rank, now, requester)?
        } else {
            now
        };

        // Injected refresh storm: the rank is preempted by back-to-back
        // refreshes before this transaction proceeds (independent of the
        // regular tREFI schedule, which may be disabled). Like regular
        // refresh, the storm quiesces the rank — open rows close first.
        if let Some(n) = self
            .fault
            .as_mut()
            .and_then(|f| f.refresh_storm(coord.rank))
        {
            cursor = self.apply_refresh_storm(coord.rank, requester, cursor, n)?;
        }

        let idx = self.bank_index(coord.rank, coord.bank);
        let outcome = match self.banks[idx].state() {
            BankState::Active { row } if row == coord.row => RowOutcome::Hit,
            BankState::Idle => RowOutcome::Miss,
            BankState::Active { .. } => RowOutcome::Conflict,
        };
        self.tracer.emit(
            cursor,
            EventKind::RowAccess {
                outcome: match outcome {
                    RowOutcome::Hit => "hit",
                    RowOutcome::Miss => "miss",
                    RowOutcome::Conflict => "conflict",
                },
                rank: coord.rank,
                bank: coord.bank,
            },
        );
        match outcome {
            RowOutcome::Hit => {}
            RowOutcome::Conflict => {
                let pre = DramCommand::precharge(coord);
                let at = self
                    .earliest_issue(pre, requester, cursor)
                    .expect("precharge always legal");
                self.issue(pre, requester, at, None).expect("legal");
                cursor = at;
                let act = DramCommand::activate(coord);
                let at = self
                    .earliest_issue(act, requester, cursor)
                    .expect("bank now idle");
                self.issue(act, requester, at, None).expect("legal");
                cursor = at;
            }
            RowOutcome::Miss => {
                let act = DramCommand::activate(coord);
                let at = self
                    .earliest_issue(act, requester, cursor)
                    .expect("bank idle");
                self.issue(act, requester, at, None).expect("legal");
                cursor = at;
            }
        }
        match outcome {
            RowOutcome::Hit => self.stats.row_hits.inc(),
            RowOutcome::Miss => self.stats.row_misses.inc(),
            RowOutcome::Conflict => self.stats.row_conflicts.inc(),
        }

        if is_write {
            let cmd = DramCommand::write(coord);
            let at = self
                .earliest_issue(cmd, requester, cursor)
                .expect("row open");
            self.issue(cmd, requester, at, write_data)
                .expect("legal by construction");
            let data_ready = at + self.timing.cwl + self.timing.t_burst;
            Ok(BlockAccess {
                outcome,
                data_ready,
                data: None,
            })
        } else {
            let cmd = DramCommand::read(coord);
            let at = self
                .earliest_issue(cmd, requester, cursor)
                .expect("row open");
            let result = match self.issue(cmd, requester, at, None) {
                Ok(r) => r.expect("read returns data"),
                // The only fallible outcome of a read scheduled at its
                // earliest legal tick is an injected ECC failure.
                Err(e @ IssueError::Uncorrectable) => return Err(e),
                Err(e) => unreachable!("read scheduled at its earliest legal tick: {e:?}"),
            };
            Ok(BlockAccess {
                outcome,
                data_ready: result.data_ready,
                data: Some(result.data),
            })
        }
    }

    /// Serves a block access by physical address (decode + [`Self::serve_block`]).
    ///
    /// # Errors
    /// Propagates ownership errors.
    pub fn serve_addr(
        &mut self,
        addr: PhysAddr,
        is_write: bool,
        requester: Requester,
        now: Tick,
        write_data: Option<&[u8; 64]>,
    ) -> Result<BlockAccess, IssueError> {
        let coord = self.decoder.decode(addr.block_base());
        self.serve_block(coord, is_write, requester, now, write_data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::MR3_MPR_ENABLE;

    fn module() -> DramModule {
        DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RowBankRankBlock,
        )
    }

    fn coord(rank: u32, bank: u32, row: u32, block: u32) -> Coord {
        Coord {
            rank,
            bank,
            row,
            block,
        }
    }

    #[test]
    fn closed_row_read_end_to_end_latency() {
        let mut m = module();
        let c = coord(0, 0, 0, 0);
        let access = m
            .serve_block(c, false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        assert_eq!(access.outcome, RowOutcome::Miss);
        // ACT@0 → RD@tRCD → data done @ tRCD + CL + tBURST = 13+13+4 = 30 ns.
        assert_eq!(access.data_ready, Tick::from_ns(30));
    }

    #[test]
    fn row_hit_stream_saturates_bus() {
        let mut m = module();
        let mut now = Tick::ZERO;
        let mut ready = Vec::new();
        for block in 0..8 {
            let a = m
                .serve_block(coord(0, 0, 0, block), false, Requester::Host, now, None)
                .unwrap();
            now = a
                .data_ready
                .saturating_sub(m.timing().cl + m.timing().t_burst);
            ready.push(a.data_ready);
        }
        // After the first access, every subsequent burst completes exactly
        // tCCD (= tBURST = 4 ns) after the previous: streaming at full
        // bandwidth, the §2.2 regime where JAFAR sees one burst per 4 ns.
        for pair in ready.windows(2) {
            assert_eq!(pair[1] - pair[0], Tick::from_ns(4), "ready={ready:?}");
        }
        assert_eq!(m.stats().row_hits.get(), 7);
        assert_eq!(m.stats().row_misses.get(), 1);
    }

    #[test]
    fn row_conflict_costs_precharge_plus_activate() {
        let mut m = module();
        let a0 = m
            .serve_block(coord(0, 0, 0, 0), false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        let a1 = m
            .serve_block(
                coord(0, 0, 1, 0),
                false,
                Requester::Host,
                a0.data_ready,
                None,
            )
            .unwrap();
        assert_eq!(a1.outcome, RowOutcome::Conflict);
        // Conflict path: wait for tRAS (35ns from ACT@0), PRE, +tRP, ACT,
        // +tRCD, RD, +CL+tBURST → 35+13+13+13+4 = 78 ns.
        assert_eq!(a1.data_ready, Tick::from_ns(78));
        assert_eq!(m.stats().row_conflicts.get(), 1);
    }

    #[test]
    fn banks_overlap_but_bus_serialises() {
        let mut m = module();
        // Same rank, different banks, issued "simultaneously".
        let a = m
            .serve_block(coord(0, 0, 0, 0), false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        let b = m
            .serve_block(coord(0, 1, 0, 0), false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        // Bank 1's ACT can overlap bank 0's, but its data burst must queue
        // behind bank 0's on the shared bus: at least tBURST later.
        assert!(b.data_ready >= a.data_ready + m.timing().t_burst);
        // And much sooner than a serial closed-row access pair (60 ns).
        assert!(b.data_ready < Tick::from_ns(60));
    }

    #[test]
    fn ndp_streams_use_per_rank_io_not_the_channel_bus() {
        use crate::mode::MR3_MPR_ENABLE;
        let mut m = module();
        // Hand both ranks to NDP devices.
        for rank in 0..2 {
            let mrs = DramCommand::ModeRegisterSet {
                rank,
                mr: 3,
                value: MR3_MPR_ENABLE,
            };
            let at = m.earliest_issue(mrs, Requester::Host, Tick::ZERO).unwrap();
            m.issue(mrs, Requester::Host, at, None).unwrap();
        }
        // A burst on rank 0's local IO path must not delay a simultaneous
        // burst on rank 1's: both devices see identical first-access
        // latency, where the old shared bus would queue the second burst.
        let a = m
            .serve_block(coord(0, 0, 0, 0), false, Requester::Ndp, Tick::ZERO, None)
            .unwrap();
        let b = m
            .serve_block(coord(1, 0, 0, 0), false, Requester::Ndp, Tick::ZERO, None)
            .unwrap();
        assert_eq!(a.data_ready, b.data_ready, "rank-local IO paths overlap");
        // Host traffic on an unowned rank? Both ranks are owned here, so
        // release rank 1 and check the channel bus ignores NDP activity.
        let quiet = Tick::from_us(1);
        let pre = DramCommand::PrechargeAll { rank: 1 };
        let at = m.earliest_issue(pre, Requester::Host, quiet).unwrap();
        m.issue(pre, Requester::Host, at, None).unwrap();
        let mrs = DramCommand::ModeRegisterSet {
            rank: 1,
            mr: 3,
            value: 0,
        };
        let at = m.earliest_issue(mrs, Requester::Host, at).unwrap();
        m.issue(mrs, Requester::Host, at, None).unwrap();
        let host_t0 = at + m.timing().t_mod;
        let ndp = m
            .serve_block(coord(0, 0, 0, 1), false, Requester::Ndp, host_t0, None)
            .unwrap();
        let host = m
            .serve_block(coord(1, 0, 0, 0), false, Requester::Host, host_t0, None)
            .unwrap();
        // The host's burst ends one row cycle after issue, unaffected by
        // the NDP burst occupying rank 0's IO path at the same instant.
        assert_eq!(host.data_ready, host_t0 + Tick::from_ns(30));
        assert!(ndp.data_ready <= host.data_ready);
    }

    #[test]
    fn write_then_read_pays_wtr() {
        let mut m = module();
        let payload = [7u8; 64];
        let w = m
            .serve_block(
                coord(0, 0, 0, 0),
                true,
                Requester::Host,
                Tick::ZERO,
                Some(&payload),
            )
            .unwrap();
        let r = m
            .serve_block(
                coord(0, 0, 0, 1),
                false,
                Requester::Host,
                w.data_ready,
                None,
            )
            .unwrap();
        // Read CAS must wait tWTR after write data end; data returns CL later.
        assert!(r.data_ready >= w.data_ready + m.timing().t_wtr + m.timing().cl);
        // Functional: the write landed.
        assert_eq!(m.data().read_burst(PhysAddr(0)), payload);
    }

    #[test]
    fn functional_read_returns_stored_bytes() {
        let mut m = module();
        let mut want = [0u8; 64];
        for (i, b) in want.iter_mut().enumerate() {
            *b = (i * 3) as u8;
        }
        // Block 5 of rank 0, bank 0, row 0 under RowBankRankBlock mapping is
        // plain address 5*64.
        m.data_mut().write_burst(PhysAddr(5 * 64), &want);
        let a = m
            .serve_block(coord(0, 0, 0, 5), false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        assert_eq!(a.data.unwrap(), want);
    }

    #[test]
    fn ownership_blocks_host_data_commands() {
        let mut m = module();
        // Grant rank 0 to the NDP device via MRS (rank must be quiesced —
        // it is, freshly powered on).
        let at = m
            .earliest_issue(
                DramCommand::ModeRegisterSet {
                    rank: 0,
                    mr: 3,
                    value: MR3_MPR_ENABLE,
                },
                Requester::Host,
                Tick::ZERO,
            )
            .unwrap();
        m.issue(
            DramCommand::ModeRegisterSet {
                rank: 0,
                mr: 3,
                value: MR3_MPR_ENABLE,
            },
            Requester::Host,
            at,
            None,
        )
        .unwrap();
        assert!(m.rank_owned_by_ndp(0));

        let t = Tick::from_ns(100);
        // Host reads on rank 0 rejected; NDP reads accepted.
        let host = m.serve_block(coord(0, 0, 0, 0), false, Requester::Host, t, None);
        assert_eq!(host.unwrap_err(), IssueError::RankOwnedByNdp);
        assert_eq!(m.stats().ownership_rejections.get(), 1);
        let ndp = m.serve_block(coord(0, 0, 0, 0), false, Requester::Ndp, t, None);
        assert!(ndp.is_ok());
        // Rank 1 is unaffected: host proceeds, NDP is rejected.
        assert!(m
            .serve_block(coord(1, 0, 0, 0), false, Requester::Host, t, None)
            .is_ok());
        assert_eq!(
            m.serve_block(coord(1, 0, 0, 0), false, Requester::Ndp, t, None)
                .unwrap_err(),
            IssueError::NdpWithoutOwnership
        );
    }

    #[test]
    fn ndp_needs_ownership_for_data_commands() {
        let mut m = module();
        let err = m
            .serve_block(coord(0, 0, 0, 0), false, Requester::Ndp, Tick::ZERO, None)
            .unwrap_err();
        assert_eq!(err, IssueError::NdpWithoutOwnership);
    }

    #[test]
    fn mrs_requires_quiesced_rank() {
        let mut m = module();
        m.serve_block(coord(0, 0, 0, 0), false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        // Row open in bank 0 → MRS rejected.
        let e = m.earliest_issue(
            DramCommand::ModeRegisterSet {
                rank: 0,
                mr: 3,
                value: MR3_MPR_ENABLE,
            },
            Requester::Host,
            Tick::from_us(1),
        );
        assert_eq!(e.unwrap_err(), IssueError::RanksNotQuiesced);
    }

    #[test]
    fn too_early_issue_reports_earliest() {
        let mut m = module();
        let act = DramCommand::Activate {
            rank: 0,
            bank: 0,
            row: 0,
        };
        m.issue(act, Requester::Host, Tick::ZERO, None).unwrap();
        // Read before tRCD.
        let rd = DramCommand::Read {
            rank: 0,
            bank: 0,
            block: 0,
        };
        let err = m
            .issue(rd, Requester::Host, Tick::from_ns(5), None)
            .unwrap_err();
        assert_eq!(err, IssueError::TooEarly(Tick::from_ns(13)));
    }

    #[test]
    fn refresh_maintenance_fires_on_schedule() {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper(),
            AddressMapping::RowBankRankBlock,
        );
        assert!(!m.refresh_due(0, Tick::ZERO));
        let deadline = m.refresh_deadline(0);
        assert_eq!(deadline, Tick::from_ns(7_800));
        // Open a row, then run maintenance past the deadline: the row is
        // closed, the refresh applied, and the deadline advances.
        m.serve_block(coord(0, 0, 0, 0), false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        let after = m
            .maintain_refresh(0, Tick::from_us(8), Requester::Host)
            .unwrap();
        assert!(after >= Tick::from_us(8) + m.timing().t_rfc);
        assert_eq!(m.stats().refreshes.get(), 1);
        assert!(m.refresh_deadline(0) > deadline);
        // Subsequent access pays the refresh shadow.
        let a = m
            .serve_block(
                coord(0, 0, 0, 1),
                false,
                Requester::Host,
                Tick::from_us(8),
                None,
            )
            .unwrap();
        assert!(a.data_ready >= after);
    }

    #[test]
    fn refresh_storm_preempts_due_refresh_as_recoverable_error() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper(),
            AddressMapping::RowBankRankBlock,
        );
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
            storm_p: 1.0,
            storm_refreshes: 4,
            ..FaultPlan::none(7)
        })));
        let (tracer, ring) = jafar_common::obs::SharedTracer::ring(64);
        m.set_tracer(tracer);
        // Far past the first deadline: refresh is due, and the injected
        // storm preempts it. The error is recoverable — the returned tick
        // says when to retry, and the retry succeeds because the storm was
        // consumed (and its refreshes advanced the schedule).
        let now = Tick::from_us(40);
        let err = m
            .serve_block(coord(0, 0, 0, 0), false, Requester::Host, now, None)
            .unwrap_err();
        let until = match err {
            IssueError::TooEarly(t) => t,
            other => panic!("expected TooEarly, got {other:?}"),
        };
        assert!(until >= now + m.timing().t_rfc * 4);
        assert_eq!(m.stats().refreshes.get(), 4);
        // The retry rolls a fresh storm (p = 1.0), but refresh is no longer
        // due, so it takes the non-colliding serve_block storm path and the
        // access completes.
        let a = m
            .serve_block(coord(0, 0, 0, 0), false, Requester::Host, until, None)
            .unwrap();
        assert!(a.data_ready > until);
        let ring = ring.borrow();
        let kinds: Vec<&str> = ring.events().map(|e| e.kind.name()).collect();
        assert!(kinds.contains(&"fault"), "kinds={kinds:?}");
        assert!(kinds.contains(&"error"), "kinds={kinds:?}");
        assert!(kinds.contains(&"row-access"), "kinds={kinds:?}");
    }

    #[test]
    fn tracer_records_commands_without_changing_timing() {
        let mut traced = module();
        let (tracer, ring) = jafar_common::obs::SharedTracer::ring(1024);
        traced.set_tracer(tracer);
        let mut plain = module();
        for block in 0..4 {
            let a = traced
                .serve_block(
                    coord(0, 0, 0, block),
                    false,
                    Requester::Host,
                    Tick::ZERO,
                    None,
                )
                .unwrap();
            let b = plain
                .serve_block(
                    coord(0, 0, 0, block),
                    false,
                    Requester::Host,
                    Tick::ZERO,
                    None,
                )
                .unwrap();
            assert_eq!(a.data_ready, b.data_ready);
            assert_eq!(a.outcome, b.outcome);
        }
        let ring = ring.borrow();
        assert!(!ring.is_empty());
        // ACT + 4 RDs on the command stream, plus 4 row-access events.
        let cmds = ring
            .events()
            .filter(|e| e.kind.name() == "dram-cmd")
            .count();
        assert_eq!(cmds, 5);
    }

    #[test]
    fn refresh_happens_inside_serve_block() {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper(),
            AddressMapping::RowBankRankBlock,
        );
        // Jump far past several deadlines; serve_block must catch up.
        m.serve_block(
            coord(0, 0, 0, 0),
            false,
            Requester::Host,
            Tick::from_us(40),
            None,
        )
        .unwrap();
        assert!(m.stats().refreshes.get() >= 1);
    }

    #[test]
    fn tfaw_limits_activate_bursts() {
        let mut m = module();
        let t = *m.timing();
        // Issue 4 activates to different banks as fast as tRRD allows.
        let mut at = Tick::ZERO;
        let mut times = Vec::new();
        for bank in 0..4 {
            let cmd = DramCommand::Activate {
                rank: 0,
                bank,
                row: 0,
            };
            at = m.earliest_issue(cmd, Requester::Host, at).unwrap();
            m.issue(cmd, Requester::Host, at, None).unwrap();
            times.push(at);
        }
        // All four went at tRRD spacing (tiny geometry has 4 banks/rank —
        // reuse rank 1 bank 0 for the fifth activate? No: tFAW is per rank).
        assert_eq!(times[3] - times[0], t.t_rrd * 3);
        // Fifth activate to the same rank must respect tFAW from the first.
        // (All 4 banks are active; precharge bank 0 first.)
        let pre_at = m
            .earliest_issue(
                DramCommand::Precharge { rank: 0, bank: 0 },
                Requester::Host,
                at,
            )
            .unwrap();
        m.issue(
            DramCommand::Precharge { rank: 0, bank: 0 },
            Requester::Host,
            pre_at,
            None,
        )
        .unwrap();
        let fifth = m
            .earliest_issue(
                DramCommand::Activate {
                    rank: 0,
                    bank: 0,
                    row: 1,
                },
                Requester::Host,
                pre_at,
            )
            .unwrap();
        assert!(
            fifth >= times[0] + t.t_faw,
            "fifth={fifth} first={} tFAW={}",
            times[0],
            t.t_faw
        );
    }

    #[test]
    fn serve_addr_matches_serve_block() {
        let mut m = module();
        m.data_mut().write_u64(PhysAddr(64), 0xABCD);
        let a = m
            .serve_addr(PhysAddr(64 + 8), false, Requester::Host, Tick::ZERO, None)
            .unwrap();
        let data = a.data.unwrap();
        assert_eq!(u64::from_le_bytes(data[0..8].try_into().unwrap()), 0xABCD);
    }
}
