//! Mode registers and the MPR rank-ownership mechanism.
//!
//! Paper §2.2 ("Coordinating DRAM Access"): DDR3 mode register 3 activates
//! the multipurpose register (MPR); "when the MPR is enabled, the memory
//! controller is only permitted to send read/write commands to the MPR, not
//! to the DRAM chips. This effectively blocks the memory controller from
//! issuing any ordinary reads and writes." JAFAR repurposes this to take
//! exclusive ownership of a rank: the query execution manager sets MR3 to
//! enable the MPR, JAFAR streams the rank undisturbed, and clears it when
//! done.

/// Number of DDR3 mode registers.
pub const NUM_MODE_REGS: usize = 4;

/// The MR3 bit that enables the multipurpose register (A2 in DDR3).
pub const MR3_MPR_ENABLE: u16 = 1 << 2;

/// Per-rank mode-register file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModeRegs {
    regs: [u16; NUM_MODE_REGS],
}

impl ModeRegs {
    /// Power-on state: all registers zero, MPR disabled.
    pub fn new() -> Self {
        ModeRegs::default()
    }

    /// Reads mode register `mr`.
    ///
    /// # Panics
    /// Panics if `mr >= 4`.
    pub fn get(&self, mr: u8) -> u16 {
        self.regs[mr as usize]
    }

    /// Writes mode register `mr` (the MRS command payload).
    ///
    /// # Panics
    /// Panics if `mr >= 4`.
    pub fn set(&mut self, mr: u8, value: u16) {
        self.regs[mr as usize] = value;
    }

    /// True when the multipurpose register is enabled — i.e. ordinary host
    /// reads/writes to this rank are blocked and the rank is considered
    /// owned by the on-DIMM accelerator.
    pub fn mpr_enabled(&self) -> bool {
        self.regs[3] & MR3_MPR_ENABLE != 0
    }

    /// Convenience: the MR3 value that grants NDP ownership, preserving the
    /// other MR3 fields.
    pub fn mr3_with_ownership(&self, owned: bool) -> u16 {
        if owned {
            self.regs[3] | MR3_MPR_ENABLE
        } else {
            self.regs[3] & !MR3_MPR_ENABLE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_state_is_unowned() {
        let m = ModeRegs::new();
        assert!(!m.mpr_enabled());
        for mr in 0..4 {
            assert_eq!(m.get(mr), 0);
        }
    }

    #[test]
    fn mpr_bit_controls_ownership() {
        let mut m = ModeRegs::new();
        m.set(3, MR3_MPR_ENABLE);
        assert!(m.mpr_enabled());
        m.set(3, 0);
        assert!(!m.mpr_enabled());
    }

    #[test]
    fn ownership_helper_preserves_other_fields() {
        let mut m = ModeRegs::new();
        m.set(3, 0b1000_0001); // unrelated MR3 fields set
        let owned = m.mr3_with_ownership(true);
        assert_eq!(owned, 0b1000_0101);
        m.set(3, owned);
        assert!(m.mpr_enabled());
        let released = m.mr3_with_ownership(false);
        assert_eq!(released, 0b1000_0001);
    }

    #[test]
    fn other_registers_independent() {
        let mut m = ModeRegs::new();
        m.set(0, 0x1234);
        m.set(1, 0x0044);
        assert!(!m.mpr_enabled());
        assert_eq!(m.get(0), 0x1234);
        assert_eq!(m.get(1), 0x0044);
    }

    #[test]
    #[should_panic]
    fn invalid_register_index_panics() {
        ModeRegs::new().get(4);
    }
}
