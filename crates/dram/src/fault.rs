//! Deterministic fault injection for the DRAM module.
//!
//! Production NDP systems treat the in-DIMM accelerator as an untrusted
//! co-processor: data can be garbled on the way out of the arrays, a
//! completion can stall or vanish, a mode-register write can glitch, and
//! refresh can preempt the device at the worst moment. This module gives
//! the simulator a *seeded, reproducible* model of those failure modes so
//! the host driver's recovery machinery (`jafar-core::driver`) can be
//! exercised exhaustively:
//!
//! - **Read bit flips** with a SECDED (single-error-correct,
//!   double-error-detect) ECC model: single-bit flips are corrected in
//!   place and counted; double-bit flips are detected and surfaced as
//!   [`IssueError::Uncorrectable`]. With ECC disabled, flips silently
//!   corrupt the *returned* burst (the functional backing store is never
//!   touched, so a later retry or CPU fallback still sees good data —
//!   exactly like a transient disturbance on the output path).
//! - **Completion stalls and drops**: the burst's `data_ready` is pushed
//!   far into the future while bank/bus reservations stay normal — the
//!   transfer slot was consumed, but the requester never observes the
//!   completion in time. Drops use a delay long past any sane watchdog.
//! - **Transient MRS glitches**: a `ModeRegisterSet` is ignored by the
//!   rank ([`IssueError::MrsGlitch`]) — the ownership handoff must be
//!   retried.
//! - **Refresh storms**: a transaction is preempted by `n` back-to-back
//!   refreshes, blocking the rank for `n * tRFC`.
//! - **Persistent rank outages** ([`RankOutage`]): a rank goes *dark* at
//!   a scheduled tick and optionally repairs after a fixed duration.
//!   While dark, every read completion on that rank is delayed past any
//!   watchdog (a hard drop) and every mode-register write is ignored, so
//!   neither data nor ownership handshakes get through — the failure
//!   domain a serving tier must quarantine and route around, not retry
//!   through. Outages are purely schedule-driven: they consume **no**
//!   RNG and do not advance the burst counter, so adding or removing an
//!   outage never perturbs the transient-fault sequence (RNG isolation,
//!   same argument as `rank_scope`).
//!
//! All randomness comes from one [`SplitMix64`] stream consumed in
//! deterministic call order, so a `(FaultPlan, workload)` pair always
//! produces the same fault sequence.
//!
//! [`IssueError::Uncorrectable`]: crate::module::IssueError::Uncorrectable
//! [`IssueError::MrsGlitch`]: crate::module::IssueError::MrsGlitch

use jafar_common::rng::SplitMix64;
use jafar_common::stats::{Counter, Scoreboard};
use jafar_common::time::Tick;

/// A scheduled persistent outage of one rank: the rank is dark — reads
/// never complete inside a watchdog window, mode-register writes are
/// ignored — for every access in `[from, until)`. `until == Tick::MAX`
/// models a rank that never repairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankOutage {
    /// The rank that goes dark.
    pub rank: u32,
    /// First tick of the outage (inclusive).
    pub from: Tick,
    /// End of the outage (exclusive); `Tick::MAX` = permanent.
    pub until: Tick,
}

impl RankOutage {
    /// True when this outage blacks out `rank` at instant `at`.
    pub fn covers(&self, rank: u32, at: Tick) -> bool {
        self.rank == rank && at >= self.from && at < self.until
    }
}

/// How many concurrent outages one plan can schedule (keeps the plan
/// `Copy`; chaos schedules needing more can compose multiple runs).
pub const MAX_OUTAGES: usize = 4;

/// A seeded description of which faults to inject and how often.
///
/// Probabilities are per-event (per read burst, per MRS, per transaction).
/// The plan is `Copy` so tests can build variations cheaply.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Per read burst: probability that bits flip in the returned data.
    pub read_flip_p: f64,
    /// Given a flip event, probability that *two* bits flip (beyond SECDED
    /// correction) instead of one.
    pub double_flip_p: f64,
    /// Per read burst: probability the completion stalls by [`Self::stall`].
    pub stall_p: f64,
    /// How long a stalled completion is delayed.
    pub stall: Tick,
    /// Per read burst: probability the completion is dropped entirely
    /// (modelled as a [`Self::drop_delay`] stall — far past any watchdog).
    pub drop_p: f64,
    /// The "never arrives" delay for dropped completions.
    pub drop_delay: Tick,
    /// Per ModeRegisterSet: probability the rank ignores the command.
    pub mrs_glitch_p: f64,
    /// Per transaction: probability of a refresh storm preempting it.
    pub storm_p: f64,
    /// How many back-to-back refreshes a storm performs.
    pub storm_refreshes: u32,
    /// Deterministic override: while the global read-burst index is inside
    /// this half-open range, every read stalls (and `stall_p` is ignored).
    /// Lets tests schedule a stuck completion at an exact point in a run.
    pub stall_burst_range: Option<(u64, u64)>,
    /// Restrict injection to one rank. `None` means faults can hit any
    /// rank; `Some(r)` lets every other rank's traffic pass untouched —
    /// without consuming the RNG stream or advancing the burst counter, so
    /// the scoped rank's fault sequence is independent of how much
    /// sibling-rank traffic interleaves with it. Models a single failing
    /// DIMM rank under rank-parallel execution.
    pub rank_scope: Option<u32>,
    /// Scheduled persistent outages (up to [`MAX_OUTAGES`]). Checked
    /// before everything else and independent of `rank_scope` and the RNG
    /// stream: an outage fires deterministically by (rank, tick) alone.
    pub outages: [Option<RankOutage>; MAX_OUTAGES],
    /// SECDED ECC on the data path. When false, flips are silent.
    pub ecc: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (the baseline control).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            read_flip_p: 0.0,
            double_flip_p: 0.0,
            stall_p: 0.0,
            stall: Tick::from_us(100),
            drop_p: 0.0,
            drop_delay: Tick::from_ms(10),
            mrs_glitch_p: 0.0,
            storm_p: 0.0,
            storm_refreshes: 4,
            stall_burst_range: None,
            rank_scope: None,
            outages: [None; MAX_OUTAGES],
            ecc: true,
        }
    }

    /// Returns the plan with one more outage scheduled (first empty slot).
    ///
    /// # Panics
    /// Panics if all [`MAX_OUTAGES`] slots are taken.
    pub fn with_outage(mut self, rank: u32, from: Tick, until: Tick) -> Self {
        let slot = self
            .outages
            .iter_mut()
            .find(|s| s.is_none())
            .expect("all outage slots taken");
        *slot = Some(RankOutage { rank, from, until });
        self
    }

    /// A mild mix of every fault class: rare flips, occasional stalls and
    /// MRS glitches. Queries complete with a handful of retries.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            read_flip_p: 0.002,
            double_flip_p: 0.1,
            stall_p: 0.0005,
            mrs_glitch_p: 0.05,
            storm_p: 0.001,
            ..FaultPlan::none(seed)
        }
    }

    /// An aggressive plan: frequent flips, stalls, drops, glitches and
    /// storms. Exercises watchdog, backoff, and CPU fallback together.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            read_flip_p: 0.01,
            double_flip_p: 0.25,
            stall_p: 0.005,
            drop_p: 0.001,
            mrs_glitch_p: 0.2,
            storm_p: 0.01,
            storm_refreshes: 8,
            ..FaultPlan::none(seed)
        }
    }

    /// True if every fault probability is zero and no deterministic stall
    /// window or outage is scheduled — the injector can never fire.
    pub fn is_empty(&self) -> bool {
        self.read_flip_p == 0.0
            && self.stall_p == 0.0
            && self.drop_p == 0.0
            && self.mrs_glitch_p == 0.0
            && self.storm_p == 0.0
            && self.stall_burst_range.is_none()
            && self.outages.iter().all(Option::is_none)
    }
}

/// Counters of what the injector actually did.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Read bursts whose data was disturbed (single- or double-bit).
    pub flips_injected: Counter,
    /// Single-bit flips corrected by the SECDED model.
    pub ecc_corrected: Counter,
    /// Double-bit flips detected (surfaced as `Uncorrectable`).
    pub ecc_uncorrectable: Counter,
    /// Silent flips delivered with ECC disabled.
    pub silent_corruptions: Counter,
    /// Completions delayed by a stall.
    pub stalls: Counter,
    /// Completions dropped (never observable inside a watchdog window).
    pub drops: Counter,
    /// ModeRegisterSet commands transiently ignored.
    pub mrs_glitches: Counter,
    /// Refresh storms triggered.
    pub refresh_storms: Counter,
    /// Read bursts blacked out by a scheduled rank outage.
    pub outage_blackouts: Counter,
    /// ModeRegisterSet commands rejected by a scheduled rank outage.
    pub outage_mrs_rejects: Counter,
}

impl FaultStats {
    /// Sum of every fault event — zero iff the injector never fired.
    pub fn total(&self) -> u64 {
        self.flips_injected.get()
            + self.stalls.get()
            + self.drops.get()
            + self.mrs_glitches.get()
            + self.refresh_storms.get()
            + self.outage_blackouts.get()
            + self.outage_mrs_rejects.get()
    }

    /// The counters as a named scoreboard for run reports.
    pub fn scoreboard(&self) -> Scoreboard {
        let mut s = Scoreboard::new();
        s.add("flips_injected", self.flips_injected.get());
        s.add("ecc_corrected", self.ecc_corrected.get());
        s.add("ecc_uncorrectable", self.ecc_uncorrectable.get());
        s.add("silent_corruptions", self.silent_corruptions.get());
        s.add("stalls", self.stalls.get());
        s.add("drops", self.drops.get());
        s.add("mrs_glitches", self.mrs_glitches.get());
        s.add("refresh_storms", self.refresh_storms.get());
        s.add("outage_blackouts", self.outage_blackouts.get());
        s.add("outage_mrs_rejects", self.outage_mrs_rejects.get());
        s
    }
}

/// What a read-path fault did to one burst.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadDisturbance {
    /// Extra delay before the requester observes the completion. Applied to
    /// the reported `data_ready` only — bank and bus reservations advance
    /// normally, so a retry is not poisoned by the hung transfer.
    pub extra_delay: Tick,
    /// The SECDED model detected more errors than it can correct; the
    /// module must fail the read with `IssueError::Uncorrectable`.
    pub uncorrectable: bool,
}

/// The stateful injector: one RNG stream + the plan + event counters.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    stats: FaultStats,
    bursts_seen: u64,
}

impl FaultInjector {
    /// Builds an injector from a plan (the RNG is seeded from the plan).
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            rng: SplitMix64::new(plan.seed),
            stats: FaultStats::default(),
            bursts_seen: 0,
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// True when the plan scopes faults to one rank and `rank` is not it.
    fn scoped_out(&self, rank: u32) -> bool {
        self.plan.rank_scope.is_some_and(|r| r != rank)
    }

    /// True when a scheduled outage blacks out `rank` at instant `at`.
    /// Pure schedule lookup: consumes no RNG, advances no counter.
    pub fn rank_dark(&self, rank: u32, at: Tick) -> bool {
        self.plan
            .outages
            .iter()
            .flatten()
            .any(|o| o.covers(rank, at))
    }

    /// Applies read-path faults to one burst of `rank` issued at `at`.
    /// `data` is the copy about to be returned to the requester; the
    /// functional store is not touched. Bursts outside the plan's rank
    /// scope pass through clean. A burst inside a scheduled outage is
    /// dropped (delayed by [`FaultPlan::drop_delay`]) without consuming
    /// the RNG stream or advancing the burst counter.
    pub fn on_read_burst(&mut self, data: &mut [u8; 64], rank: u32, at: Tick) -> ReadDisturbance {
        if self.rank_dark(rank, at) {
            self.stats.outage_blackouts.inc();
            return ReadDisturbance {
                extra_delay: self.plan.drop_delay,
                uncorrectable: false,
            };
        }
        if self.scoped_out(rank) {
            return ReadDisturbance::default();
        }
        let burst_index = self.bursts_seen;
        self.bursts_seen += 1;
        let mut disturbance = ReadDisturbance::default();

        // Data-path flips, filtered through the SECDED model. The code is
        // behavioral: we know how many bits flipped, so correction capacity
        // (1 correctable, 2 detectable) decides the outcome directly.
        if self.plan.read_flip_p > 0.0 && self.rng.next_bool(self.plan.read_flip_p) {
            self.stats.flips_injected.inc();
            let double = self.rng.next_bool(self.plan.double_flip_p);
            let first = self.rng.next_below(512);
            data[(first / 8) as usize] ^= 1 << (first % 8);
            if double {
                // Force a distinct second position so it is genuinely a
                // double-bit error within the burst.
                let second = (first + 1 + self.rng.next_below(511)) % 512;
                data[(second / 8) as usize] ^= 1 << (second % 8);
            }
            if self.plan.ecc {
                if double {
                    self.stats.ecc_uncorrectable.inc();
                    disturbance.uncorrectable = true;
                } else {
                    // SECDED corrects the single flip: undo it and count.
                    data[(first / 8) as usize] ^= 1 << (first % 8);
                    self.stats.ecc_corrected.inc();
                }
            } else {
                self.stats.silent_corruptions.inc();
            }
        }

        // Completion stall/drop. The deterministic window takes precedence
        // over the sampled probabilities so tests can pin a stuck completion
        // to an exact stretch of the run.
        let in_window = self
            .plan
            .stall_burst_range
            .is_some_and(|(lo, hi)| (lo..hi).contains(&burst_index));
        if in_window {
            self.stats.stalls.inc();
            disturbance.extra_delay = self.plan.stall;
        } else if self.plan.drop_p > 0.0 && self.rng.next_bool(self.plan.drop_p) {
            self.stats.drops.inc();
            disturbance.extra_delay = self.plan.drop_delay;
        } else if self.plan.stall_p > 0.0 && self.rng.next_bool(self.plan.stall_p) {
            self.stats.stalls.inc();
            disturbance.extra_delay = self.plan.stall;
        }

        disturbance
    }

    /// Samples a transient MRS glitch on `rank` at instant `at`. True
    /// means the rank ignored the command and the module must fail it with
    /// `IssueError::MrsGlitch`. Ranks outside the plan's scope never
    /// glitch; a rank inside a scheduled outage rejects every MRS without
    /// consuming the RNG stream.
    pub fn on_mode_register_set(&mut self, rank: u32, at: Tick) -> bool {
        if self.rank_dark(rank, at) {
            self.stats.outage_mrs_rejects.inc();
            return true;
        }
        if self.scoped_out(rank) {
            return false;
        }
        if self.plan.mrs_glitch_p > 0.0 && self.rng.next_bool(self.plan.mrs_glitch_p) {
            self.stats.mrs_glitches.inc();
            true
        } else {
            false
        }
    }

    /// Samples a refresh storm for one transaction on `rank`. `Some(n)`
    /// means the rank is preempted by `n` back-to-back refreshes before the
    /// transaction proceeds. Ranks outside the plan's scope are never hit.
    pub fn refresh_storm(&mut self, rank: u32) -> Option<u32> {
        if self.scoped_out(rank) {
            return None;
        }
        if self.plan.storm_p > 0.0 && self.rng.next_bool(self.plan.storm_p) {
            self.stats.refresh_storms.inc();
            Some(self.plan.storm_refreshes.max(1))
        } else {
            None
        }
    }

    /// Global read-burst counter (drives [`FaultPlan::stall_burst_range`]).
    pub fn bursts_seen(&self) -> u64 {
        self.bursts_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none(1));
        let mut data = [0xA5u8; 64];
        for _ in 0..10_000 {
            let d = inj.on_read_burst(&mut data, 0, Tick::ZERO);
            assert_eq!(d, ReadDisturbance::default());
            assert!(!inj.on_mode_register_set(0, Tick::ZERO));
            assert!(inj.refresh_storm(0).is_none());
        }
        assert_eq!(data, [0xA5u8; 64]);
        assert_eq!(inj.stats().total(), 0);
        assert!(FaultPlan::none(1).is_empty());
        assert!(!FaultPlan::light(1).is_empty());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(FaultPlan::chaos(seed));
            let mut outcomes = Vec::new();
            let mut data = [0u8; 64];
            for _ in 0..2_000 {
                data = [0u8; 64];
                outcomes.push(inj.on_read_burst(&mut data, 0, Tick::ZERO));
            }
            (outcomes, data, *inj.stats())
        };
        let (a, da, sa) = run(7);
        let (b, db, sb) = run(7);
        assert_eq!(a, b);
        assert_eq!(da, db);
        assert_eq!(sa.total(), sb.total());
        let (c, _, _) = run(8);
        assert_ne!(a, c, "different seeds must differ somewhere");
    }

    #[test]
    fn secded_corrects_singles_and_detects_doubles() {
        // Force flips on every burst; split singles vs doubles by outcome.
        let plan = FaultPlan {
            read_flip_p: 1.0,
            double_flip_p: 0.5,
            ..FaultPlan::none(3)
        };
        let mut inj = FaultInjector::new(plan);
        let golden = [0x5Au8; 64];
        let mut corrected = 0u64;
        let mut uncorrectable = 0u64;
        for _ in 0..500 {
            let mut data = golden;
            let d = inj.on_read_burst(&mut data, 0, Tick::ZERO);
            if d.uncorrectable {
                uncorrectable += 1;
                // Exactly two bits differ from the golden burst.
                let flipped: u32 = data
                    .iter()
                    .zip(golden.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 2);
            } else {
                corrected += 1;
                assert_eq!(data, golden, "corrected burst must be clean");
            }
        }
        assert_eq!(inj.stats().ecc_corrected.get(), corrected);
        assert_eq!(inj.stats().ecc_uncorrectable.get(), uncorrectable);
        assert!(corrected > 100 && uncorrectable > 100);
    }

    #[test]
    fn without_ecc_flips_are_silent() {
        let plan = FaultPlan {
            read_flip_p: 1.0,
            double_flip_p: 0.0,
            ecc: false,
            ..FaultPlan::none(9)
        };
        let mut inj = FaultInjector::new(plan);
        let mut data = [0u8; 64];
        let d = inj.on_read_burst(&mut data, 0, Tick::ZERO);
        assert!(!d.uncorrectable);
        let flipped: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "one silently flipped bit");
        assert_eq!(inj.stats().silent_corruptions.get(), 1);
    }

    #[test]
    fn stall_window_pins_stalls_to_burst_indices() {
        let plan = FaultPlan {
            stall_burst_range: Some((3, 5)),
            stall: Tick::from_us(7),
            ..FaultPlan::none(0)
        };
        let mut inj = FaultInjector::new(plan);
        let mut data = [0u8; 64];
        let delays: Vec<Tick> = (0..8)
            .map(|_| inj.on_read_burst(&mut data, 0, Tick::ZERO).extra_delay)
            .collect();
        let want: Vec<Tick> = (0..8)
            .map(|i| {
                if (3..5).contains(&i) {
                    Tick::from_us(7)
                } else {
                    Tick::ZERO
                }
            })
            .collect();
        assert_eq!(delays, want);
        assert_eq!(inj.stats().stalls.get(), 2);
    }

    #[test]
    fn rank_scope_confines_faults_and_rng_consumption() {
        let plan = FaultPlan {
            read_flip_p: 1.0,
            mrs_glitch_p: 1.0,
            storm_p: 1.0,
            rank_scope: Some(1),
            ..FaultPlan::none(5)
        };
        let mut inj = FaultInjector::new(plan);
        let golden = [0x77u8; 64];
        // Rank 0 traffic passes through untouched and consumes nothing.
        let mut data = golden;
        assert_eq!(
            inj.on_read_burst(&mut data, 0, Tick::ZERO),
            ReadDisturbance::default()
        );
        assert_eq!(data, golden);
        assert!(!inj.on_mode_register_set(0, Tick::ZERO));
        assert!(inj.refresh_storm(0).is_none());
        assert_eq!(inj.stats().total(), 0);
        assert_eq!(inj.bursts_seen(), 0, "scoped-out bursts are not counted");
        // Rank 1 is hit as usual.
        let mut data = golden;
        inj.on_read_burst(&mut data, 1, Tick::ZERO);
        assert!(inj.on_mode_register_set(1, Tick::ZERO));
        assert!(inj.refresh_storm(1).is_some());
        assert!(inj.stats().total() >= 3);
    }

    #[test]
    fn scoreboard_reflects_counters() {
        let mut inj = FaultInjector::new(FaultPlan {
            mrs_glitch_p: 1.0,
            ..FaultPlan::none(2)
        });
        assert!(inj.on_mode_register_set(0, Tick::ZERO));
        let board = inj.stats().scoreboard();
        assert_eq!(board.get("mrs_glitches"), 1);
        assert_eq!(board.get("stalls"), 0);
    }

    #[test]
    fn outage_blacks_out_the_rank_for_its_window_only() {
        let plan = FaultPlan::none(0).with_outage(1, Tick::from_us(10), Tick::from_us(20));
        assert!(!plan.is_empty(), "a scheduled outage is a fault");
        let mut inj = FaultInjector::new(plan);
        let golden = [0x3Cu8; 64];
        // Before onset: clean.
        let mut data = golden;
        let d = inj.on_read_burst(&mut data, 1, Tick::from_us(9));
        assert_eq!(d, ReadDisturbance::default());
        assert!(!inj.on_mode_register_set(1, Tick::from_us(9)));
        // Inside the window: reads drop, MRS is rejected, data untouched.
        let mut data = golden;
        let d = inj.on_read_burst(&mut data, 1, Tick::from_us(10));
        assert_eq!(d.extra_delay, plan.drop_delay);
        assert!(!d.uncorrectable);
        assert_eq!(data, golden, "outage never corrupts data");
        assert!(inj.on_mode_register_set(1, Tick::from_us(15)));
        assert!(inj.rank_dark(1, Tick::from_us(15)));
        // A sibling rank inside the window is untouched.
        let mut data = golden;
        let d = inj.on_read_burst(&mut data, 0, Tick::from_us(15));
        assert_eq!(d, ReadDisturbance::default());
        // After repair (until is exclusive): clean again.
        let mut data = golden;
        let d = inj.on_read_burst(&mut data, 1, Tick::from_us(20));
        assert_eq!(d, ReadDisturbance::default());
        assert!(!inj.rank_dark(1, Tick::from_us(20)));
        assert_eq!(inj.stats().outage_blackouts.get(), 1);
        assert_eq!(inj.stats().outage_mrs_rejects.get(), 1);
        assert_eq!(inj.stats().scoreboard().get("outage_blackouts"), 1);
        assert!(inj.stats().total() >= 2);
    }

    #[test]
    fn outage_is_rng_isolated_from_transient_faults() {
        // The same transient plan with and without an outage on another
        // rank must produce an identical fault sequence on the healthy
        // rank: outages consume no RNG and advance no counter.
        let run = |with_outage: bool| {
            let mut plan = FaultPlan::chaos(11);
            if with_outage {
                plan = plan.with_outage(1, Tick::ZERO, Tick::MAX);
            }
            let mut inj = FaultInjector::new(plan);
            let mut outcomes = Vec::new();
            for i in 0..1_000u64 {
                let mut data = [0u8; 64];
                // Interleave dark-rank traffic between healthy bursts.
                if with_outage && i % 3 == 0 {
                    inj.on_read_burst(&mut data, 1, Tick::from_ns(i));
                    inj.on_mode_register_set(1, Tick::from_ns(i));
                }
                let mut data = [0u8; 64];
                outcomes.push(inj.on_read_burst(&mut data, 0, Tick::from_ns(i)));
            }
            (outcomes, inj.bursts_seen())
        };
        let (clean, clean_bursts) = run(false);
        let (dark, dark_bursts) = run(true);
        assert_eq!(clean, dark, "healthy-rank fault sequence perturbed");
        assert_eq!(clean_bursts, dark_bursts, "dark bursts must not count");
    }

    #[test]
    fn permanent_outage_never_repairs() {
        let mut inj = FaultInjector::new(FaultPlan::none(0).with_outage(0, Tick::ZERO, Tick::MAX));
        for us in [0u64, 1, 1_000, 1_000_000_000] {
            assert!(inj.rank_dark(0, Tick::from_us(us)));
            let mut data = [0u8; 64];
            assert!(
                inj.on_read_burst(&mut data, 0, Tick::from_us(us))
                    .extra_delay
                    > Tick::ZERO
            );
        }
    }
}
