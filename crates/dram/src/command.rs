//! The DRAM command set.
//!
//! These are the commands a memory controller (or JAFAR, acting as its own
//! command agent on an owned rank) drives over the command/address bus. The
//! subset here is what a DDR3 device needs for normal operation: ACTIVATE
//! (the RAS of §2.1), READ/WRITE (the CAS), PRECHARGE, REFRESH, and
//! MODE REGISTER SET (used by §2.2's ownership-transfer proposal).

use crate::address::Coord;

/// Who is driving the command — the host memory controller or the on-DIMM
/// JAFAR device. The mode-register MPR mechanism (see [`crate::mode`])
/// blocks host data commands while a rank is owned by the accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Requester {
    /// The host memory controller.
    Host,
    /// The near-data accelerator on the DIMM.
    Ndp,
}

/// One DRAM command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DramCommand {
    /// Open `row` in (`rank`, `bank`): load the row into the bank's row
    /// buffer (RAS).
    Activate { rank: u32, bank: u32, row: u32 },
    /// Read one 64-byte burst from the open row of (`rank`, `bank`) at
    /// block-column `block` (CAS).
    Read { rank: u32, bank: u32, block: u32 },
    /// Write one 64-byte burst to the open row of (`rank`, `bank`) at
    /// block-column `block`.
    Write { rank: u32, bank: u32, block: u32 },
    /// Close the open row of (`rank`, `bank`).
    Precharge { rank: u32, bank: u32 },
    /// Close all open rows of `rank`.
    PrechargeAll { rank: u32 },
    /// Refresh `rank` (all banks must be precharged; rank busy for tRFC).
    Refresh { rank: u32 },
    /// Write `value` into mode register `mr` (0–3) of `rank`.
    ModeRegisterSet { rank: u32, mr: u8, value: u16 },
}

impl DramCommand {
    /// The rank this command addresses.
    pub fn rank(&self) -> u32 {
        match *self {
            DramCommand::Activate { rank, .. }
            | DramCommand::Read { rank, .. }
            | DramCommand::Write { rank, .. }
            | DramCommand::Precharge { rank, .. }
            | DramCommand::PrechargeAll { rank }
            | DramCommand::Refresh { rank }
            | DramCommand::ModeRegisterSet { rank, .. } => rank,
        }
    }

    /// The bank this command addresses, if bank-scoped.
    pub fn bank(&self) -> Option<u32> {
        match *self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. }
            | DramCommand::Precharge { bank, .. } => Some(bank),
            _ => None,
        }
    }

    /// True for READ/WRITE (the commands that move data and that the MPR
    /// mechanism blocks for non-owners).
    pub fn is_data_command(&self) -> bool {
        matches!(self, DramCommand::Read { .. } | DramCommand::Write { .. })
    }

    /// Convenience constructor: ACTIVATE targeting a coordinate's row.
    pub fn activate(c: Coord) -> Self {
        DramCommand::Activate {
            rank: c.rank,
            bank: c.bank,
            row: c.row,
        }
    }

    /// Convenience constructor: READ targeting a coordinate's block.
    pub fn read(c: Coord) -> Self {
        DramCommand::Read {
            rank: c.rank,
            bank: c.bank,
            block: c.block,
        }
    }

    /// Convenience constructor: WRITE targeting a coordinate's block.
    pub fn write(c: Coord) -> Self {
        DramCommand::Write {
            rank: c.rank,
            bank: c.bank,
            block: c.block,
        }
    }

    /// Convenience constructor: PRECHARGE for a coordinate's bank.
    pub fn precharge(c: Coord) -> Self {
        DramCommand::Precharge {
            rank: c.rank,
            bank: c.bank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord() -> Coord {
        Coord {
            rank: 1,
            bank: 3,
            row: 42,
            block: 7,
        }
    }

    #[test]
    fn accessors() {
        let c = coord();
        assert_eq!(DramCommand::activate(c).rank(), 1);
        assert_eq!(DramCommand::activate(c).bank(), Some(3));
        assert_eq!(DramCommand::Refresh { rank: 0 }.bank(), None);
        assert_eq!(
            DramCommand::ModeRegisterSet {
                rank: 1,
                mr: 3,
                value: 4
            }
            .rank(),
            1
        );
    }

    #[test]
    fn data_command_classification() {
        let c = coord();
        assert!(DramCommand::read(c).is_data_command());
        assert!(DramCommand::write(c).is_data_command());
        assert!(!DramCommand::activate(c).is_data_command());
        assert!(!DramCommand::precharge(c).is_data_command());
        assert!(!DramCommand::Refresh { rank: 0 }.is_data_command());
    }

    #[test]
    fn constructors_carry_coordinates() {
        let c = coord();
        assert_eq!(
            DramCommand::read(c),
            DramCommand::Read {
                rank: 1,
                bank: 3,
                block: 7
            }
        );
        assert_eq!(
            DramCommand::activate(c),
            DramCommand::Activate {
                rank: 1,
                bank: 3,
                row: 42
            }
        );
    }
}
