//! DDR3 timing parameters.
//!
//! Paper §2.1 names the four first-order parameters — CL, tRCD, tRP, tRAS —
//! and §2.2 pins the clock domains: data bus ≈ 1 GHz, JAFAR = 2× bus, DRAM
//! internal arrays = bus/4, CAS latency ≈ 13 ns (Micron \[34\]). The full DDR3
//! rulebook needs several more constraints for a *legal* command stream; we
//! carry the ones that shape streaming and mixed read/write traffic.

use jafar_common::time::{ClockDomain, Tick};

/// The timing rulebook for one DRAM module. All values are absolute time
/// spans; cycle-denominated JEDEC values are pre-multiplied by the bus clock
/// period so the module never needs to know the clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramTiming {
    /// Data-bus (command) clock.
    pub bus_clock: ClockDomain,
    /// CAS latency: READ command to first data beat.
    pub cl: Tick,
    /// CAS write latency: WRITE command to first data beat.
    pub cwl: Tick,
    /// Row-to-column delay: ACTIVATE to first READ/WRITE.
    pub t_rcd: Tick,
    /// Row precharge time: PRECHARGE to next ACTIVATE of the same bank.
    pub t_rp: Tick,
    /// Activate-to-precharge: minimum row-open time.
    pub t_ras: Tick,
    /// Activate-to-activate, same bank (usually tRAS + tRP).
    pub t_rc: Tick,
    /// Column-to-column delay: minimum spacing of CAS commands (burst length
    /// 8 ⇒ 4 bus cycles).
    pub t_ccd: Tick,
    /// Burst duration on the data bus (BL8 ⇒ 4 bus cycles, dual data rate).
    pub t_burst: Tick,
    /// Read-to-precharge.
    pub t_rtp: Tick,
    /// Write recovery: end of write data to precharge.
    pub t_wr: Tick,
    /// Write-to-read turnaround: end of write data to next READ, same rank.
    pub t_wtr: Tick,
    /// Activate-to-activate, different banks of one rank.
    pub t_rrd: Tick,
    /// Four-activate window per rank.
    pub t_faw: Tick,
    /// Average refresh interval (one REFRESH per tREFI per rank).
    pub t_refi: Tick,
    /// Refresh cycle time (rank unavailable during refresh).
    pub t_rfc: Tick,
    /// Mode-register-set update delay (rank quiesced after MRS).
    pub t_mod: Tick,
    /// Whether refresh is modelled at all (off simplifies microbenchmarks).
    pub refresh_enabled: bool,
}

impl DramTiming {
    /// The paper's configuration: DDR3 with a ~1 GHz data-bus clock and
    /// ≈13 ns CAS latency (§2.2, citing Micron \[34\]). JEDEC-style cycle
    /// counts at tCK = 1 ns.
    pub fn ddr3_paper() -> Self {
        let bus = ClockDomain::from_ghz(1);
        let ck = |n: u64| Tick::from_ps(n * bus.period().as_ps());
        DramTiming {
            bus_clock: bus,
            cl: ck(13),
            cwl: ck(9),
            t_rcd: ck(13),
            t_rp: ck(13),
            t_ras: ck(35),
            t_rc: ck(48),
            t_ccd: ck(4),
            t_burst: ck(4),
            t_rtp: ck(8),
            t_wr: ck(15),
            t_wtr: ck(8),
            t_rrd: ck(6),
            t_faw: ck(30),
            t_refi: Tick::from_ns(7_800),
            t_rfc: Tick::from_ns(160),
            t_mod: ck(12),
            refresh_enabled: true,
        }
    }

    /// DDR3-1600 (tCK = 1.25 ns), the common JEDEC bin: CL-tRCD-tRP 11-11-11.
    /// Used for sensitivity studies.
    pub fn ddr3_1600() -> Self {
        let bus = ClockDomain::from_mhz(800);
        let ck = |n: u64| Tick::from_ps(n * bus.period().as_ps());
        DramTiming {
            bus_clock: bus,
            cl: ck(11),
            cwl: ck(8),
            t_rcd: ck(11),
            t_rp: ck(11),
            t_ras: ck(28),
            t_rc: ck(39),
            t_ccd: ck(4),
            t_burst: ck(4),
            t_rtp: ck(6),
            t_wr: ck(12),
            t_wtr: ck(6),
            t_rrd: ck(5),
            t_faw: ck(24),
            t_refi: Tick::from_ns(7_800),
            t_rfc: Tick::from_ns(160),
            t_mod: ck(12),
            refresh_enabled: true,
        }
    }

    /// Returns a copy with refresh modelling disabled (for deterministic
    /// microbenchmarks and latency unit tests).
    pub fn without_refresh(mut self) -> Self {
        self.refresh_enabled = false;
        self
    }

    /// Sanity-checks internal consistency of the rulebook.
    ///
    /// # Panics
    /// Panics if a derived constraint is violated (e.g. tRC < tRAS + tRP).
    pub fn validate(&self) {
        assert!(
            self.t_rc >= self.t_ras + self.t_rp,
            "tRC must cover tRAS + tRP"
        );
        assert!(self.t_ccd >= self.t_burst, "tCCD must cover the burst");
        assert!(self.t_faw >= self.t_rrd, "tFAW must exceed tRRD");
        assert!(
            self.t_refi > self.t_rfc,
            "refresh interval must exceed refresh cycle time"
        );
    }

    /// Idealised closed-row read latency: ACT → RD (tRCD) → first data (CL).
    pub fn closed_row_read_latency(&self) -> Tick {
        self.t_rcd + self.cl
    }

    /// Idealised open-row (row-hit) read latency: RD → first data (CL).
    pub fn open_row_read_latency(&self) -> Tick {
        self.cl
    }

    /// Row-conflict read latency: PRE (tRP) → ACT (tRCD) → data (CL).
    pub fn row_conflict_read_latency(&self) -> Tick {
        self.t_rp + self.t_rcd + self.cl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section_2_2() {
        let t = DramTiming::ddr3_paper();
        t.validate();
        // "current DDR3 SDRAM devices typically have CAS latencies of around
        // 13ns" — §2.2.
        assert_eq!(t.cl, Tick::from_ns(13));
        // "the data bus clock frequency (which is around 1GHz on DDR3)".
        assert_eq!(t.bus_clock.freq_mhz(), 1000);
        // "Each DRAM access retrieves up to eight 64-bit words ... over four
        // data bus clock cycles".
        assert_eq!(t.t_burst, Tick::from_ns(4));
        assert_eq!(t.bus_clock.ticks_to_cycles(t.t_burst), 4);
    }

    #[test]
    fn latency_composition() {
        let t = DramTiming::ddr3_paper();
        assert_eq!(t.open_row_read_latency(), Tick::from_ns(13));
        assert_eq!(t.closed_row_read_latency(), Tick::from_ns(26));
        assert_eq!(t.row_conflict_read_latency(), Tick::from_ns(39));
    }

    #[test]
    fn ddr3_1600_preset_valid() {
        let t = DramTiming::ddr3_1600();
        t.validate();
        assert_eq!(t.bus_clock.period(), Tick::from_ps(1250));
        assert_eq!(t.cl, Tick::from_ps(11 * 1250)); // 13.75 ns
    }

    #[test]
    fn without_refresh() {
        let t = DramTiming::ddr3_paper().without_refresh();
        assert!(!t.refresh_enabled);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "tRC must cover")]
    fn inconsistent_trc_rejected() {
        let mut t = DramTiming::ddr3_paper();
        t.t_rc = Tick::from_ns(10);
        t.validate();
    }
}
