//! Functional backing store.
//!
//! The timing model alone would suffice for performance numbers, but JAFAR's
//! correctness story — the output bitset it writes back must equal what a
//! software select would have produced — requires reads to return *real
//! bytes*. `DramData` is a sparse page map over the module's physical address
//! space, so modelling a 2 GB module costs memory only for pages actually
//! touched.

use crate::address::PhysAddr;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable storage. Unwritten bytes read as zero, like
/// zero-initialised DRAM in a fresh simulation.
#[derive(Default)]
pub struct DramData {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    capacity: u64,
}

impl DramData {
    /// Creates storage covering `capacity` bytes of physical address space.
    pub fn new(capacity: u64) -> Self {
        DramData {
            pages: HashMap::new(),
            capacity,
        }
    }

    /// Addressable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of 4 KiB pages actually materialised.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, addr: PhysAddr, len: usize) {
        assert!(
            addr.0 + len as u64 <= self.capacity,
            "access [{addr}, +{len}) beyond capacity {:#x}",
            self.capacity
        );
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    /// Panics if the range exceeds capacity.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let mut pos = addr.0;
        let mut remaining = buf;
        while !remaining.is_empty() {
            let page = pos >> PAGE_SHIFT;
            let off = (pos & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = remaining.len().min(PAGE_SIZE - off);
            let (head, tail) = remaining.split_at_mut(chunk);
            match self.pages.get(&page) {
                Some(p) => head.copy_from_slice(&p[off..off + chunk]),
                None => head.fill(0),
            }
            remaining = tail;
            pos += chunk as u64;
        }
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    /// Panics if the range exceeds capacity.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) {
        self.check(addr, buf.len());
        let mut pos = addr.0;
        let mut remaining = buf;
        while !remaining.is_empty() {
            let page = pos >> PAGE_SHIFT;
            let off = (pos & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = remaining.len().min(PAGE_SIZE - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[off..off + chunk].copy_from_slice(&remaining[..chunk]);
            remaining = &remaining[chunk..];
            pos += chunk as u64;
        }
    }

    /// Reads one 64-byte burst.
    pub fn read_burst(&self, addr: PhysAddr) -> [u8; 64] {
        let mut buf = [0u8; 64];
        self.read(addr, &mut buf);
        buf
    }

    /// Writes one 64-byte burst.
    pub fn write_burst(&mut self, addr: PhysAddr, burst: &[u8; 64]) {
        self.write(addr, burst);
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `i64` at `addr`.
    pub fn read_i64(&self, addr: PhysAddr) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes a little-endian `i64` at `addr`.
    pub fn write_i64(&mut self, addr: PhysAddr, value: i64) {
        self.write_u64(addr, value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let d = DramData::new(1 << 20);
        let mut buf = [0xAAu8; 16];
        d.read(PhysAddr(0x8000), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(d.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = DramData::new(1 << 20);
        let payload: Vec<u8> = (0..200).map(|i| i as u8).collect();
        d.write(PhysAddr(100), &payload);
        let mut back = vec![0u8; 200];
        d.read(PhysAddr(100), &mut back);
        assert_eq!(back, payload);
    }

    #[test]
    fn cross_page_access() {
        let mut d = DramData::new(1 << 20);
        let payload = [0x5Au8; 100];
        // Straddles the 4 KiB page boundary at 0x1000.
        d.write(PhysAddr(0x1000 - 50), &payload);
        assert_eq!(d.resident_pages(), 2);
        let mut back = [0u8; 100];
        d.read(PhysAddr(0x1000 - 50), &mut back);
        assert_eq!(back, payload);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 1];
        d.read(PhysAddr(0x1000 - 51), &mut edge);
        assert_eq!(edge[0], 0);
    }

    #[test]
    fn burst_helpers() {
        let mut d = DramData::new(1 << 16);
        let mut burst = [0u8; 64];
        for (i, b) in burst.iter_mut().enumerate() {
            *b = i as u8;
        }
        d.write_burst(PhysAddr(64), &burst);
        assert_eq!(d.read_burst(PhysAddr(64)), burst);
    }

    #[test]
    fn word_helpers() {
        let mut d = DramData::new(1 << 16);
        d.write_u64(PhysAddr(8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(d.read_u64(PhysAddr(8)), 0xDEAD_BEEF_CAFE_F00D);
        d.write_i64(PhysAddr(16), -42);
        assert_eq!(d.read_i64(PhysAddr(16)), -42);
        // Little-endian layout.
        let mut b = [0u8; 1];
        d.read(PhysAddr(8), &mut b);
        assert_eq!(b[0], 0x0D);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_rejected() {
        let d = DramData::new(128);
        let mut buf = [0u8; 2];
        d.read(PhysAddr(127), &mut buf);
    }

    #[test]
    fn sparse_residency() {
        let mut d = DramData::new(1 << 30);
        d.write_u64(PhysAddr(0), 1);
        d.write_u64(PhysAddr(1 << 29), 2);
        assert_eq!(d.resident_pages(), 2);
    }
}
