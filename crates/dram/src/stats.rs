//! DRAM statistics: per-bank command counts and module-level traffic /
//! row-buffer locality metrics.

use jafar_common::stats::Counter;

/// Command counts for one bank.
#[derive(Clone, Copy, Debug, Default)]
pub struct BankStats {
    /// ACTIVATE commands applied.
    pub activates: Counter,
    /// READ CAS commands applied.
    pub reads: Counter,
    /// WRITE CAS commands applied.
    pub writes: Counter,
    /// PRECHARGE commands that closed an open row.
    pub precharges: Counter,
}

/// Module-level statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DramStats {
    /// Data-moving accesses (READ or WRITE CAS) that found their row already
    /// open — no ACTIVATE was needed since the previous access to the bank.
    pub row_hits: Counter,
    /// Accesses that required opening a row in an idle bank.
    pub row_misses: Counter,
    /// Accesses that required closing a different row first (precharge +
    /// activate): the expensive case §3.3 warns interruptions cause.
    pub row_conflicts: Counter,
    /// Total read bursts served.
    pub read_bursts: Counter,
    /// Total write bursts served.
    pub write_bursts: Counter,
    /// REFRESH commands applied.
    pub refreshes: Counter,
    /// Mode-register-set commands applied.
    pub mode_sets: Counter,
    /// Host data commands rejected because the rank was NDP-owned.
    pub ownership_rejections: Counter,
}

impl DramStats {
    /// Row-buffer hit rate over all data accesses, or `None` if no accesses.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let total = self.row_hits.get() + self.row_misses.get() + self.row_conflicts.get();
        (total > 0).then(|| self.row_hits.get() as f64 / total as f64)
    }

    /// Total bytes moved over the data bus.
    pub fn bytes_transferred(&self) -> u64 {
        (self.read_bursts.get() + self.write_bursts.get()) * crate::BURST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_empty_is_none() {
        assert_eq!(DramStats::default().row_hit_rate(), None);
    }

    #[test]
    fn hit_rate_math() {
        let mut s = DramStats::default();
        s.row_hits.add(3);
        s.row_misses.add(1);
        s.row_conflicts.add(0);
        assert_eq!(s.row_hit_rate(), Some(0.75));
    }

    #[test]
    fn bytes_transferred() {
        let mut s = DramStats::default();
        s.read_bursts.add(10);
        s.write_bursts.add(5);
        assert_eq!(s.bytes_transferred(), 15 * 64);
    }
}
