//! Per-bank row-buffer state machine and timing bookkeeping.
//!
//! Each bank is "independently addressable" (§2.1) and owns one row buffer.
//! The model is reservation-based: rather than simulating every DRAM-internal
//! clock edge, the bank records, per command class, the earliest tick at
//! which that command may next legally issue, and updates those reservations
//! as commands are applied. This is exactly the bookkeeping a real memory
//! controller performs to keep its command stream JEDEC-legal.

use crate::stats::BankStats;
use crate::timing::DramTiming;
use jafar_common::time::Tick;

/// Row-buffer state of one bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed; bitlines precharged (or precharging — readiness is
    /// captured by the activate reservation, not a separate state).
    Idle,
    /// `row` is open in the row buffer.
    Active {
        /// The open row.
        row: u32,
    },
}

/// One DRAM bank: row-buffer state plus earliest-legal-issue reservations.
#[derive(Clone, Debug)]
pub struct Bank {
    state: BankState,
    /// Earliest next ACTIVATE (covers tRP after precharge and tRC between
    /// activates; also doubles as refresh-ready time).
    act_allowed: Tick,
    /// Earliest next READ CAS.
    rd_allowed: Tick,
    /// Earliest next WRITE CAS.
    wr_allowed: Tick,
    /// Earliest next PRECHARGE.
    pre_allowed: Tick,
    stats: BankStats,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A fresh, idle bank ready at time zero.
    pub fn new() -> Self {
        Bank {
            state: BankState::Idle,
            act_allowed: Tick::ZERO,
            rd_allowed: Tick::ZERO,
            wr_allowed: Tick::ZERO,
            pre_allowed: Tick::ZERO,
            stats: BankStats::default(),
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Accumulated per-bank statistics.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// Earliest tick ≥ `now` at which ACTIVATE may issue, or `None` if a row
    /// is open (must precharge first).
    pub fn earliest_activate(&self, now: Tick) -> Option<Tick> {
        match self.state {
            BankState::Idle => Some(self.act_allowed.max(now)),
            BankState::Active { .. } => None,
        }
    }

    /// Earliest tick ≥ `now` at which a READ CAS may issue, or `None` if the
    /// bank is idle or a different row is open.
    pub fn earliest_read(&self, row: u32, now: Tick) -> Option<Tick> {
        match self.state {
            BankState::Active { row: open } if open == row => Some(self.rd_allowed.max(now)),
            _ => None,
        }
    }

    /// Earliest tick ≥ `now` at which a WRITE CAS may issue, or `None` if the
    /// bank is idle or a different row is open.
    pub fn earliest_write(&self, row: u32, now: Tick) -> Option<Tick> {
        match self.state {
            BankState::Active { row: open } if open == row => Some(self.wr_allowed.max(now)),
            _ => None,
        }
    }

    /// Earliest tick ≥ `now` at which PRECHARGE may issue. Precharging an
    /// idle bank is legal (a no-op NOP-like command).
    pub fn earliest_precharge(&self, now: Tick) -> Tick {
        self.pre_allowed.max(now)
    }

    /// The tick at which this bank could accept a REFRESH-like, activate-class
    /// command (all row state quiesced). Meaningful only when idle.
    pub fn refresh_ready(&self, now: Tick) -> Option<Tick> {
        self.earliest_activate(now)
    }

    /// Applies ACTIVATE at `now`.
    ///
    /// # Panics
    /// Panics if the bank is not idle or `now` violates the reservation —
    /// callers must consult [`Bank::earliest_activate`] first; the module
    /// layer converts this protocol into checked errors.
    pub fn activate(&mut self, row: u32, now: Tick, t: &DramTiming) {
        let earliest = self
            .earliest_activate(now)
            .expect("ACTIVATE on bank with open row");
        assert!(now >= earliest, "ACTIVATE at {now} before {earliest}");
        self.state = BankState::Active { row };
        self.rd_allowed = self.rd_allowed.max(now + t.t_rcd);
        self.wr_allowed = self.wr_allowed.max(now + t.t_rcd);
        self.pre_allowed = self.pre_allowed.max(now + t.t_ras);
        self.act_allowed = self.act_allowed.max(now + t.t_rc);
        self.stats.activates.inc();
    }

    /// Applies a READ CAS at `now`; returns the interval `[start, end)` the
    /// read burst occupies on the data bus.
    ///
    /// # Panics
    /// Panics on protocol violations (see [`Bank::activate`]).
    pub fn read(&mut self, now: Tick, t: &DramTiming) -> (Tick, Tick) {
        let row = self.open_row().expect("READ on idle bank");
        let earliest = self.earliest_read(row, now).expect("row just checked");
        assert!(now >= earliest, "READ at {now} before {earliest}");
        self.rd_allowed = self.rd_allowed.max(now + t.t_ccd);
        self.wr_allowed = self.wr_allowed.max(now + t.t_ccd);
        self.pre_allowed = self.pre_allowed.max(now + t.t_rtp);
        self.stats.reads.inc();
        (now + t.cl, now + t.cl + t.t_burst)
    }

    /// Applies a WRITE CAS at `now`; returns the interval `[start, end)` the
    /// write burst occupies on the data bus.
    ///
    /// # Panics
    /// Panics on protocol violations.
    pub fn write(&mut self, now: Tick, t: &DramTiming) -> (Tick, Tick) {
        let row = self.open_row().expect("WRITE on idle bank");
        let earliest = self.earliest_write(row, now).expect("row just checked");
        assert!(now >= earliest, "WRITE at {now} before {earliest}");
        self.rd_allowed = self.rd_allowed.max(now + t.t_ccd);
        self.wr_allowed = self.wr_allowed.max(now + t.t_ccd);
        let data_end = now + t.cwl + t.t_burst;
        // Write recovery: the row may not close until tWR after data lands.
        self.pre_allowed = self.pre_allowed.max(data_end + t.t_wr);
        self.stats.writes.inc();
        (now + t.cwl, data_end)
    }

    /// Applies PRECHARGE at `now`, closing any open row.
    ///
    /// # Panics
    /// Panics if `now` violates the precharge reservation.
    pub fn precharge(&mut self, now: Tick, t: &DramTiming) {
        let earliest = self.earliest_precharge(now);
        assert!(now >= earliest, "PRECHARGE at {now} before {earliest}");
        if matches!(self.state, BankState::Active { .. }) {
            self.stats.precharges.inc();
        }
        self.state = BankState::Idle;
        self.act_allowed = self.act_allowed.max(now + t.t_rp);
    }

    /// Blocks the bank (refresh or mode-register update): no command may
    /// issue until `until`.
    pub fn block_until(&mut self, until: Tick) {
        debug_assert!(matches!(self.state, BankState::Idle));
        self.act_allowed = self.act_allowed.max(until);
        self.rd_allowed = self.rd_allowed.max(until);
        self.wr_allowed = self.wr_allowed.max(until);
        self.pre_allowed = self.pre_allowed.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr3_paper()
    }

    #[test]
    fn closed_bank_read_path() {
        let timing = t();
        let mut b = Bank::new();
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.earliest_read(5, Tick::ZERO), None, "no row open");

        let act_at = b.earliest_activate(Tick::ZERO).unwrap();
        assert_eq!(act_at, Tick::ZERO);
        b.activate(5, act_at, &timing);
        assert_eq!(b.open_row(), Some(5));

        // First CAS must wait tRCD.
        let rd_at = b.earliest_read(5, Tick::ZERO).unwrap();
        assert_eq!(rd_at, timing.t_rcd);
        let (start, end) = b.read(rd_at, &timing);
        assert_eq!(start, timing.t_rcd + timing.cl); // 26 ns closed-row latency
        assert_eq!(end - start, timing.t_burst);
    }

    #[test]
    fn row_hit_reads_pipeline_at_tccd() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, Tick::ZERO, &timing);
        let first = b.earliest_read(0, Tick::ZERO).unwrap();
        b.read(first, &timing);
        let second = b.earliest_read(0, first).unwrap();
        assert_eq!(second, first + timing.t_ccd);
        b.read(second, &timing);
        // Back-to-back row hits stream one burst per tCCD = 4 ns: full
        // bandwidth, the regime JAFAR streams in.
        let third = b.earliest_read(0, second).unwrap();
        assert_eq!(third, second + timing.t_ccd);
    }

    #[test]
    fn wrong_row_requires_precharge() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(3, Tick::ZERO, &timing);
        assert_eq!(b.earliest_read(4, Tick::from_ns(100)), None);
        assert_eq!(b.earliest_activate(Tick::from_ns(100)), None);
        // tRAS gates the precharge.
        let pre_at = b.earliest_precharge(Tick::ZERO);
        assert_eq!(pre_at, timing.t_ras);
        b.precharge(pre_at, &timing);
        assert_eq!(b.state(), BankState::Idle);
        // tRP gates the next activate; tRC also applies from the old ACT.
        let act_at = b.earliest_activate(pre_at).unwrap();
        assert_eq!(act_at, (pre_at + timing.t_rp).max(timing.t_rc));
    }

    #[test]
    fn trc_spacing_between_activates() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, Tick::ZERO, &timing);
        // Precharge as early as tRAS allows, then activate as early as legal.
        let pre_at = b.earliest_precharge(Tick::ZERO);
        b.precharge(pre_at, &timing);
        let act_at = b.earliest_activate(Tick::ZERO).unwrap();
        assert!(act_at >= timing.t_rc, "tRC violated: {act_at}");
    }

    #[test]
    fn read_to_precharge_waits_trtp() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, Tick::ZERO, &timing);
        let rd_at = b.earliest_read(0, Tick::ZERO).unwrap();
        b.read(rd_at, &timing);
        assert!(b.earliest_precharge(rd_at) >= rd_at + timing.t_rtp);
    }

    #[test]
    fn write_recovery_gates_precharge() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, Tick::ZERO, &timing);
        let wr_at = b.earliest_write(0, Tick::ZERO).unwrap();
        let (_, data_end) = b.write(wr_at, &timing);
        assert_eq!(data_end, wr_at + timing.cwl + timing.t_burst);
        assert_eq!(b.earliest_precharge(wr_at), data_end + timing.t_wr);
    }

    #[test]
    fn precharge_idle_bank_is_legal_noop() {
        let timing = t();
        let mut b = Bank::new();
        b.precharge(Tick::ZERO, &timing);
        assert_eq!(b.state(), BankState::Idle);
        assert_eq!(b.stats().precharges.get(), 0, "no row was closed");
        // But it still costs tRP before the next activate.
        assert_eq!(b.earliest_activate(Tick::ZERO).unwrap(), timing.t_rp);
    }

    #[test]
    #[should_panic(expected = "before")]
    fn premature_read_panics() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, Tick::ZERO, &timing);
        b.read(Tick::from_ns(1), &timing); // < tRCD
    }

    #[test]
    #[should_panic(expected = "open row")]
    fn double_activate_panics() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, Tick::ZERO, &timing);
        b.activate(1, Tick::from_us(1), &timing);
    }

    #[test]
    fn stats_accumulate() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, Tick::ZERO, &timing);
        let rd = b.earliest_read(0, Tick::ZERO).unwrap();
        b.read(rd, &timing);
        let wr = b.earliest_write(0, rd).unwrap();
        b.write(wr, &timing);
        let pre = b.earliest_precharge(wr);
        b.precharge(pre, &timing);
        assert_eq!(b.stats().activates.get(), 1);
        assert_eq!(b.stats().reads.get(), 1);
        assert_eq!(b.stats().writes.get(), 1);
        assert_eq!(b.stats().precharges.get(), 1);
    }

    #[test]
    fn block_until_delays_everything() {
        let timing = t();
        let mut b = Bank::new();
        b.block_until(Tick::from_ns(500));
        assert_eq!(b.earliest_activate(Tick::ZERO).unwrap(), Tick::from_ns(500));
        assert_eq!(b.earliest_precharge(Tick::ZERO), Tick::from_ns(500));
        b.activate(0, Tick::from_ns(500), &timing);
    }
}
