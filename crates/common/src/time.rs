//! Simulation time and clock domains.
//!
//! The whole workspace shares one global timeline measured in **picoseconds**
//! ([`Tick`]). Picoseconds are the coarsest unit that represents every clock
//! in the paper exactly: the JAFAR device runs at 2 GHz (500 ps), the DDR3
//! data bus at 1 GHz (1000 ps), the simulated host CPU at 1 GHz, and the DRAM
//! internal arrays at 250 MHz (4000 ps). A `u64` of picoseconds overflows
//! after ~213 days of simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point on (or a span of) the global simulation timeline, in picoseconds.
///
/// ```
/// use jafar_common::time::Tick;
///
/// let cas_latency = Tick::from_ns(13);
/// let burst = Tick::from_ns(4);
/// assert_eq!(cas_latency + burst, Tick::from_ps(17_000));
/// assert_eq!(format!("{}", cas_latency), "13.000ns");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

/// A whole number of cycles of some [`ClockDomain`].
pub type Cycles = u64;

impl Tick {
    /// Time zero.
    pub const ZERO: Tick = Tick(0);
    /// The farthest representable future; used as "no pending event".
    pub const MAX: Tick = Tick(u64::MAX);

    /// Constructs a tick from a picosecond count.
    pub const fn from_ps(ps: u64) -> Self {
        Tick(ps)
    }

    /// Constructs a tick from a nanosecond count.
    pub const fn from_ns(ns: u64) -> Self {
        Tick(ns * 1_000)
    }

    /// Constructs a tick from a microsecond count.
    pub const fn from_us(us: u64) -> Self {
        Tick(us * 1_000_000)
    }

    /// Constructs a tick from a millisecond count.
    pub const fn from_ms(ms: u64) -> Self {
        Tick(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This tick expressed in (truncated) whole nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// This tick expressed in fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This tick expressed in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This tick expressed in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: Tick) -> Tick {
        Tick(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: Tick) -> Option<Tick> {
        self.0.checked_add(other.0).map(Tick)
    }

    /// The larger of two ticks.
    pub fn max(self, other: Tick) -> Tick {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two ticks.
    pub fn min(self, other: Tick) -> Tick {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this tick is `Tick::MAX`, i.e. "never".
    pub fn is_never(self) -> bool {
        self == Tick::MAX
    }
}

impl Add for Tick {
    type Output = Tick;
    fn add(self, rhs: Tick) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign for Tick {
    fn add_assign(&mut self, rhs: Tick) {
        self.0 += rhs.0;
    }
}

impl Sub for Tick {
    type Output = Tick;
    fn sub(self, rhs: Tick) -> Tick {
        debug_assert!(self.0 >= rhs.0, "tick subtraction underflow");
        Tick(self.0 - rhs.0)
    }
}

impl SubAssign for Tick {
    fn sub_assign(&mut self, rhs: Tick) {
        debug_assert!(self.0 >= rhs.0, "tick subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Tick {
    type Output = Tick;
    fn mul(self, rhs: u64) -> Tick {
        Tick(self.0 * rhs)
    }
}

impl Div<u64> for Tick {
    type Output = Tick;
    fn div(self, rhs: u64) -> Tick {
        Tick(self.0 / rhs)
    }
}

impl Div<Tick> for Tick {
    type Output = u64;
    fn div(self, rhs: Tick) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Tick> for Tick {
    type Output = Tick;
    fn rem(self, rhs: Tick) -> Tick {
        Tick(self.0 % rhs.0)
    }
}

impl Sum for Tick {
    fn sum<I: Iterator<Item = Tick>>(iter: I) -> Tick {
        iter.fold(Tick::ZERO, Add::add)
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            return write!(f, "never");
        }
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A fixed-frequency clock that converts between cycle counts and [`Tick`]s.
///
/// Frequencies are stored as an exact period in picoseconds, so the common
/// simulation clocks (2 GHz = 500 ps, 1 GHz = 1000 ps, 250 MHz = 4000 ps)
/// round-trip without error.
///
/// ```
/// use jafar_common::time::{ClockDomain, Tick};
///
/// // The paper's clock domains: JAFAR runs at twice the 1 GHz data bus.
/// let bus = ClockDomain::from_ghz(1);
/// let jafar = ClockDomain::from_ghz(2);
/// assert_eq!(bus.period(), jafar.period() * 2);
/// // An 8-word burst takes 4 bus cycles = 8 device cycles.
/// assert_eq!(bus.cycles_to_tick(4), jafar.cycles_to_tick(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockDomain {
    period_ps: u64,
}

impl ClockDomain {
    /// Creates a clock with the given period in picoseconds.
    ///
    /// # Panics
    /// Panics if `period_ps` is zero.
    pub const fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be nonzero");
        ClockDomain { period_ps }
    }

    /// Creates a clock from a frequency in MHz. The frequency must divide
    /// 1 THz so the period is an exact picosecond count (true for every clock
    /// used in the paper).
    ///
    /// # Panics
    /// Panics if `mhz` is zero or does not yield an integral period.
    pub const fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be nonzero");
        assert!(
            1_000_000 % mhz == 0,
            "frequency must divide 1 THz for an exact picosecond period"
        );
        ClockDomain {
            period_ps: 1_000_000 / mhz,
        }
    }

    /// Creates a clock from a frequency in GHz.
    pub const fn from_ghz(ghz: u64) -> Self {
        Self::from_mhz(ghz * 1000)
    }

    /// The clock period.
    pub const fn period(self) -> Tick {
        Tick(self.period_ps)
    }

    /// The clock frequency in MHz (truncated).
    pub const fn freq_mhz(self) -> u64 {
        1_000_000 / self.period_ps
    }

    /// Converts a cycle count into a time span.
    pub const fn cycles_to_tick(self, cycles: Cycles) -> Tick {
        Tick(cycles * self.period_ps)
    }

    /// How many *complete* cycles fit in `span`.
    pub const fn ticks_to_cycles(self, span: Tick) -> Cycles {
        span.0 / self.period_ps
    }

    /// How many cycles are needed to cover `span` (rounds up).
    pub const fn ticks_to_cycles_ceil(self, span: Tick) -> Cycles {
        span.0.div_ceil(self.period_ps)
    }

    /// The earliest clock edge at or after `t`.
    pub const fn next_edge(self, t: Tick) -> Tick {
        let rem = t.0 % self.period_ps;
        if rem == 0 {
            t
        } else {
            Tick(t.0 + (self.period_ps - rem))
        }
    }

    /// The edge number (cycle index) of the edge at or after `t`.
    pub const fn edge_index(self, t: Tick) -> Cycles {
        self.next_edge(t).0 / self.period_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_constructors_round_trip() {
        assert_eq!(Tick::from_ns(13).as_ps(), 13_000);
        assert_eq!(Tick::from_us(2).as_ns(), 2_000);
        assert_eq!(Tick::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Tick::from_ps(999).as_ns(), 0);
    }

    #[test]
    fn tick_arithmetic() {
        let a = Tick::from_ns(10);
        let b = Tick::from_ns(4);
        assert_eq!(a + b, Tick::from_ns(14));
        assert_eq!(a - b, Tick::from_ns(6));
        assert_eq!(a * 3, Tick::from_ns(30));
        assert_eq!(a / 2, Tick::from_ns(5));
        assert_eq!(a / b, 2);
        assert_eq!(b.saturating_sub(a), Tick::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn tick_subtraction_underflow_panics_in_debug() {
        let _ = Tick::from_ns(1) - Tick::from_ns(2);
    }

    #[test]
    fn tick_sum() {
        let total: Tick = (1..=4).map(Tick::from_ns).sum();
        assert_eq!(total, Tick::from_ns(10));
    }

    #[test]
    fn tick_display_units() {
        assert_eq!(format!("{}", Tick::from_ps(500)), "500ps");
        assert_eq!(format!("{}", Tick::from_ns(13)), "13.000ns");
        assert_eq!(format!("{}", Tick::from_us(5)), "5.000us");
        assert_eq!(format!("{}", Tick::from_ms(2)), "2.000ms");
        assert_eq!(format!("{}", Tick::MAX), "never");
    }

    #[test]
    fn paper_clock_domains_are_exact() {
        // The four clocks named in the paper (Section 2).
        let jafar = ClockDomain::from_ghz(2);
        let bus = ClockDomain::from_ghz(1);
        let cpu = ClockDomain::from_ghz(1);
        let array = ClockDomain::from_mhz(250);
        assert_eq!(jafar.period(), Tick::from_ps(500));
        assert_eq!(bus.period(), Tick::from_ps(1000));
        assert_eq!(cpu.period(), Tick::from_ps(1000));
        assert_eq!(array.period(), Tick::from_ps(4000));
        // Paper: "JAFAR generates its own clock that is twice as fast as the
        // data bus clock"; "the data bus clock domain must be four times
        // faster than the internal array clock".
        assert_eq!(bus.period().as_ps(), jafar.period().as_ps() * 2);
        assert_eq!(array.period().as_ps(), bus.period().as_ps() * 4);
    }

    #[test]
    fn cycle_tick_conversions() {
        let bus = ClockDomain::from_ghz(1);
        assert_eq!(bus.cycles_to_tick(4), Tick::from_ns(4));
        assert_eq!(bus.ticks_to_cycles(Tick::from_ps(3500)), 3);
        assert_eq!(bus.ticks_to_cycles_ceil(Tick::from_ps(3500)), 4);
        assert_eq!(bus.ticks_to_cycles_ceil(Tick::from_ps(3000)), 3);
        assert_eq!(bus.freq_mhz(), 1000);
    }

    #[test]
    fn next_edge_alignment() {
        let array = ClockDomain::from_mhz(250); // 4 ns period
        assert_eq!(array.next_edge(Tick::ZERO), Tick::ZERO);
        assert_eq!(array.next_edge(Tick::from_ps(1)), Tick::from_ps(4000));
        assert_eq!(array.next_edge(Tick::from_ps(4000)), Tick::from_ps(4000));
        assert_eq!(array.next_edge(Tick::from_ps(4001)), Tick::from_ps(8000));
        assert_eq!(array.edge_index(Tick::from_ps(4001)), 2);
    }

    #[test]
    #[should_panic(expected = "exact picosecond period")]
    fn inexact_frequency_rejected() {
        let _ = ClockDomain::from_mhz(3); // 1 THz / 3 is not integral
    }
}
