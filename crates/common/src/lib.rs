//! Shared foundation for the JAFAR near-data-processing simulator workspace.
//!
//! This crate provides the small, dependency-free building blocks every other
//! crate in the workspace relies on:
//!
//! - [`time`]: picosecond-resolution simulation time ([`Tick`]) and clock
//!   domains ([`ClockDomain`]) so components running at 1 GHz (host CPU and
//!   DDR3 data bus), 250 MHz (DRAM internal arrays) and 2 GHz (the JAFAR
//!   device) can be co-simulated on one timeline.
//! - [`bitset`]: the fixed-capacity bitset JAFAR accumulates filter results
//!   into, plus the growable position bitmap the column-store uses.
//! - [`stats`]: counters, streaming summary statistics and power-of-two
//!   histograms used for memory-controller idle-period accounting.
//! - [`rng`]: a deterministic SplitMix64 generator so every experiment is
//!   exactly reproducible from a seed.
//! - [`check`]: a tiny seeded property-test harness (the workspace builds
//!   offline, so it vendors this instead of depending on `proptest`).
//! - [`size`]: byte-size helpers and alignment utilities.
//!
//! [`Tick`]: time::Tick
//! [`ClockDomain`]: time::ClockDomain

pub mod bitset;
pub mod check;
pub mod obs;
pub mod rng;
pub mod size;
pub mod stats;
pub mod time;

pub use bitset::{BitSet, FixedBitBuf};
pub use rng::SplitMix64;
pub use size::{align_down, align_up, is_pow2, KIB, MIB};
pub use stats::{Counter, Histogram, Scoreboard, Summary};
pub use time::{ClockDomain, Cycles, Tick};
