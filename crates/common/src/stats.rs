//! Counters, streaming summaries, and histograms.
//!
//! These are the accounting primitives behind every number the benchmarks
//! report: memory-controller busy-cycle counters (`RC_busy`, `WC_busy`),
//! exact idle-period distributions (Figure 4), row-buffer hit rates, and so
//! on.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming min / max / mean / variance over `u64` samples
/// (Welford's algorithm; numerically stable, O(1) memory).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            min: u64::MAX,
            ..Default::default()
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let delta = value as f64 - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value as f64 - self.mean);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation, or 0 if fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.mean = mean;
        self.m2 = m2;
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.1} sd={:.1} min={} max={}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

/// A histogram over `u64` values with logarithmic (power-of-two) buckets.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`, except bucket 0 which covers `[0, 2)`.
/// Used for idle-period-length distributions where the dynamic range spans
/// several orders of magnitude.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    summary: Summary,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            summary: Summary::new(),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value < 2 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.summary.record(value);
    }

    /// The streaming summary over all recorded samples.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Count in the bucket covering `value`.
    pub fn bucket_for(&self, value: u64) -> u64 {
        let idx = if value < 2 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx]
    }

    /// `(bucket_low_bound, count)` pairs for non-empty buckets, ascending.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Approximate quantile via bucket interpolation: the value below which
    /// at least `q` (0..=1) of samples fall. Coarse (power-of-two buckets)
    /// but adequate for reporting idle-period tails.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return if i == 0 { 1 } else { 1u64 << (i + 1) };
            }
        }
        u64::MAX
    }
}

/// An ordered set of named counters, used where a component wants to report
/// a variable mix of events (e.g. the resilient driver's retries, renewals,
/// watchdog fires) without a fixed struct per report format.
///
/// Insertion order is preserved so reports render in a stable, readable
/// order; lookups are linear, which is fine for the ~dozen entries these
/// scoreboards hold.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scoreboard {
    entries: Vec<(String, u64)>,
}

impl Scoreboard {
    /// An empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter, creating it at `n` if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        match self.entries.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += n,
            None => self.entries.push((name.to_string(), n)),
        }
    }

    /// Increments the named counter by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of the named counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True if no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of every counter — handy for "did anything at all happen" checks.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// Folds another scoreboard into this one, key by key.
    pub fn merge(&mut self, other: &Scoreboard) {
        for (name, v) in other.iter() {
            self.add(name, v);
        }
    }
}

impl fmt::Display for Scoreboard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{name}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 6);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn summary_known_values() {
        let mut s = Summary::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum(), 40);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(9));
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(format!("{s}"), "n=0");
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let mut all = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for v in 0..100u64 {
            all.record(v * v % 37);
            if v % 2 == 0 {
                a.record(v * v % 37);
            } else {
                b.record(v * v % 37);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.stddev() - all.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(10);
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        let mut e2 = Summary::new();
        e2.merge(&a);
        assert_eq!(e2.count(), 1);
        assert_eq!(e2.max(), Some(10));
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024, 1500] {
            h.record(v);
        }
        assert_eq!(h.bucket_for(0), 2); // 0 and 1
        assert_eq!(h.bucket_for(2), 2); // 2 and 3
        assert_eq!(h.bucket_for(4), 2); // 4 and 7
        assert_eq!(h.bucket_for(8), 1);
        assert_eq!(h.bucket_for(1024), 2); // 1024 and 1500
        assert_eq!(h.count(), 9);
        let buckets = h.nonempty_buckets();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 2), (8, 1), (1024, 2)]);
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!((256..=1024).contains(&q50), "q50={q50}");
    }

    #[test]
    fn histogram_summary_consistent() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.summary().count(), 3);
        assert!((h.summary().mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn scoreboard_preserves_order_and_merges() {
        let mut a = Scoreboard::new();
        a.bump("retries");
        a.add("renewals", 2);
        a.bump("retries");
        assert_eq!(a.get("retries"), 2);
        assert_eq!(a.get("renewals"), 2);
        assert_eq!(a.get("absent"), 0);
        assert_eq!(a.total(), 4);
        assert_eq!(format!("{a}"), "retries=2 renewals=2");

        let mut b = Scoreboard::new();
        b.add("renewals", 1);
        b.add("fallbacks", 3);
        a.merge(&b);
        assert_eq!(a.get("renewals"), 3);
        assert_eq!(
            a.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            vec!["retries", "renewals", "fallbacks"]
        );
    }
}
