//! Bitsets.
//!
//! Two flavours are provided:
//!
//! - [`FixedBitBuf`]: the *n*-bit output buffer inside the JAFAR device
//!   (paper §2.2: "the output buffer holds n bits to represent the state of
//!   n filter operations"; every *n* cycles it fills up and is flushed to
//!   DRAM). It is deliberately tiny and fixed-capacity.
//! - [`BitSet`]: a growable word-packed bitmap used by the column-store for
//!   selection vectors and by tests as a reference representation of JAFAR's
//!   output.

use std::fmt;

const WORD_BITS: usize = 64;

/// A growable, word-packed bitmap with a fixed logical length.
///
/// ```
/// use jafar_common::bitset::BitSet;
///
/// // Decode a JAFAR output bitset back into row positions.
/// let mut selection = BitSet::new(100);
/// selection.set(3);
/// selection.set(97);
/// let bytes = selection.to_bytes(); // the DRAM writeback image
/// let decoded = BitSet::from_bytes(&bytes, 100);
/// assert_eq!(decoded.to_positions(), vec![3, 97]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Reconstructs a bitmap from the little-endian byte representation
    /// JAFAR writes to memory. `len` is the number of valid bits.
    ///
    /// # Panics
    /// Panics if `bytes` is too short to hold `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= len,
            "byte buffer too short: {} bytes for {} bits",
            bytes.len(),
            len
        );
        let nbytes = len.div_ceil(8);
        let mut set = BitSet::new(len);
        for (w, chunk) in set.words.iter_mut().zip(bytes[..nbytes].chunks(8)) {
            let mut le = [0u8; 8];
            le[..chunk.len()].copy_from_slice(chunk);
            *w = u64::from_le_bytes(le);
        }
        // Padding bits past `len` in the source image must not leak in.
        if !len.is_multiple_of(WORD_BITS) {
            if let Some(last) = set.words.last_mut() {
                *last &= (1u64 << (len % WORD_BITS)) - 1;
            }
        }
        set
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Writes bit `i` to `value`.
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Bitwise OR with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Bitwise AND with another bitmap of the same length.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// The little-endian byte image of the bitmap, `ceil(len/8)` bytes.
    /// Bit `i` lives at byte `i/8`, bit position `i%8` — the layout JAFAR
    /// writes back to DRAM.
    pub fn to_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for (w, chunk) in self.words.iter().zip(out.chunks_mut(8)) {
            let le = w.to_le_bytes();
            chunk.copy_from_slice(&le[..chunk.len()]);
        }
        out
    }

    /// Collects set-bit indices into a vector of row positions.
    ///
    /// # Panics
    /// Panics if the bitmap holds positions that do not fit in `u32`
    /// (columns of 2^32 rows or more) — use
    /// [`BitSet::to_positions_u64`] for those.
    pub fn to_positions(&self) -> Vec<u32> {
        assert!(
            self.len as u64 <= u64::from(u32::MAX) + 1,
            "bitmap of {} bits has positions beyond u32::MAX; use to_positions_u64",
            self.len
        );
        self.iter_ones().map(|i| i as u32).collect()
    }

    /// Collects set-bit indices into a vector of `u64` row positions —
    /// the overload for columns of 2^32 rows or more, where
    /// [`BitSet::to_positions`] would silently truncate.
    pub fn to_positions_u64(&self) -> Vec<u64> {
        self.iter_ones().map(|i| i as u64).collect()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet[{}; {} set]", self.len, self.count_ones())
    }
}

/// Iterator over set-bit indices of a [`BitSet`].
pub struct IterOnes<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * WORD_BITS + bit;
                // Bits beyond `len` are never set, so no range check needed.
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

/// The fixed *n*-bit result buffer inside the JAFAR device.
///
/// Bits are pushed one per filter operation; when the buffer is full it must
/// be drained ([`FixedBitBuf::drain_bytes`]) before more bits can be pushed,
/// mirroring the hardware writeback every *n* cycles.
#[derive(Clone)]
pub struct FixedBitBuf {
    words: Vec<u64>,
    capacity: usize,
    filled: usize,
}

impl FixedBitBuf {
    /// Creates an empty buffer of `capacity` bits.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or not a multiple of 8 (hardware flushes
    /// whole bytes).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "output buffer must hold at least one bit");
        assert!(
            capacity.is_multiple_of(8),
            "output buffer capacity must be byte-aligned, got {capacity}"
        );
        FixedBitBuf {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
            filled: 0,
        }
    }

    /// Buffer capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of bits pushed since the last drain.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// True once `capacity` bits have been pushed.
    pub fn is_full(&self) -> bool {
        self.filled == self.capacity
    }

    /// True if no bits are pending.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Pushes the outcome of one filter operation.
    ///
    /// # Panics
    /// Panics if the buffer is full — the device must drain first, exactly
    /// like the hardware writeback.
    pub fn push(&mut self, bit: bool) {
        assert!(!self.is_full(), "output buffer overflow: drain before push");
        if bit {
            self.words[self.filled / WORD_BITS] |= 1u64 << (self.filled % WORD_BITS);
        }
        self.filled += 1;
    }

    /// Drains the buffered bits as little-endian bytes (the DRAM writeback
    /// image) and resets the buffer. Partial fills drain `ceil(filled/8)`
    /// bytes, which is how the final, possibly short, flush works.
    pub fn drain_bytes(&mut self) -> Vec<u8> {
        let nbytes = self.filled.div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for (w, chunk) in self.words.iter().zip(out.chunks_mut(8)) {
            let le = w.to_le_bytes();
            chunk.copy_from_slice(&le[..chunk.len()]);
        }
        for w in &mut self.words {
            *w = 0;
        }
        self.filled = 0;
        out
    }
}

impl fmt::Debug for FixedBitBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FixedBitBuf[{}/{}]", self.filled, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
        b.assign(64, true);
        assert!(b.get(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitSet::new(8).get(8);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 65, 127, 128, 199]);
        assert_eq!(b.to_positions(), vec![0, 1, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
        assert!(b.to_bytes().is_empty());
    }

    #[test]
    fn union_intersect() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.set(1);
        a.set(69);
        b.set(1);
        b.set(2);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_positions(), vec![1, 2, 69]);
        a.intersect_with(&b);
        assert_eq!(a.to_positions(), vec![1]);
    }

    #[test]
    fn byte_round_trip() {
        let mut b = BitSet::new(19);
        b.set(0);
        b.set(8);
        b.set(18);
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), 3);
        assert_eq!(bytes[0], 0b0000_0001);
        assert_eq!(bytes[1], 0b0000_0001);
        assert_eq!(bytes[2], 0b0000_0100);
        let back = BitSet::from_bytes(&bytes, 19);
        assert_eq!(back, b);
    }

    #[test]
    fn from_bytes_masks_padding_bits_and_ignores_excess_bytes() {
        // All-ones image, 19 valid bits: the 5 padding bits in byte 2 and
        // the entire spare byte 3 must not leak into the bitmap.
        let bytes = [0xFFu8; 4];
        let b = BitSet::from_bytes(&bytes, 19);
        assert_eq!(b.count_ones(), 19);
        assert_eq!(b.iter_ones().last(), Some(18));
    }

    #[test]
    fn from_bytes_word_boundaries_round_trip() {
        for len in [1usize, 7, 8, 63, 64, 65, 127, 128, 129, 500] {
            let mut b = BitSet::new(len);
            for i in (0..len).step_by(3) {
                b.set(i);
            }
            b.set(len - 1);
            let back = BitSet::from_bytes(&b.to_bytes(), len);
            assert_eq!(back, b, "round trip failed at len {len}");
        }
    }

    #[test]
    fn positions_u64_matches_u32_overload() {
        let mut b = BitSet::new(200);
        for i in [0usize, 64, 65, 199] {
            b.set(i);
        }
        let narrow: Vec<u64> = b.to_positions().iter().map(|&p| p as u64).collect();
        assert_eq!(b.to_positions_u64(), narrow);
    }

    #[test]
    fn fixed_buf_fill_drain_cycle() {
        let mut buf = FixedBitBuf::new(16);
        assert!(buf.is_empty());
        for i in 0..16 {
            buf.push(i % 3 == 0);
        }
        assert!(buf.is_full());
        let bytes = buf.drain_bytes();
        assert_eq!(bytes.len(), 2);
        let set = BitSet::from_bytes(&bytes, 16);
        let expect: Vec<u32> = (0..16).filter(|i| i % 3 == 0).collect();
        assert_eq!(set.to_positions(), expect);
        assert!(buf.is_empty());
        // Buffer is reusable after drain.
        buf.push(true);
        assert_eq!(buf.filled(), 1);
        let tail = buf.drain_bytes();
        assert_eq!(tail, vec![1u8]);
    }

    #[test]
    fn fixed_buf_partial_drain() {
        let mut buf = FixedBitBuf::new(64);
        for _ in 0..9 {
            buf.push(true);
        }
        let bytes = buf.drain_bytes();
        assert_eq!(bytes, vec![0xFF, 0x01]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn fixed_buf_overflow_panics() {
        let mut buf = FixedBitBuf::new(8);
        for _ in 0..9 {
            buf.push(false);
        }
    }

    #[test]
    #[should_panic(expected = "byte-aligned")]
    fn fixed_buf_unaligned_capacity_rejected() {
        let _ = FixedBitBuf::new(12);
    }
}
