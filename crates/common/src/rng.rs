//! Deterministic pseudo-random number generation.
//!
//! Every workload in the reproduction (the Figure 3 uniform-integer column,
//! the TPC-H-like tables) must be exactly reproducible from a seed, so we use
//! a small self-contained SplitMix64 generator rather than a thread-seeded
//! one. SplitMix64 passes BigCrush for these purposes and is the standard
//! seeding generator for the xoshiro family.

/// A SplitMix64 generator: 64 bits of state, full 2^64 period.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds yield independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value uniform in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: low < bound. Accept unless in the biased tail.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Next value uniform in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn next_range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Full-width range: any u64 reinterpreted is uniform.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_below(span as u64) as i64)
    }

    /// Next value uniform in `[0.0, 1.0)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator (for parallel streams).
    ///
    /// `fork` *advances* the parent, so the child stream depends on how
    /// many forks preceded it. When streams must be stable under
    /// reconfiguration (adding a node must not perturb the others), use
    /// [`SplitMix64::split`] instead.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Derives an independent child generator identified by `label`,
    /// **without advancing this generator**.
    ///
    /// Because derivation is a pure function of `(parent state, label)`,
    /// the child stream for a given label is the same no matter how many
    /// other labels are split off, and in what order. This is the stream-
    /// hygiene primitive for per-node / per-unit RNGs: `root.split("node-1")`
    /// yields byte-identical draws whether the cluster has one node or
    /// sixteen.
    pub fn split(&self, label: &str) -> SplitMix64 {
        // FNV-1a over the label keeps distinct labels on distinct
        // streams; one SplitMix64 finalizer over (state ⊕ hash·γ)
        // decorrelates the child from the parent and from siblings.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = self.state ^ h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SplitMix64::new(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 0 from the canonical SplitMix64.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(10) as usize] += 1;
        }
        let expect = n as f64 / 10.0;
        for &c in &counts {
            // Within 5% of expectation — loose enough never to flake with a
            // fixed seed, tight enough to catch gross bias.
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "counts={counts:?}"
            );
        }
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = SplitMix64::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range_inclusive(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(r.next_range_inclusive(5, 5), 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(1234);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn split_does_not_advance_the_parent() {
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        let _node0 = a.split("node-0");
        let _node1 = a.split("node-1");
        // Parent draws are untouched by any number of splits.
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_label_stable_and_distinct() {
        let root = SplitMix64::new(0xC0FFEE);
        // The "node-0" stream is identical whether it is the only split
        // or one of many, and regardless of split order.
        let mut solo = root.split("node-0");
        let _ = root.split("node-7");
        let _ = root.split("link-3");
        let mut crowded = root.split("node-0");
        let a: Vec<u64> = (0..32).map(|_| solo.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| crowded.next_u64()).collect();
        assert_eq!(a, b, "a label names one stream, independent of siblings");

        let mut other = root.split("node-1");
        let c: Vec<u64> = (0..32).map(|_| other.next_u64()).collect();
        assert_ne!(a, c, "distinct labels must yield distinct streams");
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let s1: Vec<u64> = (0..10).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..10).map(|_| c2.next_u64()).collect();
        assert_ne!(s1, s2);
    }
}
