//! A minimal in-tree property-test harness.
//!
//! The workspace builds with no network access, so it cannot depend on
//! `proptest`. This module provides the small subset the tests actually
//! need: run a property over many deterministically seeded random cases
//! and, on failure, report which case (and which seed) broke so the run
//! can be replayed in isolation.
//!
//! ```
//! use jafar_common::check::forall;
//!
//! forall("sum is commutative", 32, |rng| {
//!     let a = rng.next_below(1000) as i64;
//!     let b = rng.next_below(1000) as i64;
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::SplitMix64;

/// Golden-ratio increment used to derive per-case seeds; the same constant
/// SplitMix64 itself steps by, so cases are as independent as forked streams.
const CASE_SEED_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed for case `case` of property `label`. Exposed so a
/// failing case can be replayed in isolation:
/// `prop(&mut SplitMix64::new(case_seed(label, case)))`.
pub fn case_seed(label: &str, case: u64) -> u64 {
    // FNV-1a over the label keeps distinct properties on distinct streams.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in label.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(CASE_SEED_GAMMA)
}

/// Runs `prop` against `cases` deterministically seeded generators. Any
/// panic inside the property is re-raised after printing the case index and
/// seed, so the failure is reproducible with [`case_seed`].
pub fn forall(label: &str, cases: u64, mut prop: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let seed = case_seed(label, case);
        let mut rng = SplitMix64::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("property '{label}' failed at case {case}/{cases} (seed {seed:#018x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case() {
        let mut hits = 0u64;
        forall("counter", 17, |_| hits += 1);
        assert_eq!(hits, 17);
    }

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let mut first: Vec<u64> = Vec::new();
        forall("stream", 8, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        forall("stream", 8, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second, "same label + case must replay identically");
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "cases must not repeat a stream");
    }

    #[test]
    fn failure_is_replayable_from_reported_seed() {
        let failing_case = 3u64;
        let result = std::panic::catch_unwind(|| {
            let mut case = 0u64;
            forall("replay", 8, |rng| {
                let v = rng.next_u64();
                if case == failing_case {
                    // Replaying the reported seed must observe the same draw.
                    let mut replay = SplitMix64::new(case_seed("replay", failing_case));
                    assert_eq!(replay.next_u64(), v);
                    panic!("expected failure");
                }
                case += 1;
            });
        });
        assert!(result.is_err(), "the injected failure must propagate");
    }
}
