//! Unified observability: a cycle-stamped event tracer, a metrics registry,
//! and deterministic exporters.
//!
//! Every number the paper argues from — idle memory-controller periods,
//! rank-ownership windows, bitset write-back traffic — is an *event in
//! time*. This module gives the whole workspace one way to record them:
//!
//! - [`Event`] / [`EventKind`]: a tick-stamped record drawn from a fixed
//!   taxonomy (DRAM commands, scheduling decisions, ownership and lease
//!   transitions, driver recovery actions, fault injections, accelerator
//!   pipeline stages, bitset write-backs, surfaced errors).
//! - [`TraceSink`]: the sink trait events are emitted into. The library
//!   never depends on a concrete sink.
//! - [`RingTracer`]: the standard sink — a bounded ring buffer that drops
//!   the *oldest* events under pressure and counts what it dropped, so a
//!   long run keeps the interesting tail.
//! - [`SharedTracer`]: the cloneable handle components hold. A disabled
//!   handle (the default everywhere) costs one `Option` branch per
//!   would-be event and performs **no** allocation, formatting, or
//!   timestamp math — the zero-cost-when-disabled contract. Enabling the
//!   tracer must never change simulated timing; sinks only observe.
//! - [`MetricsRegistry`]: an ordered name → value registry of monotonic
//!   counters and power-of-two-bucket [`Histogram`]s that the per-crate
//!   stats structs register snapshots into for unified reporting.
//! - Exporters: [`chrome_trace_json`] emits Chrome `trace_event` JSON
//!   (load it at `chrome://tracing`), [`render_timeline`] a human-readable
//!   dump. Both are purely deterministic functions of the recorded events:
//!   same seed → byte-identical output.

use crate::stats::Histogram;
use crate::time::Tick;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// What happened. Variants carry only `Copy` payloads (small ints and
/// `&'static str`) so recording an event never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A DRAM command left the command bus.
    DramCmd {
        /// Command mnemonic (`"ACT"`, `"RD"`, `"WR"`, `"PRE"`, `"PREA"`,
        /// `"REF"`, `"MRS"`).
        cmd: &'static str,
        /// Target rank.
        rank: u32,
        /// Target bank (the rank-wide commands report bank 0).
        bank: u32,
        /// `"host"` or `"ndp"`.
        requester: &'static str,
    },
    /// A block access resolved against the row buffer.
    RowAccess {
        /// `"hit"`, `"miss"`, or `"conflict"`.
        outcome: &'static str,
        /// Target rank.
        rank: u32,
        /// Target bank.
        bank: u32,
    },
    /// The memory controller picked a transaction to service.
    SchedDecision {
        /// `"read"` or `"write"` queue.
        queue: &'static str,
        /// The picked request id.
        picked: u64,
        /// Queue depth (both queues) at decision time.
        queued: u32,
    },
    /// Rank ownership flipped via the MR3/MPR handshake.
    OwnershipChange {
        /// The rank whose ownership changed.
        rank: u32,
        /// True when the NDP device now owns the rank.
        to_ndp: bool,
    },
    /// The resilient driver obtained a lease on a rank.
    LeaseGrant {
        /// Leased rank.
        rank: u32,
        /// Expiry tick.
        until: Tick,
    },
    /// The resilient driver renewed a lease mid-run.
    LeaseRenew {
        /// Leased rank.
        rank: u32,
        /// New expiry tick.
        until: Tick,
    },
    /// A lease expired before the device finished.
    LeaseExpire {
        /// The rank whose lease lapsed.
        rank: u32,
    },
    /// The driver retried a failed device operation.
    DriverRetry {
        /// Retry ordinal (1 = first retry).
        attempt: u32,
        /// The errno the failed attempt reported.
        errno: i32,
    },
    /// The driver's watchdog fired on a stuck page.
    WatchdogFire {
        /// Page index within the select run.
        page: u64,
    },
    /// The circuit breaker changed state.
    BreakerTransition {
        /// True = open (device bypassed), false = closed again.
        open: bool,
    },
    /// A page fell back to the CPU scan path.
    CpuFallback {
        /// Page index within the select run.
        page: u64,
    },
    /// The fault injector perturbed the run.
    FaultInjected {
        /// Fault mnemonic (`"bitflip"`, `"uncorrectable"`, `"stall"`,
        /// `"mrs-glitch"`, `"refresh-storm"`).
        kind: &'static str,
    },
    /// The accelerator pipeline entered a stage for a page.
    AccelStage {
        /// Stage mnemonic (`"select-start"`, `"select-done"`).
        stage: &'static str,
        /// Byte offset of the page within the column.
        page: u64,
    },
    /// The device wrote a bitset chunk back to DRAM.
    BitsetWriteback {
        /// Destination physical address.
        addr: u64,
        /// Chunk length in bytes.
        bytes: u32,
    },
    /// The parallel scheduler advanced one shard by one page.
    ShardStep {
        /// Index of the shard within the parallel select.
        shard: u32,
        /// DRAM rank the shard's device runs on.
        rank: u32,
        /// First row of the page the step processed.
        at_row: u64,
    },
    /// A shard of a parallel select finished its timeline.
    ShardDone {
        /// Index of the shard within the parallel select.
        shard: u32,
        /// DRAM rank the shard's device ran on.
        rank: u32,
        /// Number of rows the shard's predicate matched.
        matched: u64,
    },
    /// A library error path was taken (the former panic sites).
    ErrorSurfaced {
        /// Where (`"sim-backend"`, `"refresh"`, `"plan"`).
        site: &'static str,
        /// Short machine-readable detail.
        detail: &'static str,
    },
    /// The serving engine admitted a query into the bounded queue.
    QueryAdmitted {
        /// Submission index of the query within the served workload.
        query: u32,
        /// Queue depth the admission decision observed — the depth
        /// *before* this query was pushed, the same snapshot the
        /// shed/admit bound was tested against. (`QueryShed` reports
        /// the identical snapshot, so the two events are comparable.)
        depth: u32,
    },
    /// The serving engine dispatched a query onto an execution rung.
    QueryStarted {
        /// Submission index of the query within the served workload.
        query: u32,
        /// Rung mnemonic (`"parallel"`, `"single"`, `"cpu"`, or
        /// `"fused"` when the query shares a fused multi-predicate
        /// scan with other queued selects on the same column).
        mode: &'static str,
        /// Operator mnemonic (`"select"`, `"count"`, `"sum"`, `"min"`,
        /// `"max"`, `"project"`).
        op: &'static str,
        /// Device ranks granted to the query (0 on the CPU rung).
        ranks: u32,
    },
    /// A served query completed (all its shards finished).
    QueryDone {
        /// Submission index of the query within the served workload.
        query: u32,
        /// Rows the query's predicate matched.
        matched: u64,
    },
    /// Admission control shed a query (queue at its depth bound).
    QueryShed {
        /// Submission index of the query within the served workload.
        query: u32,
        /// Queue depth at the rejection.
        depth: u32,
    },
    /// A serving filter unit moved through its health state machine.
    RankHealth {
        /// Pool unit id of the unit whose health changed — on a
        /// single-DIMM pool this equals the rank index; on a wider
        /// channels × ranks pool it is the channel-major unit id (the
        /// serving engine's `FilterPool` numbering).
        rank: u32,
        /// New state (`"suspect"`, `"quarantined"`, `"probing"`,
        /// `"healthy"`).
        state: &'static str,
    },
    /// A parked shard resumed on a different filter unit from its
    /// checkpoint.
    ShardMigrated {
        /// Submission index of the query the shard belongs to.
        query: u32,
        /// Pool unit id the shard parked on (rank index on a
        /// single-DIMM pool).
        from: u32,
        /// Pool unit id it resumed on — possibly on another channel.
        to: u32,
        /// First row the resumed session processes (the checkpoint).
        row: u64,
    },
    /// A failed shard re-entered the dispatch ladder above host-degrade.
    QueryRequeued {
        /// Submission index of the query within the served workload.
        query: u32,
    },
    /// The group-by skew detector split a hot key's rows across units
    /// instead of hashing them onto one.
    SkewSplit {
        /// Submission index of the query within the served workload.
        query: u32,
        /// The hot key whose rows were split.
        key: i64,
        /// Units the key's rows were spread over.
        parts: u32,
    },
    /// A canary probe against a quarantined filter unit finished.
    CanaryProbe {
        /// Pool unit id of the probed unit (rank index on a single-DIMM
        /// pool).
        rank: u32,
        /// True when the canary completed on the device (unit repaired).
        ok: bool,
    },
    /// The cluster frontend routed a query to a memory node.
    QueryRouted {
        /// Submission index of the query within the served workload.
        query: u32,
        /// The memory node it was sent to.
        node: u32,
        /// Route mnemonic (`"round-robin"`, `"least-outstanding"`,
        /// `"replica-local"`) or `"failover"` when the preferred holder
        /// was routed around.
        via: &'static str,
    },
    /// A message crossed a fabric link (request, response, or column
    /// pull) — the data plane's per-hop ledger entry.
    NetHop {
        /// Fabric link id (node links first, extra links after).
        link: u32,
        /// Payload bytes carried.
        bytes: u64,
    },
    /// The cross-tier ladder's last rung: no healthy replica holder, so
    /// the frontend pulled the column over the network and scanned it
    /// locally.
    ColumnPulled {
        /// Submission index of the query within the served workload.
        query: u32,
        /// Column bytes pulled over the page-store link.
        bytes: u64,
    },
}

impl EventKind {
    /// Stable short name, used as the Chrome trace event name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::DramCmd { .. } => "dram-cmd",
            EventKind::RowAccess { .. } => "row-access",
            EventKind::SchedDecision { .. } => "sched",
            EventKind::OwnershipChange { .. } => "ownership",
            EventKind::LeaseGrant { .. } => "lease-grant",
            EventKind::LeaseRenew { .. } => "lease-renew",
            EventKind::LeaseExpire { .. } => "lease-expire",
            EventKind::DriverRetry { .. } => "retry",
            EventKind::WatchdogFire { .. } => "watchdog",
            EventKind::BreakerTransition { .. } => "breaker",
            EventKind::CpuFallback { .. } => "cpu-fallback",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::AccelStage { .. } => "accel",
            EventKind::BitsetWriteback { .. } => "bitset-wb",
            EventKind::ShardStep { .. } => "shard-step",
            EventKind::ShardDone { .. } => "shard-done",
            EventKind::ErrorSurfaced { .. } => "error",
            EventKind::QueryAdmitted { .. } => "query-admitted",
            EventKind::QueryStarted { .. } => "query-started",
            EventKind::QueryDone { .. } => "query-done",
            EventKind::QueryShed { .. } => "query-shed",
            EventKind::RankHealth { .. } => "rank-health",
            EventKind::ShardMigrated { .. } => "shard-migrated",
            EventKind::QueryRequeued { .. } => "query-requeued",
            EventKind::SkewSplit { .. } => "skew-split",
            EventKind::CanaryProbe { .. } => "canary-probe",
            EventKind::QueryRouted { .. } => "query-routed",
            EventKind::NetHop { .. } => "net-hop",
            EventKind::ColumnPulled { .. } => "column-pulled",
        }
    }

    /// The trace category ("track") the event belongs to.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::DramCmd { .. } | EventKind::RowAccess { .. } => "dram",
            EventKind::SchedDecision { .. } => "memctl",
            EventKind::OwnershipChange { .. }
            | EventKind::LeaseGrant { .. }
            | EventKind::LeaseRenew { .. }
            | EventKind::LeaseExpire { .. } => "ownership",
            EventKind::DriverRetry { .. }
            | EventKind::WatchdogFire { .. }
            | EventKind::BreakerTransition { .. }
            | EventKind::CpuFallback { .. } => "driver",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::AccelStage { .. }
            | EventKind::BitsetWriteback { .. }
            | EventKind::ShardStep { .. }
            | EventKind::ShardDone { .. } => "accel",
            EventKind::ErrorSurfaced { .. } => "error",
            EventKind::QueryAdmitted { .. }
            | EventKind::QueryStarted { .. }
            | EventKind::QueryDone { .. }
            | EventKind::QueryShed { .. }
            | EventKind::RankHealth { .. }
            | EventKind::ShardMigrated { .. }
            | EventKind::QueryRequeued { .. }
            | EventKind::SkewSplit { .. }
            | EventKind::CanaryProbe { .. } => "serve",
            EventKind::QueryRouted { .. }
            | EventKind::NetHop { .. }
            | EventKind::ColumnPulled { .. } => "net",
        }
    }

    /// Renders the payload as deterministic `key=value` pairs.
    fn args(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            EventKind::DramCmd {
                cmd,
                rank,
                bank,
                requester,
            } => {
                let _ = write!(out, "cmd={cmd} rank={rank} bank={bank} by={requester}");
            }
            EventKind::RowAccess {
                outcome,
                rank,
                bank,
            } => {
                let _ = write!(out, "outcome={outcome} rank={rank} bank={bank}");
            }
            EventKind::SchedDecision {
                queue,
                picked,
                queued,
            } => {
                let _ = write!(out, "queue={queue} picked={picked} queued={queued}");
            }
            EventKind::OwnershipChange { rank, to_ndp } => {
                let _ = write!(out, "rank={rank} to_ndp={to_ndp}");
            }
            EventKind::LeaseGrant { rank, until } => {
                let _ = write!(out, "rank={rank} until={}", until.as_ps());
            }
            EventKind::LeaseRenew { rank, until } => {
                let _ = write!(out, "rank={rank} until={}", until.as_ps());
            }
            EventKind::LeaseExpire { rank } => {
                let _ = write!(out, "rank={rank}");
            }
            EventKind::DriverRetry { attempt, errno } => {
                let _ = write!(out, "attempt={attempt} errno={errno}");
            }
            EventKind::WatchdogFire { page } => {
                let _ = write!(out, "page={page}");
            }
            EventKind::BreakerTransition { open } => {
                let _ = write!(out, "open={open}");
            }
            EventKind::CpuFallback { page } => {
                let _ = write!(out, "page={page}");
            }
            EventKind::FaultInjected { kind } => {
                let _ = write!(out, "kind={kind}");
            }
            EventKind::AccelStage { stage, page } => {
                let _ = write!(out, "stage={stage} page={page}");
            }
            EventKind::BitsetWriteback { addr, bytes } => {
                let _ = write!(out, "addr={addr} bytes={bytes}");
            }
            EventKind::ShardStep {
                shard,
                rank,
                at_row,
            } => {
                let _ = write!(out, "shard={shard} rank={rank} at_row={at_row}");
            }
            EventKind::ShardDone {
                shard,
                rank,
                matched,
            } => {
                let _ = write!(out, "shard={shard} rank={rank} matched={matched}");
            }
            EventKind::ErrorSurfaced { site, detail } => {
                let _ = write!(out, "site={site} detail={detail}");
            }
            EventKind::QueryAdmitted { query, depth } => {
                let _ = write!(out, "query={query} depth={depth}");
            }
            EventKind::QueryStarted {
                query,
                mode,
                op,
                ranks,
            } => {
                let _ = write!(out, "query={query} mode={mode} op={op} ranks={ranks}");
            }
            EventKind::QueryDone { query, matched } => {
                let _ = write!(out, "query={query} matched={matched}");
            }
            EventKind::QueryShed { query, depth } => {
                let _ = write!(out, "query={query} depth={depth}");
            }
            EventKind::RankHealth { rank, state } => {
                let _ = write!(out, "rank={rank} state={state}");
            }
            EventKind::ShardMigrated {
                query,
                from,
                to,
                row,
            } => {
                let _ = write!(out, "query={query} from={from} to={to} row={row}");
            }
            EventKind::QueryRequeued { query } => {
                let _ = write!(out, "query={query}");
            }
            EventKind::SkewSplit { query, key, parts } => {
                let _ = write!(out, "query={query} key={key} parts={parts}");
            }
            EventKind::CanaryProbe { rank, ok } => {
                let _ = write!(out, "rank={rank} ok={ok}");
            }
            EventKind::QueryRouted { query, node, via } => {
                let _ = write!(out, "query={query} node={node} via={via}");
            }
            EventKind::NetHop { link, bytes } => {
                let _ = write!(out, "link={link} bytes={bytes}");
            }
            EventKind::ColumnPulled { query, bytes } => {
                let _ = write!(out, "query={query} bytes={bytes}");
            }
        }
    }
}

/// One tick-stamped trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When it happened, on the shared picosecond timeline.
    pub at: Tick,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut args = String::new();
        self.kind.args(&mut args);
        write!(
            f,
            "{:>14} ps  {:9} {:12} {}",
            self.at.as_ps(),
            self.kind.category(),
            self.kind.name(),
            args
        )
    }
}

/// Where emitted events go. Implementations must not feed anything back
/// into the simulation: a sink observes the timeline, it never bends it.
pub trait TraceSink {
    /// Accepts one event.
    fn emit(&mut self, ev: Event);
}

/// The standard sink: a bounded ring buffer. When full, the *oldest*
/// event is dropped (and counted), keeping the most recent history.
#[derive(Debug)]
pub struct RingTracer {
    buf: VecDeque<Event>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

impl RingTracer {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingTracer {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            emitted: 0,
            dropped: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Snapshot of held events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().copied().collect()
    }

    /// Events held right now.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted into this ring.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears held events (keeps the emitted/dropped totals).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl TraceSink for RingTracer {
    fn emit(&mut self, ev: Event) {
        self.emitted += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// The cloneable tracer handle every instrumented component holds.
///
/// The default ([`SharedTracer::disabled`]) handle is `None` inside: an
/// emit is a single branch and returns — no event is constructed beyond
/// its `Copy` payload, nothing allocates, and no simulated state is read
/// or written. Enabling tracing therefore cannot change any simulated
/// tick count (asserted by tests in `jafar-sim`).
#[derive(Clone, Default)]
pub struct SharedTracer(Option<Rc<RefCell<dyn TraceSink>>>);

impl SharedTracer {
    /// A disabled handle (the default for every component).
    pub fn disabled() -> Self {
        SharedTracer(None)
    }

    /// A handle backed by a fresh [`RingTracer`]; also returns the ring so
    /// the caller can read events back after the run.
    pub fn ring(capacity: usize) -> (Self, Rc<RefCell<RingTracer>>) {
        let ring = Rc::new(RefCell::new(RingTracer::new(capacity)));
        let sink: Rc<RefCell<dyn TraceSink>> = ring.clone();
        (SharedTracer(Some(sink)), ring)
    }

    /// A handle over an arbitrary sink.
    pub fn with_sink(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        SharedTracer(Some(sink))
    }

    /// True when events actually go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits one event; a no-op (one branch) when disabled.
    #[inline]
    pub fn emit(&self, at: Tick, kind: EventKind) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().emit(Event { at, kind });
        }
    }
}

impl fmt::Debug for SharedTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedTracer")
            .field(&self.is_enabled())
            .finish()
    }
}

/// One registered metric value.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotonic counter snapshot.
    Counter(u64),
    /// A power-of-two-bucket histogram snapshot.
    Histogram(Histogram),
}

/// An ordered name → metric registry the per-crate stats structs register
/// snapshots into, so a run report can render every counter in the stack
/// in one place. Insertion order is preserved (stable reports); re-using
/// a name overwrites the previous value.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn set(&mut self, name: &str, m: Metric) {
        match self.entries.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = m,
            None => self.entries.push((name.to_string(), m)),
        }
    }

    /// Registers (or overwrites) a counter snapshot.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.set(name, Metric::Counter(value));
    }

    /// Registers (or overwrites) a histogram snapshot.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.set(name, Metric::Histogram(h.clone()));
    }

    /// Looks a counter up by name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(k, v)| match v {
            Metric::Counter(c) if k == name => Some(*c),
            _ => None,
        })
    }

    /// Iterates `(name, metric)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, m) in self.iter() {
            match m {
                Metric::Counter(v) => writeln!(f, "{name} = {v}")?,
                Metric::Histogram(h) => {
                    writeln!(
                        f,
                        "{name} = {} (p50<{} p99<{})",
                        h.summary(),
                        h.quantile(0.5),
                        h.quantile(0.99)
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Escapes a string for a JSON string literal (the event vocabulary is
/// ASCII mnemonics, but stay correct anyway).
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Writes a tick as a Chrome `ts` value (microseconds) with exact
/// picosecond precision — pure integer formatting, so the output is
/// byte-identical for identical inputs.
fn write_ts_us(ps: u64, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(out, "{}.{:06}", ps / 1_000_000, ps % 1_000_000);
}

/// Renders events as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in a `traceEvents` object), loadable at `chrome://tracing` or
/// Perfetto. Events become instant events (`"ph":"i"`) on one process,
/// with one thread per category. Deterministic: same events in, same
/// bytes out.
pub fn chrome_trace_json(events: &[Event]) -> String {
    // Stable category → tid mapping, in first-appearance order.
    let mut cats: Vec<&'static str> = Vec::new();
    for ev in events {
        let c = ev.kind.category();
        if !cats.contains(&c) {
            cats.push(c);
        }
    }
    let tid_of = |c: &str| cats.iter().position(|k| *k == c).unwrap_or(0) + 1;

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Thread-name metadata so chrome://tracing labels the tracks.
    for (i, c) in cats.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            c
        ));
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        json_escape(ev.kind.name(), &mut out);
        out.push_str("\",\"cat\":\"");
        json_escape(ev.kind.category(), &mut out);
        out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
        out.push_str(&tid_of(ev.kind.category()).to_string());
        out.push_str(",\"ts\":");
        write_ts_us(ev.at.as_ps(), &mut out);
        out.push_str(",\"args\":{\"detail\":\"");
        let mut args = String::new();
        ev.kind.args(&mut args);
        json_escape(&args, &mut out);
        out.push_str("\"}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Renders events as a human-readable timeline, one line per event,
/// oldest first. Deterministic.
pub fn render_timeline(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for ev in events {
        use std::fmt::Write;
        let _ = writeln!(out, "{ev}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ps: u64, kind: EventKind) -> Event {
        Event {
            at: Tick::from_ps(ps),
            kind,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = RingTracer::new(2);
        for i in 0..5u64 {
            ring.emit(ev(i, EventKind::WatchdogFire { page: i }));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.emitted(), 5);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<u64> = ring.events().map(|e| e.at.as_ps()).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = SharedTracer::disabled();
        assert!(!t.is_enabled());
        // Must not panic or allocate a sink.
        t.emit(
            Tick::from_ns(1),
            EventKind::BreakerTransition { open: true },
        );
    }

    #[test]
    fn shared_tracer_feeds_ring() {
        let (t, ring) = SharedTracer::ring(16);
        assert!(t.is_enabled());
        let t2 = t.clone();
        t.emit(Tick::from_ns(1), EventKind::CpuFallback { page: 7 });
        t2.emit(Tick::from_ns(2), EventKind::LeaseExpire { rank: 0 });
        let snap = ring.borrow().snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, EventKind::CpuFallback { page: 7 });
        assert_eq!(snap[1].at, Tick::from_ns(2));
    }

    #[test]
    fn chrome_export_is_deterministic_and_wellformed() {
        let events = vec![
            ev(
                1_000_000,
                EventKind::DramCmd {
                    cmd: "ACT",
                    rank: 0,
                    bank: 3,
                    requester: "host",
                },
            ),
            ev(
                2_500_000,
                EventKind::RowAccess {
                    outcome: "hit",
                    rank: 0,
                    bank: 3,
                },
            ),
            ev(3_000_001, EventKind::FaultInjected { kind: "bitflip" }),
        ];
        let a = chrome_trace_json(&events);
        let b = chrome_trace_json(&events);
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.ends_with("\"displayTimeUnit\":\"ns\"}"));
        // Exact ps → us conversion: 3_000_001 ps = 3.000001 us.
        assert!(a.contains("\"ts\":3.000001"), "{a}");
        assert!(a.contains("\"cat\":\"fault\""));
        // Balanced braces (crude well-formedness check; no JSON parser in
        // the dependency-free workspace).
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn timeline_renders_one_line_per_event() {
        let events = vec![
            ev(
                10,
                EventKind::LeaseGrant {
                    rank: 1,
                    until: Tick::from_ns(5),
                },
            ),
            ev(
                20,
                EventKind::ErrorSurfaced {
                    site: "plan",
                    detail: "unknown-table",
                },
            ),
        ];
        let text = render_timeline(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("lease-grant"));
        assert!(text.contains("site=plan"));
    }

    #[test]
    fn registry_preserves_order_and_overwrites() {
        let mut reg = MetricsRegistry::new();
        reg.counter("dram.reads", 10);
        let mut h = Histogram::new();
        h.record(100);
        reg.histogram("mc.idle_period", &h);
        reg.counter("dram.reads", 12);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get_counter("dram.reads"), Some(12));
        let names: Vec<&str> = reg.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["dram.reads", "mc.idle_period"]);
        let report = reg.to_string();
        assert!(report.contains("dram.reads = 12"));
        assert!(report.contains("mc.idle_period"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        let mut out = String::new();
        json_escape("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd");
    }
}
