//! Byte-size constants and alignment helpers.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// A 64-byte cache line / DRAM burst, the transfer granularity everywhere in
/// the simulated system (8n-prefetch of 64-bit words = 64 bytes).
pub const CACHE_LINE: u64 = 64;

/// True if `x` is a power of two (zero is not).
pub const fn is_pow2(x: u64) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Rounds `x` down to a multiple of `align`.
///
/// # Panics
/// Panics (in debug builds) if `align` is not a power of two.
pub const fn align_down(x: u64, align: u64) -> u64 {
    debug_assert!(is_pow2(align));
    x & !(align - 1)
}

/// Rounds `x` up to a multiple of `align`.
///
/// # Panics
/// Panics (in debug builds) if `align` is not a power of two.
pub const fn align_up(x: u64, align: u64) -> u64 {
    debug_assert!(is_pow2(align));
    (x + align - 1) & !(align - 1)
}

/// log2 of a power of two.
///
/// # Panics
/// Panics if `x` is not a power of two.
pub fn log2_exact(x: u64) -> u32 {
    assert!(is_pow2(x), "{x} is not a power of two");
    x.trailing_zeros()
}

/// Formats a byte count with a binary unit suffix, e.g. `"64KiB"`.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{}GiB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{}MiB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{}KiB", bytes / KIB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_detection() {
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(is_pow2(1 << 40));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(96));
    }

    #[test]
    fn alignment() {
        assert_eq!(align_down(127, 64), 64);
        assert_eq!(align_down(128, 64), 128);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
        assert_eq!(align_up(0, 4096), 0);
    }

    #[test]
    fn log2() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(CACHE_LINE), 6);
        assert_eq!(log2_exact(8 * KIB), 13);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_pow2() {
        log2_exact(12);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(64), "64B");
        assert_eq!(fmt_bytes(64 * KIB), "64KiB");
        assert_eq!(fmt_bytes(128 * KIB), "128KiB");
        assert_eq!(fmt_bytes(2 * GIB), "2GiB");
        assert_eq!(fmt_bytes(1500), "1500B");
    }
}
