//! # jafar-tpch — TPC-H-like workload for the contention study
//!
//! Figure 4 profiles "several filter-heavy TPC-H queries" — Q1, Q3, Q6,
//! Q18 and Q22 — on MonetDB to measure memory-controller idle periods.
//! This crate provides:
//!
//! - [`gen`]: a deterministic, seeded generator for the TPC-H tables those
//!   queries touch (`customer`, `orders`, `lineitem`), with the schema
//!   reduced to the referenced columns and TPC-H-like value distributions
//!   (dates correlated through order→ship→receipt chains, dictionary-
//!   encoded flag/segment strings, scaled-decimal prices);
//! - [`queries`]: the five queries implemented as bulk operator pipelines
//!   on the [`jafar_columnstore::ExecContext`], each returning a typed
//!   result and leaving behind the operator trace the simulator times.
//!
//! Scale factors are fractional: `sf = 1.0` is the standard 6 M-row
//! lineitem; the Figure-4 reproduction samples at small `sf` exactly as
//! the paper samples with a 4 M-row dataset (§3.1's sampling argument).

pub mod gen;
pub mod queries;

pub use gen::{TpchConfig, TpchDb};
