//! The deterministic TPC-H-like generator.
//!
//! Value distributions follow the TPC-H specification where it matters to
//! the five queries:
//!
//! - one customer per 1 500·sf; ten orders per customer on average, but a
//!   third of customers have no orders (the Q22 population);
//! - orders dated uniformly in [1992-01-01, 1998-08-02];
//! - 1–7 lineitems per order; `l_shipdate = o_orderdate + 1..121` days,
//!   `l_receiptdate = l_shipdate + 1..30`;
//! - `l_returnflag` is `R`/`A` for items received before 1995-06-17 and
//!   `N` otherwise; `l_linestatus` is `F` before that date and `O` after;
//! - `l_quantity` 1–50; `l_discount` 0–10 %; `l_tax` 0–8 %;
//! - `c_mktsegment` uniform over the five TPC-H segments; `c_acctbal`
//!   uniform in [−999.99, 9999.99]; phone country codes 10–34.

use jafar_columnstore::value::{Date, Decimal};
use jafar_columnstore::{Column, Dictionary, Table};
use jafar_common::rng::SplitMix64;
use std::sync::Arc;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpchConfig {
    /// Scale factor (1.0 = 150 k customers / ≈6 M lineitems).
    pub sf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            sf: 0.0001,
            seed: 0x7C_1995,
        }
    }
}

/// The generated database.
pub struct TpchDb {
    /// `customer(c_custkey, c_mktsegment, c_acctbal, c_phone_cc)`.
    pub customer: Table,
    /// `orders(o_orderkey, o_custkey, o_orderdate, o_shippriority, o_totalprice)`.
    pub orders: Table,
    /// `lineitem(l_orderkey, l_quantity, l_extendedprice, l_discount,
    /// l_tax, l_returnflag, l_linestatus, l_shipdate)`.
    pub lineitem: Table,
    /// Dictionary for `l_returnflag`.
    pub returnflag_dict: Arc<Dictionary>,
    /// Dictionary for `l_linestatus`.
    pub linestatus_dict: Arc<Dictionary>,
    /// Dictionary for `c_mktsegment`.
    pub segment_dict: Arc<Dictionary>,
}

/// The five TPC-H market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

impl TpchDb {
    /// Generates the database.
    pub fn generate(config: TpchConfig) -> TpchDb {
        let mut rng = SplitMix64::new(config.seed);
        // TPC-H spec scaling: 150 000 customers per unit scale factor;
        // orders and lineitem follow from the per-customer/per-order
        // fan-outs below (≈1.5 M orders and ≈6 M lineitems at sf = 1).
        let customers = ((150_000.0 * config.sf) as usize).max(10);
        let avg_orders_per_customer = 10usize;

        let order_start = Date::from_ymd(1992, 1, 1);
        let order_end = Date::from_ymd(1998, 8, 2);
        let order_span = order_end.raw() - order_start.raw();
        let cutoff = Date::from_ymd(1995, 6, 17); // returnflag/linestatus pivot

        // Customers. A third (custkey % 3 == 0) place no orders — Q22's
        // target population.
        let segment_dict = Arc::new(Dictionary::from_domain(&SEGMENTS));
        let c_custkey: Vec<i64> = (1..=customers as i64).collect();
        let c_segment: Vec<&str> = (0..customers)
            .map(|_| SEGMENTS[rng.next_below(5) as usize])
            .collect();
        let c_acctbal: Vec<Decimal> = (0..customers)
            .map(|_| Decimal::from_raw(rng.next_range_inclusive(-99_999, 999_999)))
            .collect();
        let c_phone_cc: Vec<i64> = (0..customers)
            .map(|_| rng.next_range_inclusive(10, 34))
            .collect();

        // Orders.
        let mut o_orderkey = Vec::new();
        let mut o_custkey = Vec::new();
        let mut o_orderdate = Vec::new();
        let mut o_totalprice = Vec::new();
        let mut key = 1i64;
        for &ck in &c_custkey {
            if ck % 3 == 0 {
                continue; // customer without orders
            }
            // 1.5× to keep total order mass ≈ 10·customers over the 2/3
            // of customers that do order.
            let n = 1 + rng.next_below(avg_orders_per_customer as u64 * 3 - 1) as usize;
            for _ in 0..n {
                o_orderkey.push(key);
                o_custkey.push(ck);
                o_orderdate.push(order_start.plus_days(rng.next_below(order_span as u64) as i64));
                o_totalprice.push(Decimal::from_raw(
                    rng.next_range_inclusive(90_000, 50_000_000),
                ));
                key += 1;
            }
        }
        let n_orders = o_orderkey.len();

        // Lineitems.
        let returnflag_dict = Arc::new(Dictionary::from_domain(&["A", "N", "R"]));
        let linestatus_dict = Arc::new(Dictionary::from_domain(&["F", "O"]));
        let mut l_orderkey = Vec::new();
        let mut l_quantity = Vec::new();
        let mut l_extendedprice = Vec::new();
        let mut l_discount = Vec::new();
        let mut l_tax = Vec::new();
        let mut l_returnflag: Vec<&str> = Vec::new();
        let mut l_linestatus: Vec<&str> = Vec::new();
        let mut l_shipdate = Vec::new();
        for o in 0..n_orders {
            let lines = 1 + rng.next_below(7) as usize;
            for _ in 0..lines {
                l_orderkey.push(o_orderkey[o]);
                l_quantity.push(rng.next_range_inclusive(1, 50));
                l_extendedprice.push(Decimal::from_raw(
                    rng.next_range_inclusive(90_100, 10_500_000),
                ));
                l_discount.push(rng.next_range_inclusive(0, 10));
                l_tax.push(rng.next_range_inclusive(0, 8));
                let ship = o_orderdate[o].plus_days(1 + rng.next_below(120) as i64);
                let receipt = ship.plus_days(1 + rng.next_below(30) as i64);
                l_shipdate.push(ship);
                l_returnflag.push(if receipt <= cutoff {
                    if rng.next_bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                });
                l_linestatus.push(if ship <= cutoff { "F" } else { "O" });
            }
        }

        TpchDb {
            customer: Table::new(
                "customer",
                vec![
                    Column::int("c_custkey", c_custkey),
                    Column::strings("c_mktsegment", &c_segment, segment_dict.clone()),
                    Column::decimal("c_acctbal", c_acctbal),
                    Column::int("c_phone_cc", c_phone_cc),
                ],
            ),
            orders: Table::new(
                "orders",
                vec![
                    Column::int("o_orderkey", o_orderkey),
                    Column::int("o_custkey", o_custkey),
                    Column::date("o_orderdate", o_orderdate),
                    Column::int("o_shippriority", vec![0; n_orders]),
                    Column::decimal("o_totalprice", o_totalprice),
                ],
            ),
            lineitem: Table::new(
                "lineitem",
                vec![
                    Column::int("l_orderkey", l_orderkey),
                    Column::int("l_quantity", l_quantity),
                    Column::decimal("l_extendedprice", l_extendedprice),
                    Column::int("l_discount", l_discount),
                    Column::int("l_tax", l_tax),
                    Column::strings("l_returnflag", &l_returnflag, returnflag_dict.clone()),
                    Column::strings("l_linestatus", &l_linestatus, linestatus_dict.clone()),
                    Column::date("l_shipdate", l_shipdate),
                ],
            ),
            returnflag_dict,
            linestatus_dict,
            segment_dict,
        }
    }

    /// Total bytes across all tables (the working set).
    pub fn bytes(&self) -> u64 {
        self.customer.bytes() + self.orders.bytes() + self.lineitem.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchDb {
        TpchDb::generate(TpchConfig {
            sf: 0.005,
            seed: 42,
        })
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.lineitem.rows(), b.lineitem.rows());
        assert_eq!(
            a.lineitem
                .column("l_extendedprice")
                .expect("static TPC-H schema")
                .data(),
            b.lineitem
                .column("l_extendedprice")
                .expect("static TPC-H schema")
                .data()
        );
    }

    #[test]
    fn cardinalities_scale() {
        let db = small();
        let customers = db.customer.rows();
        assert!(customers >= 7, "≈1500·0.005");
        // Roughly 10 orders per ordering customer × 2/3 of customers,
        // 1–7 lines per order.
        assert!(db.orders.rows() > customers * 3);
        assert!(db.lineitem.rows() > db.orders.rows() * 2);
        assert!(db.lineitem.rows() < db.orders.rows() * 8);
    }

    #[test]
    fn a_third_of_customers_have_no_orders() {
        let db = small();
        let with_orders: std::collections::HashSet<i64> = db
            .orders
            .column("o_custkey")
            .expect("static TPC-H schema")
            .data()
            .iter()
            .copied()
            .collect();
        let total = db.customer.rows();
        let without = db
            .customer
            .column("c_custkey")
            .expect("static TPC-H schema")
            .data()
            .iter()
            .filter(|k| !with_orders.contains(k))
            .count();
        let frac = without as f64 / total as f64;
        assert!((0.25..0.45).contains(&frac), "frac={frac}");
    }

    #[test]
    fn date_chains_are_consistent() {
        let db = small();
        // Every lineitem ships after its order date.
        let order_dates: std::collections::HashMap<i64, i64> = db
            .orders
            .column("o_orderkey")
            .expect("static TPC-H schema")
            .data()
            .iter()
            .zip(
                db.orders
                    .column("o_orderdate")
                    .expect("static TPC-H schema")
                    .data(),
            )
            .map(|(&k, &d)| (k, d))
            .collect();
        for (ok, sd) in db
            .lineitem
            .column("l_orderkey")
            .expect("static TPC-H schema")
            .data()
            .iter()
            .zip(
                db.lineitem
                    .column("l_shipdate")
                    .expect("static TPC-H schema")
                    .data(),
            )
        {
            let od = order_dates[ok];
            assert!(*sd > od && *sd <= od + 121, "ship {sd} vs order {od}");
        }
    }

    #[test]
    fn returnflag_correlates_with_cutoff() {
        let db = small();
        let cutoff = Date::from_ymd(1995, 6, 17).raw();
        let flag_n = db.returnflag_dict.encode("N").unwrap();
        for (flag, ship) in db
            .lineitem
            .column("l_returnflag")
            .expect("static TPC-H schema")
            .data()
            .iter()
            .zip(
                db.lineitem
                    .column("l_shipdate")
                    .expect("static TPC-H schema")
                    .data(),
            )
        {
            // Items shipped well after the cutoff must be received after
            // it too (receipt ≤ ship + 30): N.
            if *ship > cutoff {
                assert_eq!(*flag, flag_n);
            }
        }
    }

    #[test]
    fn value_domains() {
        let db = small();
        for &q in db
            .lineitem
            .column("l_quantity")
            .expect("static TPC-H schema")
            .data()
        {
            assert!((1..=50).contains(&q));
        }
        for &d in db
            .lineitem
            .column("l_discount")
            .expect("static TPC-H schema")
            .data()
        {
            assert!((0..=10).contains(&d));
        }
        for &t in db
            .lineitem
            .column("l_tax")
            .expect("static TPC-H schema")
            .data()
        {
            assert!((0..=8).contains(&t));
        }
        for &cc in db
            .customer
            .column("c_phone_cc")
            .expect("static TPC-H schema")
            .data()
        {
            assert!((10..=34).contains(&cc));
        }
    }

    #[test]
    fn working_set_size_positive() {
        let db = small();
        assert!(db.bytes() > 20_000, "{}", db.bytes());
        // And it grows with scale factor.
        let bigger = TpchDb::generate(TpchConfig { sf: 0.02, seed: 42 });
        assert!(bigger.bytes() > db.bytes() * 2);
    }
}
