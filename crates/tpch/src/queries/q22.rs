//! TPC-H Q22 — global sales opportunity.
//!
//! ```sql
//! SELECT cntrycode, COUNT(*), SUM(c_acctbal)
//! FROM (SELECT phone_country(c_phone) AS cntrycode, c_acctbal
//!       FROM customer
//!       WHERE phone_country(c_phone) IN (13, 31, 23, 29, 30, 18, 17)
//!         AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer
//!                          WHERE c_acctbal > 0
//!                            AND phone_country(c_phone) IN (...))
//!         AND NOT EXISTS (SELECT * FROM orders
//!                         WHERE o_custkey = c_custkey))
//! GROUP BY cntrycode ORDER BY cntrycode
//! ```
//!
//! The phone country code is materialised as the integer column
//! `c_phone_cc` (dictionary-style pre-extraction of `substring(c_phone,
//! 1, 2)`), so the `IN` list becomes a disjunction of integer equality
//! scans — the JAFAR-native form.

use crate::gen::TpchDb;
use jafar_columnstore::exec::{ExecContext, Pred};
use jafar_columnstore::ops::agg::{AggKind, AggSpec};
use jafar_columnstore::positions::PositionList;

/// The spec's country-code list.
pub const COUNTRY_CODES: [i64; 7] = [13, 31, 23, 29, 30, 18, 17];

/// One Q22 result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q22Row {
    /// Country code.
    pub cntrycode: i64,
    /// Number of qualifying customers.
    pub numcust: u64,
    /// Their total account balance (raw ×100).
    pub totacctbal: i64,
}

/// Runs Q22.
pub fn run(db: &TpchDb, cx: &mut ExecContext) -> Vec<Q22Row> {
    let cust = &db.customer;

    // IN-list as a union of equality selects (bulk style).
    let mut in_list = PositionList::new();
    for &cc in &COUNTRY_CODES {
        let p = cx
            .select(cust, "c_phone_cc", Pred::Eq(cc))
            .expect("static TPC-H schema");
        in_list = in_list.union(&p);
    }

    // Scalar subquery: AVG(c_acctbal) over positive balances in the list.
    let pos_bal = cx
        .select_at(cust, "c_acctbal", &in_list, Pred::Gt(0))
        .expect("static TPC-H schema");
    let balances = cx
        .project(cust, "c_acctbal", &pos_bal)
        .expect("static TPC-H schema");
    let avg = if balances.is_empty() {
        0
    } else {
        balances.iter().sum::<i64>() / balances.len() as i64
    };

    // Filter: balance above average.
    let above = cx
        .select_at(cust, "c_acctbal", &in_list, Pred::Gt(avg))
        .expect("static TPC-H schema");

    // NOT EXISTS orders: anti-join on custkey.
    let above_keys = cx
        .project(cust, "c_custkey", &above)
        .expect("static TPC-H schema");
    let all_orders: PositionList = (0..db.orders.rows() as u32).collect();
    let o_cust = cx
        .project(&db.orders, "o_custkey", &all_orders)
        .expect("static TPC-H schema");
    let no_orders_idx = cx
        .anti_join(&o_cust, &above_keys)
        .expect("TPC-H inputs fit u32 positions");

    let final_pos: PositionList = no_orders_idx
        .iter()
        .map(|&i| above.as_slice()[i as usize])
        .collect();
    let cc = cx
        .project(cust, "c_phone_cc", &final_pos)
        .expect("static TPC-H schema");
    let bal = cx
        .project(cust, "c_acctbal", &final_pos)
        .expect("static TPC-H schema");

    let grouped = cx
        .group_by(
            &[&cc],
            &[AggSpec {
                kind: AggKind::Sum,
                input: &bal,
            }],
        )
        .sorted_by_keys();
    cx.materialize(grouped.len() as u64, 3);

    (0..grouped.len())
        .map(|g| Q22Row {
            cntrycode: grouped.keys[0][g],
            numcust: grouped.counts[g],
            totacctbal: grouped.aggs[0][g],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use jafar_columnstore::{ExecContext, Planner};
    use std::collections::{BTreeMap, HashSet};

    #[test]
    fn matches_row_wise_reference() {
        let db = TpchDb::generate(TpchConfig { sf: 0.01, seed: 5 });
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx);

        // Reference.
        let codes: HashSet<i64> = COUNTRY_CODES.into_iter().collect();
        let cust = &db.customer;
        let in_list: Vec<usize> = (0..cust.rows())
            .filter(|&r| {
                codes.contains(
                    &cust
                        .column("c_phone_cc")
                        .expect("static TPC-H schema")
                        .get(r),
                )
            })
            .collect();
        let positives: Vec<i64> = in_list
            .iter()
            .map(|&r| {
                cust.column("c_acctbal")
                    .expect("static TPC-H schema")
                    .get(r)
            })
            .filter(|&b| b > 0)
            .collect();
        let avg = positives.iter().sum::<i64>() / positives.len().max(1) as i64;
        let with_orders: HashSet<i64> = db
            .orders
            .column("o_custkey")
            .expect("static TPC-H schema")
            .data()
            .iter()
            .copied()
            .collect();
        let mut groups: BTreeMap<i64, (u64, i64)> = BTreeMap::new();
        for &r in &in_list {
            let bal = cust
                .column("c_acctbal")
                .expect("static TPC-H schema")
                .get(r);
            let key = cust
                .column("c_custkey")
                .expect("static TPC-H schema")
                .get(r);
            if bal > avg && !with_orders.contains(&key) {
                let e = groups
                    .entry(
                        cust.column("c_phone_cc")
                            .expect("static TPC-H schema")
                            .get(r),
                    )
                    .or_default();
                e.0 += 1;
                e.1 += bal;
            }
        }
        let want: Vec<Q22Row> = groups
            .into_iter()
            .map(|(cc, (n, t))| Q22Row {
                cntrycode: cc,
                numcust: n,
                totacctbal: t,
            })
            .collect();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "a third of customers have no orders");
    }

    #[test]
    fn output_sorted_by_country_code() {
        let db = TpchDb::generate(TpchConfig::default());
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx);
        for w in got.windows(2) {
            assert!(w[0].cntrycode < w[1].cntrycode);
        }
        for r in &got {
            assert!(COUNTRY_CODES.contains(&r.cntrycode));
        }
    }
}
