//! TPC-H Q6 — forecasting revenue change.
//!
//! ```sql
//! SELECT SUM(l_extendedprice · l_discount) AS revenue
//! FROM lineitem
//! WHERE l_shipdate >= DATE '1994-01-01'
//!   AND l_shipdate <  DATE '1995-01-01'
//!   AND l_discount BETWEEN 0.05 AND 0.07
//!   AND l_quantity < 24
//! ```
//!
//! Pure scan: three conjunctive filters and a trivial fold — the
//! scan-bound, short-idle-period end of Figure 4, and the query shape
//! JAFAR accelerates best.

use crate::gen::TpchDb;
use jafar_columnstore::exec::{ExecContext, Pred};
use jafar_columnstore::value::Date;

/// Runs Q6; returns the revenue (raw ×100 — `price_raw × percent / 100`
/// keeps the scaling).
pub fn run(db: &TpchDb, cx: &mut ExecContext) -> i64 {
    let li = &db.lineitem;
    let lo = Date::from_ymd(1994, 1, 1).raw();
    let hi = Date::from_ymd(1995, 1, 1).raw();

    let by_date = cx
        .select(li, "l_shipdate", Pred::Between(lo, hi - 1))
        .expect("static TPC-H schema");
    let by_disc = cx
        .select_at(li, "l_discount", &by_date, Pred::Between(5, 7))
        .expect("static TPC-H schema");
    let by_qty = cx
        .select_at(li, "l_quantity", &by_disc, Pred::Lt(24))
        .expect("static TPC-H schema");

    let price = cx
        .project(li, "l_extendedprice", &by_qty)
        .expect("static TPC-H schema");
    let disc = cx
        .project(li, "l_discount", &by_qty)
        .expect("static TPC-H schema");
    cx.materialize(1, 1);
    price.iter().zip(&disc).map(|(&p, &d)| p * d / 100).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use jafar_columnstore::{ExecContext, Planner, TraceEvent};

    #[test]
    fn matches_row_wise_reference() {
        let db = TpchDb::generate(TpchConfig {
            sf: 0.004,
            seed: 13,
        });
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx);

        let li = &db.lineitem;
        let lo = Date::from_ymd(1994, 1, 1).raw();
        let hi = Date::from_ymd(1995, 1, 1).raw();
        let mut want = 0i64;
        for r in 0..li.rows() {
            let sd = li.column("l_shipdate").expect("static TPC-H schema").get(r);
            let d = li.column("l_discount").expect("static TPC-H schema").get(r);
            let q = li.column("l_quantity").expect("static TPC-H schema").get(r);
            if sd >= lo && sd < hi && (5..=7).contains(&d) && q < 24 {
                want += li
                    .column("l_extendedprice")
                    .expect("static TPC-H schema")
                    .get(r)
                    * d
                    / 100;
            }
        }
        assert_eq!(got, want);
        assert!(got > 0, "the standard predicate selects ~2% of lineitem");
    }

    #[test]
    fn first_scan_is_full_column_and_pushdownable() {
        let db = TpchDb::generate(TpchConfig::default());
        let planner = Planner {
            min_rows_for_pushdown: 256, // small sample, lower threshold
            ..Planner::with_jafar()
        };
        let mut cx = ExecContext::new(planner);
        let _ = run(&db, &mut cx);
        // The leading date filter is a full scan → JAFAR candidate; the
        // two refinements are positional → CPU.
        assert_eq!(cx.trace().jafar_scans(), 1);
        let scans_at = cx
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::ScanAt { .. }))
            .count();
        assert_eq!(scans_at, 2);
    }
}
