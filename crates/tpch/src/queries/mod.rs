//! The five filter-heavy TPC-H queries of Figure 4, as bulk operator
//! pipelines over the column-store execution context.
//!
//! Monetary units: `*_price` columns are scaled decimals (×100);
//! `l_discount` and `l_tax` are whole percents. Derived revenues keep the
//! ×100 scaling (`price_raw × (100 − disc) / 100`), matching how a
//! fixed-point engine would evaluate them.

pub mod plans;
pub mod q1;
pub mod q18;
pub mod q22;
pub mod q3;
pub mod q6;

pub use q1::{run as q1, Q1Row};
pub use q18::{run as q18, Q18Row};
pub use q22::{run as q22, Q22Row};
pub use q3::{run as q3, Q3Row};
pub use q6::run as q6;

/// A Figure-4 query identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Pricing summary report.
    Q1,
    /// Shipping priority.
    Q3,
    /// Forecasting revenue change.
    Q6,
    /// Large volume customer.
    Q18,
    /// Global sales opportunity.
    Q22,
}

impl QueryId {
    /// All five, in Figure-4 order.
    pub const ALL: [QueryId; 5] = [
        QueryId::Q1,
        QueryId::Q3,
        QueryId::Q6,
        QueryId::Q18,
        QueryId::Q22,
    ];

    /// Display label ("Q1", ...).
    pub fn label(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q3 => "Q3",
            QueryId::Q6 => "Q6",
            QueryId::Q18 => "Q18",
            QueryId::Q22 => "Q22",
        }
    }
}
