//! TPC-H Q3 — shipping priority.
//!
//! ```sql
//! SELECT l_orderkey, SUM(l_extendedprice·(1−l_discount)) AS revenue,
//!        o_orderdate, o_shippriority
//! FROM customer, orders, lineitem
//! WHERE c_mktsegment = 'BUILDING'
//!   AND c_custkey = o_custkey AND l_orderkey = o_orderkey
//!   AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
//! GROUP BY l_orderkey, o_orderdate, o_shippriority
//! ORDER BY revenue DESC, o_orderdate
//! LIMIT 10
//! ```

use crate::gen::TpchDb;
use jafar_columnstore::exec::{ExecContext, Pred, SortDir};
use jafar_columnstore::ops::agg::{AggKind, AggSpec};
use jafar_columnstore::value::Date;

/// One Q3 result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q3Row {
    /// The order key.
    pub orderkey: i64,
    /// Revenue (raw ×100).
    pub revenue: i64,
    /// Order date (raw day number).
    pub orderdate: i64,
    /// Ship priority.
    pub shippriority: i64,
}

/// Runs Q3, returning at most `limit` rows (the spec's LIMIT 10).
pub fn run(db: &TpchDb, cx: &mut ExecContext, limit: usize) -> Vec<Q3Row> {
    let pivot = Date::from_ymd(1995, 3, 15).raw();
    let seg = db
        .segment_dict
        .encode("BUILDING")
        .expect("segment in domain");

    // Selections.
    let cust_pos = cx
        .select(&db.customer, "c_mktsegment", Pred::Eq(seg))
        .expect("static TPC-H schema");
    let cust_keys = cx
        .project(&db.customer, "c_custkey", &cust_pos)
        .expect("static TPC-H schema");

    let ord_pos = cx
        .select(&db.orders, "o_orderdate", Pred::Lt(pivot))
        .expect("static TPC-H schema");
    let ord_cust = cx
        .project(&db.orders, "o_custkey", &ord_pos)
        .expect("static TPC-H schema");
    let ord_key = cx
        .project(&db.orders, "o_orderkey", &ord_pos)
        .expect("static TPC-H schema");
    let ord_date = cx
        .project(&db.orders, "o_orderdate", &ord_pos)
        .expect("static TPC-H schema");
    let ord_prio = cx
        .project(&db.orders, "o_shippriority", &ord_pos)
        .expect("static TPC-H schema");

    let li_pos = cx
        .select(&db.lineitem, "l_shipdate", Pred::Gt(pivot))
        .expect("static TPC-H schema");
    let li_key = cx
        .project(&db.lineitem, "l_orderkey", &li_pos)
        .expect("static TPC-H schema");
    let li_price = cx
        .project(&db.lineitem, "l_extendedprice", &li_pos)
        .expect("static TPC-H schema");
    let li_disc = cx
        .project(&db.lineitem, "l_discount", &li_pos)
        .expect("static TPC-H schema");

    // customer ⋈ orders (semi-join suffices: customers only filter).
    let ord_surviving = cx
        .semi_join(&cust_keys, &ord_cust)
        .expect("TPC-H inputs fit u32 positions");
    let surv_key: Vec<i64> = ord_surviving.iter().map(|&i| ord_key[i as usize]).collect();
    let surv_date: Vec<i64> = ord_surviving
        .iter()
        .map(|&i| ord_date[i as usize])
        .collect();
    let surv_prio: Vec<i64> = ord_surviving
        .iter()
        .map(|&i| ord_prio[i as usize])
        .collect();

    // orders ⋈ lineitem.
    let pairs = cx
        .join(&surv_key, &li_key)
        .expect("TPC-H inputs fit u32 positions");
    let g_key: Vec<i64> = pairs.iter().map(|&(b, _)| surv_key[b as usize]).collect();
    let g_date: Vec<i64> = pairs.iter().map(|&(b, _)| surv_date[b as usize]).collect();
    let g_prio: Vec<i64> = pairs.iter().map(|&(b, _)| surv_prio[b as usize]).collect();
    let g_rev: Vec<i64> = pairs
        .iter()
        .map(|&(_, p)| {
            let price = li_price[p as usize];
            let d = li_disc[p as usize];
            price * (100 - d) / 100
        })
        .collect();

    let grouped = cx.group_by(
        &[&g_key, &g_date, &g_prio],
        &[AggSpec {
            kind: AggKind::Sum,
            input: &g_rev,
        }],
    );

    // ORDER BY revenue DESC, o_orderdate ASC; LIMIT.
    let order = cx.sort(&[
        (&grouped.aggs[0], SortDir::Desc),
        (&grouped.keys[1], SortDir::Asc),
    ]);
    let take = order.len().min(limit);
    cx.materialize(take as u64, 4);
    order[..take]
        .iter()
        .map(|&g| Q3Row {
            orderkey: grouped.keys[0][g as usize],
            revenue: grouped.aggs[0][g as usize],
            orderdate: grouped.keys[1][g as usize],
            shippriority: grouped.keys[2][g as usize],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use jafar_columnstore::{ExecContext, Planner};
    use std::collections::HashMap;

    #[test]
    fn matches_row_wise_reference() {
        let db = TpchDb::generate(TpchConfig { sf: 0.01, seed: 21 });
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx, 10);

        // Reference.
        let pivot = Date::from_ymd(1995, 3, 15).raw();
        let seg = db.segment_dict.encode("BUILDING").unwrap();
        let building: std::collections::HashSet<i64> = (0..db.customer.rows())
            .filter(|&r| {
                db.customer
                    .column("c_mktsegment")
                    .expect("static TPC-H schema")
                    .get(r)
                    == seg
            })
            .map(|r| {
                db.customer
                    .column("c_custkey")
                    .expect("static TPC-H schema")
                    .get(r)
            })
            .collect();
        let mut order_info: HashMap<i64, (i64, i64)> = HashMap::new();
        for r in 0..db.orders.rows() {
            let od = db
                .orders
                .column("o_orderdate")
                .expect("static TPC-H schema")
                .get(r);
            let ck = db
                .orders
                .column("o_custkey")
                .expect("static TPC-H schema")
                .get(r);
            if od < pivot && building.contains(&ck) {
                order_info.insert(
                    db.orders
                        .column("o_orderkey")
                        .expect("static TPC-H schema")
                        .get(r),
                    (
                        od,
                        db.orders
                            .column("o_shippriority")
                            .expect("static TPC-H schema")
                            .get(r),
                    ),
                );
            }
        }
        let mut rev: HashMap<i64, i64> = HashMap::new();
        for r in 0..db.lineitem.rows() {
            let ok = db
                .lineitem
                .column("l_orderkey")
                .expect("static TPC-H schema")
                .get(r);
            if db
                .lineitem
                .column("l_shipdate")
                .expect("static TPC-H schema")
                .get(r)
                > pivot
                && order_info.contains_key(&ok)
            {
                let p = db
                    .lineitem
                    .column("l_extendedprice")
                    .expect("static TPC-H schema")
                    .get(r);
                let d = db
                    .lineitem
                    .column("l_discount")
                    .expect("static TPC-H schema")
                    .get(r);
                *rev.entry(ok).or_default() += p * (100 - d) / 100;
            }
        }
        let mut want: Vec<Q3Row> = rev
            .into_iter()
            .map(|(ok, revenue)| {
                let (od, prio) = order_info[&ok];
                Q3Row {
                    orderkey: ok,
                    revenue,
                    orderdate: od,
                    shippriority: prio,
                }
            })
            .collect();
        want.sort_by(|a, b| {
            b.revenue
                .cmp(&a.revenue)
                .then(a.orderdate.cmp(&b.orderdate))
        });
        want.truncate(10);
        // Revenue/date ordering is deterministic; on full ties of both the
        // tie-break is unspecified, so compare the sorted key sets.
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!((g.revenue, g.orderdate), (w.revenue, w.orderdate));
        }
        assert!(!got.is_empty(), "BUILDING segment should produce results");
    }

    #[test]
    fn limit_respected() {
        let db = TpchDb::generate(TpchConfig::default());
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx, 3);
        assert!(got.len() <= 3);
        // Descending revenue.
        for w in got.windows(2) {
            assert!(w[0].revenue >= w[1].revenue);
        }
    }
}
