//! Declarative plan versions of the TPC-H queries (where the plan algebra
//! covers them), exercising `jafar_columnstore::plan` end to end. Each
//! must produce exactly the hand-written pipeline's result.

use crate::gen::TpchDb;
use jafar_columnstore::ops::agg::AggKind;
use jafar_columnstore::ops::scan::ScanPredicate;
use jafar_columnstore::ops::sort::Dir;
use jafar_columnstore::plan::{execute, Catalog, Frame, Plan};
use jafar_columnstore::value::Date;
use jafar_columnstore::ExecContext;

/// Q6's plan shape: filter lineitem on date/discount/quantity, project
/// the revenue inputs.
pub fn q6_plan_shape() -> Plan {
    let lo = Date::from_ymd(1994, 1, 1).raw();
    let hi = Date::from_ymd(1995, 1, 1).raw();
    Plan::Scan {
        table: "lineitem".into(),
        filters: vec![
            ("l_shipdate".into(), ScanPredicate::Between(lo, hi - 1)),
            ("l_discount".into(), ScanPredicate::Between(5, 7)),
            ("l_quantity".into(), ScanPredicate::Lt(24)),
        ],
        columns: vec!["l_extendedprice".into(), "l_discount".into()],
    }
}

/// Q6 as a plan: executes [`q6_plan_shape`]. Returns the revenue (raw ×100).
pub fn q6_plan(db: &TpchDb, cx: &mut ExecContext) -> i64 {
    let plan = q6_plan_shape();
    let catalog = Catalog::new().add(&db.lineitem);
    let f = execute(&plan, &catalog, cx).expect("static TPC-H schema");
    f.column("l_extendedprice")
        .expect("static TPC-H schema")
        .iter()
        .zip(f.column("l_discount").expect("static TPC-H schema"))
        .map(|(&p, &d)| p * d / 100)
        .sum()
}

/// Q1's grouping skeleton as a plan (the derived disc-price/charge
/// expressions need expression nodes the algebra deliberately omits, so
/// this covers the qty/base-price/count aggregates). Returns the frame
/// sorted by (returnflag, linestatus).
pub fn q1_plan(db: &TpchDb, cx: &mut ExecContext) -> Frame {
    let plan = q1_plan_shape();
    let catalog = Catalog::new().add(&db.lineitem);
    execute(&plan, &catalog, cx).expect("static TPC-H schema")
}

/// Q1's plan shape: sort over a multi-key group-by over a one-filter
/// scan.
pub fn q1_plan_shape() -> Plan {
    let cutoff = Date::from_ymd(1998, 12, 1).plus_days(-90);
    Plan::Sort {
        keys: vec![
            ("l_returnflag".into(), Dir::Asc),
            ("l_linestatus".into(), Dir::Asc),
        ],
        input: Box::new(Plan::GroupBy {
            keys: vec!["l_returnflag".into(), "l_linestatus".into()],
            aggs: vec![
                ("l_quantity".into(), AggKind::Sum, "sum_qty".into()),
                (
                    "l_extendedprice".into(),
                    AggKind::Sum,
                    "sum_base_price".into(),
                ),
                ("l_quantity".into(), AggKind::Count, "count_order".into()),
            ],
            input: Box::new(Plan::Scan {
                table: "lineitem".into(),
                filters: vec![("l_shipdate".into(), ScanPredicate::Le(cutoff.raw()))],
                columns: vec![
                    "l_returnflag".into(),
                    "l_linestatus".into(),
                    "l_quantity".into(),
                    "l_extendedprice".into(),
                ],
            }),
        }),
    }
}

/// The Q3 join skeleton as a plan: BUILDING customers ⋈ early orders ⋈
/// late lineitems, grouped per order by revenue inputs.
pub fn q3_plan(db: &TpchDb, cx: &mut ExecContext, limit: usize) -> Frame {
    let plan = q3_plan_shape(db, limit);
    let catalog = Catalog::new()
        .add(&db.customer)
        .add(&db.orders)
        .add(&db.lineitem);
    execute(&plan, &catalog, cx).expect("static TPC-H schema")
}

/// Q3's plan shape: a row cap over a sort over a per-order group-by over
/// the customer ⋈ orders ⋈ lineitem join tree. The `db` supplies the
/// market-segment dictionary encoding.
pub fn q3_plan_shape(db: &TpchDb, limit: usize) -> Plan {
    let pivot = Date::from_ymd(1995, 3, 15).raw();
    let seg = db.segment_dict.encode("BUILDING").expect("in domain");
    let customers = Plan::Scan {
        table: "customer".into(),
        filters: vec![("c_mktsegment".into(), ScanPredicate::Eq(seg))],
        columns: vec!["c_custkey".into()],
    };
    let orders = Plan::Scan {
        table: "orders".into(),
        filters: vec![("o_orderdate".into(), ScanPredicate::Lt(pivot))],
        columns: vec![
            "o_custkey".into(),
            "o_orderkey".into(),
            "o_orderdate".into(),
        ],
    };
    let lineitems = Plan::Scan {
        table: "lineitem".into(),
        filters: vec![("l_shipdate".into(), ScanPredicate::Gt(pivot))],
        columns: vec!["l_orderkey".into(), "l_extendedprice".into()],
    };
    Plan::Limit {
        n: limit,
        input: Box::new(Plan::Sort {
            keys: vec![
                ("revenue_base".into(), Dir::Desc),
                ("o_orderdate".into(), Dir::Asc),
            ],
            input: Box::new(Plan::GroupBy {
                keys: vec!["o_orderkey".into(), "o_orderdate".into()],
                aggs: vec![(
                    "l_extendedprice".into(),
                    AggKind::Sum,
                    "revenue_base".into(),
                )],
                input: Box::new(Plan::Join {
                    build: Box::new(Plan::Join {
                        build: Box::new(customers),
                        probe: Box::new(orders),
                        build_key: "c_custkey".into(),
                        probe_key: "o_custkey".into(),
                    }),
                    probe: Box::new(lineitems),
                    build_key: "o_orderkey".into(),
                    probe_key: "l_orderkey".into(),
                }),
            }),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use crate::queries;
    use jafar_columnstore::Planner;

    fn db() -> TpchDb {
        TpchDb::generate(TpchConfig {
            sf: 0.0005,
            seed: 41,
        })
    }

    #[test]
    fn q6_plan_equals_handwritten() {
        let db = db();
        let mut cx_plan = ExecContext::new(Planner::default());
        let mut cx_hand = ExecContext::new(Planner::default());
        assert_eq!(q6_plan(&db, &mut cx_plan), queries::q6(&db, &mut cx_hand));
        // Same scan structure → same rows scanned.
        assert_eq!(
            cx_plan.trace().rows_scanned(),
            cx_hand.trace().rows_scanned()
        );
    }

    #[test]
    fn q1_plan_matches_handwritten_subset() {
        let db = db();
        let mut cx_plan = ExecContext::new(Planner::default());
        let frame = q1_plan(&db, &mut cx_plan);
        let mut cx_hand = ExecContext::new(Planner::default());
        let rows = queries::q1(&db, &mut cx_hand);
        assert_eq!(frame.rows(), rows.len());
        for (g, row) in rows.iter().enumerate() {
            assert_eq!(
                frame.column("l_returnflag").expect("static TPC-H schema")[g],
                row.returnflag
            );
            assert_eq!(
                frame.column("l_linestatus").expect("static TPC-H schema")[g],
                row.linestatus
            );
            assert_eq!(
                frame.column("sum_qty").expect("static TPC-H schema")[g],
                row.sum_qty
            );
            assert_eq!(
                frame.column("sum_base_price").expect("static TPC-H schema")[g],
                row.sum_base_price
            );
            assert_eq!(
                frame.column("count_order").expect("static TPC-H schema")[g] as u64,
                row.count
            );
        }
    }

    #[test]
    fn q3_plan_group_count_matches_handwritten() {
        let db = TpchDb::generate(TpchConfig { sf: 0.01, seed: 21 });
        let mut cx_plan = ExecContext::new(Planner::default());
        let frame = q3_plan(&db, &mut cx_plan, 10);
        let mut cx_hand = ExecContext::new(Planner::default());
        let rows = queries::q3(&db, &mut cx_hand, 10);
        assert_eq!(frame.rows(), rows.len());
        // Revenue-base (pre-discount) descending ordering must hold.
        let rev = frame.column("revenue_base").expect("static TPC-H schema");
        for pair in rev.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // Same order keys in the result set (orders are identified by key).
        let plan_keys: std::collections::HashSet<i64> = frame
            .column("o_orderkey")
            .expect("static TPC-H schema")
            .iter()
            .copied()
            .collect();
        // The hand-written query ranks by discounted revenue, so the top-k
        // sets can differ at the margin; require substantial overlap.
        let hand_keys: std::collections::HashSet<i64> = rows.iter().map(|r| r.orderkey).collect();
        let overlap = plan_keys.intersection(&hand_keys).count();
        assert!(
            overlap * 2 >= rows.len(),
            "overlap {overlap} of {}",
            rows.len()
        );
    }
}
