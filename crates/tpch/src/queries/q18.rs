//! TPC-H Q18 — large volume customer.
//!
//! ```sql
//! SELECT c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity)
//! FROM customer, orders, lineitem
//! WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
//!                      GROUP BY l_orderkey HAVING SUM(l_quantity) > :t)
//!   AND c_custkey = o_custkey AND o_orderkey = l_orderkey
//! GROUP BY c_custkey, o_orderkey, o_orderdate, o_totalprice
//! ORDER BY o_totalprice DESC, o_orderdate
//! LIMIT 100
//! ```
//!
//! Join/aggregation heavy with *no* selective scan — the least
//! JAFAR-friendly of the five, and among the longest idle periods in
//! Figure 4 (lots of hash-table compute per byte streamed).

use crate::gen::TpchDb;
use jafar_columnstore::exec::{ExecContext, SortDir};
use jafar_columnstore::ops::agg::{AggKind, AggSpec};
use jafar_columnstore::positions::PositionList;

/// One Q18 result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Q18Row {
    /// Customer key.
    pub custkey: i64,
    /// Order key.
    pub orderkey: i64,
    /// Order date (raw day number).
    pub orderdate: i64,
    /// Order total price (raw ×100).
    pub totalprice: i64,
    /// Total quantity across the order's lineitems.
    pub sum_qty: i64,
}

/// Runs Q18 with quantity threshold `threshold` (the spec uses 300) and
/// LIMIT `limit` (the spec uses 100).
pub fn run(db: &TpchDb, cx: &mut ExecContext, threshold: i64, limit: usize) -> Vec<Q18Row> {
    let li = &db.lineitem;
    let all_li: PositionList = (0..li.rows() as u32).collect();
    let li_key = cx
        .project(li, "l_orderkey", &all_li)
        .expect("static TPC-H schema");
    let li_qty = cx
        .project(li, "l_quantity", &all_li)
        .expect("static TPC-H schema");

    // HAVING subquery: orders whose lineitems sum past the threshold.
    let per_order = cx.group_by(
        &[&li_key],
        &[AggSpec {
            kind: AggKind::Sum,
            input: &li_qty,
        }],
    );
    let big_orders: Vec<i64> = (0..per_order.len())
        .filter(|&g| per_order.aggs[0][g] > threshold)
        .map(|g| per_order.keys[0][g])
        .collect();
    let big_qty: Vec<i64> = (0..per_order.len())
        .filter(|&g| per_order.aggs[0][g] > threshold)
        .map(|g| per_order.aggs[0][g])
        .collect();

    // Join with orders on o_orderkey.
    let all_o: PositionList = (0..db.orders.rows() as u32).collect();
    let o_key = cx
        .project(&db.orders, "o_orderkey", &all_o)
        .expect("static TPC-H schema");
    let o_cust = cx
        .project(&db.orders, "o_custkey", &all_o)
        .expect("static TPC-H schema");
    let o_date = cx
        .project(&db.orders, "o_orderdate", &all_o)
        .expect("static TPC-H schema");
    let o_total = cx
        .project(&db.orders, "o_totalprice", &all_o)
        .expect("static TPC-H schema");
    let pairs = cx
        .join(&big_orders, &o_key)
        .expect("TPC-H inputs fit u32 positions");

    let mut rows: Vec<Q18Row> = pairs
        .iter()
        .map(|&(b, o)| Q18Row {
            custkey: o_cust[o as usize],
            orderkey: o_key[o as usize],
            orderdate: o_date[o as usize],
            totalprice: o_total[o as usize],
            sum_qty: big_qty[b as usize],
        })
        .collect();

    // ORDER BY o_totalprice DESC, o_orderdate; LIMIT.
    let totals: Vec<i64> = rows.iter().map(|r| r.totalprice).collect();
    let dates: Vec<i64> = rows.iter().map(|r| r.orderdate).collect();
    let order = cx.sort(&[(&totals, SortDir::Desc), (&dates, SortDir::Asc)]);
    let take = order.len().min(limit);
    cx.materialize(take as u64, 5);
    rows = order[..take]
        .iter()
        .map(|&i| rows[i as usize].clone())
        .collect();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use jafar_columnstore::{ExecContext, Planner};
    use std::collections::HashMap;

    #[test]
    fn matches_row_wise_reference() {
        let db = TpchDb::generate(TpchConfig { sf: 0.004, seed: 3 });
        // A lower threshold so the small sample yields matches.
        let threshold = 180;
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx, threshold, 100);

        let mut qty: HashMap<i64, i64> = HashMap::new();
        for r in 0..db.lineitem.rows() {
            *qty.entry(
                db.lineitem
                    .column("l_orderkey")
                    .expect("static TPC-H schema")
                    .get(r),
            )
            .or_default() += db
                .lineitem
                .column("l_quantity")
                .expect("static TPC-H schema")
                .get(r);
        }
        let mut want: Vec<Q18Row> = (0..db.orders.rows())
            .filter_map(|r| {
                let ok = db
                    .orders
                    .column("o_orderkey")
                    .expect("static TPC-H schema")
                    .get(r);
                let q = *qty.get(&ok)?;
                (q > threshold).then(|| Q18Row {
                    custkey: db
                        .orders
                        .column("o_custkey")
                        .expect("static TPC-H schema")
                        .get(r),
                    orderkey: ok,
                    orderdate: db
                        .orders
                        .column("o_orderdate")
                        .expect("static TPC-H schema")
                        .get(r),
                    totalprice: db
                        .orders
                        .column("o_totalprice")
                        .expect("static TPC-H schema")
                        .get(r),
                    sum_qty: q,
                })
            })
            .collect();
        want.sort_by(|a, b| {
            b.totalprice
                .cmp(&a.totalprice)
                .then(a.orderdate.cmp(&b.orderdate))
                .then(a.orderkey.cmp(&b.orderkey))
        });
        want.truncate(100);
        assert!(!want.is_empty(), "threshold {threshold} should match");
        assert_eq!(got.len(), want.len());
        // Compare as sets keyed by orderkey (tie order on equal
        // totalprice+date is unspecified).
        let mut got_sorted = got.clone();
        got_sorted.sort_by_key(|r| r.orderkey);
        let mut want_sorted = want.clone();
        want_sorted.sort_by_key(|r| r.orderkey);
        assert_eq!(got_sorted, want_sorted);
    }

    #[test]
    fn high_threshold_yields_empty() {
        let db = TpchDb::generate(TpchConfig::default());
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx, 10_000, 100);
        assert!(got.is_empty());
    }

    #[test]
    fn result_ordered_by_totalprice_desc() {
        let db = TpchDb::generate(TpchConfig::default());
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx, 200, 50);
        for w in got.windows(2) {
            assert!(w[0].totalprice >= w[1].totalprice);
        }
    }
}
