//! TPC-H Q1 — pricing summary report.
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus,
//!        SUM(l_quantity), SUM(l_extendedprice),
//!        SUM(l_extendedprice·(1−l_discount)),
//!        SUM(l_extendedprice·(1−l_discount)·(1+l_tax)),
//!        AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*)
//! FROM lineitem
//! WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
//! GROUP BY l_returnflag, l_linestatus
//! ORDER BY l_returnflag, l_linestatus
//! ```
//!
//! Aggregation-heavy: one selective-ish scan, then heavy per-row
//! arithmetic — the high-idle-period end of Figure 4.

use crate::gen::TpchDb;
use jafar_columnstore::exec::{ExecContext, Pred};
use jafar_columnstore::ops::agg::{AggKind, AggSpec};
use jafar_columnstore::value::Date;

/// One Q1 result row.
#[derive(Clone, Debug, PartialEq)]
pub struct Q1Row {
    /// `l_returnflag` (dictionary code).
    pub returnflag: i64,
    /// `l_linestatus` (dictionary code).
    pub linestatus: i64,
    /// `SUM(l_quantity)`.
    pub sum_qty: i64,
    /// `SUM(l_extendedprice)` (raw ×100).
    pub sum_base_price: i64,
    /// `SUM(l_extendedprice·(1−l_discount))` (raw ×100).
    pub sum_disc_price: i64,
    /// `SUM(l_extendedprice·(1−l_discount)·(1+l_tax))` (raw ×100).
    pub sum_charge: i64,
    /// `COUNT(*)`.
    pub count: u64,
}

/// Runs Q1.
pub fn run(db: &TpchDb, cx: &mut ExecContext) -> Vec<Q1Row> {
    let cutoff = Date::from_ymd(1998, 12, 1).plus_days(-90);
    let li = &db.lineitem;

    let pos = cx
        .select(li, "l_shipdate", Pred::Le(cutoff.raw()))
        .expect("static TPC-H schema");
    let flag = cx
        .project(li, "l_returnflag", &pos)
        .expect("static TPC-H schema");
    let status = cx
        .project(li, "l_linestatus", &pos)
        .expect("static TPC-H schema");
    let qty = cx
        .project(li, "l_quantity", &pos)
        .expect("static TPC-H schema");
    let price = cx
        .project(li, "l_extendedprice", &pos)
        .expect("static TPC-H schema");
    let disc = cx
        .project(li, "l_discount", &pos)
        .expect("static TPC-H schema");
    let tax = cx.project(li, "l_tax", &pos).expect("static TPC-H schema");

    // Derived expressions (fixed-point, ×100 preserved).
    let disc_price: Vec<i64> = price
        .iter()
        .zip(&disc)
        .map(|(&p, &d)| p * (100 - d) / 100)
        .collect();
    let charge: Vec<i64> = disc_price
        .iter()
        .zip(&tax)
        .map(|(&dp, &t)| dp * (100 + t) / 100)
        .collect();

    let grouped = cx
        .group_by(
            &[&flag, &status],
            &[
                AggSpec {
                    kind: AggKind::Sum,
                    input: &qty,
                },
                AggSpec {
                    kind: AggKind::Sum,
                    input: &price,
                },
                AggSpec {
                    kind: AggKind::Sum,
                    input: &disc_price,
                },
                AggSpec {
                    kind: AggKind::Sum,
                    input: &charge,
                },
            ],
        )
        .sorted_by_keys();
    cx.materialize(grouped.len() as u64, 7);

    (0..grouped.len())
        .map(|g| Q1Row {
            returnflag: grouped.keys[0][g],
            linestatus: grouped.keys[1][g],
            sum_qty: grouped.aggs[0][g],
            sum_base_price: grouped.aggs[1][g],
            sum_disc_price: grouped.aggs[2][g],
            sum_charge: grouped.aggs[3][g],
            count: grouped.counts[g],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use jafar_columnstore::{ExecContext, Planner};
    use std::collections::BTreeMap;

    #[test]
    fn matches_row_wise_reference() {
        let db = TpchDb::generate(TpchConfig { sf: 0.003, seed: 7 });
        let mut cx = ExecContext::new(Planner::default());
        let got = run(&db, &mut cx);

        // Naive reference.
        let cutoff = Date::from_ymd(1998, 12, 1).plus_days(-90).raw();
        let li = &db.lineitem;
        type Acc = (i64, i64, i64, i64, u64); // qty, base, disc, charge, n
        let mut groups: BTreeMap<(i64, i64), Acc> = BTreeMap::new();
        for r in 0..li.rows() {
            if li.column("l_shipdate").expect("static TPC-H schema").get(r) > cutoff {
                continue;
            }
            let key = (
                li.column("l_returnflag")
                    .expect("static TPC-H schema")
                    .get(r),
                li.column("l_linestatus")
                    .expect("static TPC-H schema")
                    .get(r),
            );
            let p = li
                .column("l_extendedprice")
                .expect("static TPC-H schema")
                .get(r);
            let d = li.column("l_discount").expect("static TPC-H schema").get(r);
            let t = li.column("l_tax").expect("static TPC-H schema").get(r);
            let dp = p * (100 - d) / 100;
            let ch = dp * (100 + t) / 100;
            let e = groups.entry(key).or_default();
            e.0 += li.column("l_quantity").expect("static TPC-H schema").get(r);
            e.1 += p;
            e.2 += dp;
            e.3 += ch;
            e.4 += 1;
        }
        let want: Vec<Q1Row> = groups
            .into_iter()
            .map(|((rf, ls), (q, bp, dp, ch, n))| Q1Row {
                returnflag: rf,
                linestatus: ls,
                sum_qty: q,
                sum_base_price: bp,
                sum_disc_price: dp,
                sum_charge: ch,
                count: n,
            })
            .collect();
        assert_eq!(got, want);
        // TPC-H Q1 famously returns 4 groups (A/F, N/F, N/O, R/F).
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn trace_shape() {
        let db = TpchDb::generate(TpchConfig::default());
        let mut cx = ExecContext::new(Planner::default());
        let _ = run(&db, &mut cx);
        let trace = cx.trace();
        // 1 scan + 6 gathers + 1 aggregate + 1 materialize.
        assert_eq!(trace.len(), 9);
        assert!(trace.rows_scanned() >= db.lineitem.rows() as u64);
    }
}
